#include "io/data_io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "io/model_io.h"

namespace focus::io {
namespace {

constexpr char kTxnsMagic[] = "focus-txns-v1";
constexpr char kDataMagic[] = "focus-data-v1";

bool NextLine(std::istream& in, std::istringstream* line) {
  std::string text;
  if (!std::getline(in, text)) return false;
  line->clear();
  line->str(text);
  return true;
}

// True when the last extraction consumed the line cleanly: the loop
// `while (line >> value)` ends either at end-of-line (eofbit set — OK) or
// at a malformed token (failbit without eofbit — garbage).
bool ConsumedCleanly(const std::istringstream& line) { return line.eof(); }

// True when only whitespace remains after successful extractions.
bool OnlyWhitespaceLeft(std::istringstream& line) {
  line >> std::ws;
  return line.eof() || line.peek() == std::char_traits<char>::eof();
}

// After the payload, any remaining non-whitespace in the stream means the
// file was not a single well-formed record (e.g. extra rows beyond the
// declared count). The daemon ingests untrusted spool files, so this is
// rejected rather than silently ignored.
bool OnlyWhitespaceLeftInStream(std::istream& in) {
  in >> std::ws;
  return in.eof() || in.peek() == std::char_traits<char>::eof();
}

// Records the rejection reason (if the caller asked for one) and yields
// the nullopt that every malformed-input path returns.
std::nullopt_t Reject(std::string* error, std::string why) {
  if (error != nullptr) *error = std::move(why);
  return std::nullopt;
}

// The focus-txns-v1 parse shared by LoadTransactionDb and the streaming
// block converter, so both enforce identical strictness. `start` runs
// once with the validated header counts (before any row); `row` runs once
// per transaction with range-checked item ids. Returns the rejection
// reason, or nullopt on success.
template <typename Start, typename Row>
std::optional<std::string> ParseTransactionText(std::istream& in,
                                                const Start& start,
                                                const Row& row) {
  std::istringstream line;
  if (!NextLine(in, &line)) return "empty file";
  std::string magic;
  line >> magic;
  if (magic != kTxnsMagic) {
    return "bad magic (want " + std::string(kTxnsMagic) + ")";
  }

  if (!NextLine(in, &line)) return "missing header line";
  int32_t num_items = 0;
  int64_t num_transactions = 0;
  // Counts that fail to parse (including integer overflow, which sets
  // failbit) or are out of range reject the file.
  if (!(line >> num_items >> num_transactions)) {
    return "unparseable header counts";
  }
  if (num_items <= 0 || num_transactions < 0) {
    return "header counts out of range";
  }
  if (!OnlyWhitespaceLeft(line)) {
    return "trailing garbage after header";
  }

  start(num_items, num_transactions);
  std::vector<int32_t> items;
  for (int64_t t = 0; t < num_transactions; ++t) {
    const std::string where = "transaction " + std::to_string(t);
    if (!NextLine(in, &line)) {
      return "truncated: missing " + where;
    }
    items.clear();
    int32_t item = 0;
    while (line >> item) {
      if (item < 0 || item >= num_items) {
        return where + ": item id out of range";
      }
      items.push_back(item);
    }
    if (!ConsumedCleanly(line)) {
      return where + ": non-numeric token";
    }
    row(items);
  }
  if (!OnlyWhitespaceLeftInStream(in)) {
    return "trailing content after declared transactions";
  }
  return std::nullopt;
}

}  // namespace

void SaveTransactionDb(const data::TransactionDb& db, std::ostream& out) {
  out << kTxnsMagic << '\n';
  out << db.num_items() << ' ' << db.num_transactions() << '\n';
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    const auto txn = db.Transaction(t);
    for (size_t i = 0; i < txn.size(); ++i) {
      out << (i == 0 ? "" : " ") << txn[i];
    }
    out << '\n';
  }
}

std::optional<data::TransactionDb> LoadTransactionDb(std::istream& in,
                                                     std::string* error) {
  std::optional<data::TransactionDb> db;
  const std::optional<std::string> why = ParseTransactionText(
      in,
      [&db](int32_t num_items, int64_t /*num_transactions*/) {
        db.emplace(num_items);
      },
      [&db](const std::vector<int32_t>& items) { db->AddTransaction(items); });
  if (why.has_value()) return Reject(error, *why);
  return db;
}

bool ConvertTransactionTextToBlocks(std::istream& in, std::ostream& out,
                                    int64_t block_size, std::string* error) {
  std::optional<data::BlockTransactionDbWriter> writer;
  const std::optional<std::string> why = ParseTransactionText(
      in,
      [&](int32_t num_items, int64_t /*num_transactions*/) {
        writer.emplace(out, num_items, block_size);
      },
      [&](const std::vector<int32_t>& items) { writer->Add(items); });
  if (why.has_value()) {
    if (error != nullptr) *error = *why;
    return false;
  }
  writer->Finish();
  if (!out) {
    if (error != nullptr) *error = "write failure";
    return false;
  }
  return true;
}

void SaveDataset(const data::Dataset& dataset, std::ostream& out) {
  out << kDataMagic << '\n';
  SaveSchema(dataset.schema(), out);
  out << std::setprecision(17);
  out << dataset.num_rows() << '\n';
  for (int64_t row = 0; row < dataset.num_rows(); ++row) {
    out << dataset.Label(row);
    for (double value : dataset.Row(row)) out << ' ' << value;
    out << '\n';
  }
}

std::optional<data::Dataset> LoadDataset(std::istream& in,
                                         std::string* error) {
  std::istringstream line;
  if (!NextLine(in, &line)) return Reject(error, "empty file");
  std::string magic;
  line >> magic;
  if (magic != kDataMagic) {
    return Reject(error, "bad magic (want " + std::string(kDataMagic) + ")");
  }

  std::optional<data::Schema> schema = LoadSchema(in);
  if (!schema.has_value()) return Reject(error, "malformed embedded schema");

  if (!NextLine(in, &line)) return Reject(error, "missing row count");
  int64_t num_rows = 0;
  if (!(line >> num_rows) || num_rows < 0) {
    return Reject(error, "unparseable row count");
  }
  if (!OnlyWhitespaceLeft(line)) {
    return Reject(error, "trailing garbage after row count");
  }

  data::Dataset dataset(*schema);
  dataset.Reserve(num_rows);
  std::vector<double> values(schema->num_attributes());
  for (int64_t row = 0; row < num_rows; ++row) {
    const std::string where = "row " + std::to_string(row);
    if (!NextLine(in, &line)) {
      return Reject(error, "truncated: missing " + where);
    }
    int label = 0;
    if (!(line >> label)) return Reject(error, where + ": unparseable label");
    if (schema->num_classes() > 0 &&
        (label < 0 || label >= schema->num_classes())) {
      return Reject(error, where + ": class label out of range");
    }
    for (int a = 0; a < schema->num_attributes(); ++a) {
      if (!(line >> values[a])) {
        return Reject(error, where + ": unparseable attribute value");
      }
    }
    if (!OnlyWhitespaceLeft(line)) {
      return Reject(error, where + ": extra columns");
    }
    dataset.AddRow(values, label);
  }
  if (!OnlyWhitespaceLeftInStream(in)) {
    return Reject(error, "trailing content after declared rows");
  }
  return dataset;
}

bool SaveTransactionDbToFile(const data::TransactionDb& db,
                             const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  SaveTransactionDb(db, out);
  return static_cast<bool>(out);
}

std::optional<data::TransactionDb> LoadTransactionDbFromFile(
    const std::string& path, std::string* error) {
  std::ifstream in(path);
  if (!in) return Reject(error, "cannot open file");
  return LoadTransactionDb(in, error);
}

bool SaveDatasetToFile(const data::Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  SaveDataset(dataset, out);
  return static_cast<bool>(out);
}

std::optional<data::Dataset> LoadDatasetFromFile(const std::string& path,
                                                 std::string* error) {
  std::ifstream in(path);
  if (!in) return Reject(error, "cannot open file");
  return LoadDataset(in, error);
}

}  // namespace focus::io

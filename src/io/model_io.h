#ifndef FOCUS_IO_MODEL_IO_H_
#define FOCUS_IO_MODEL_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "data/schema.h"
#include "itemsets/apriori.h"
#include "tree/decision_tree.h"

namespace focus::io {

// Plain-text, versioned serialization for models, so deviations can be
// monitored across process restarts without re-mining (the paper's
// change-monitoring setting keeps the OLD model around; these routines
// are how a deployment would persist it).
//
// Formats are line-oriented and human-inspectable:
//   lits v1:  header (minsup, |D|, |I|, count), then "<support> i1 i2 …"
//   schema v1 + dt v1: attributes, then a preorder node list.
//
// Load functions return std::nullopt on malformed input (never abort on
// user data).

void SaveLitsModel(const lits::LitsModel& model, std::ostream& out);
std::optional<lits::LitsModel> LoadLitsModel(std::istream& in);

void SaveSchema(const data::Schema& schema, std::ostream& out);
std::optional<data::Schema> LoadSchema(std::istream& in);

void SaveDecisionTree(const dt::DecisionTree& tree, std::ostream& out);
std::optional<dt::DecisionTree> LoadDecisionTree(std::istream& in);

// File wrappers; return false / nullopt on I/O failure.
bool SaveLitsModelToFile(const lits::LitsModel& model, const std::string& path);
std::optional<lits::LitsModel> LoadLitsModelFromFile(const std::string& path);
bool SaveDecisionTreeToFile(const dt::DecisionTree& tree,
                            const std::string& path);
std::optional<dt::DecisionTree> LoadDecisionTreeFromFile(
    const std::string& path);

}  // namespace focus::io

#endif  // FOCUS_IO_MODEL_IO_H_

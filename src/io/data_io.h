#ifndef FOCUS_IO_DATA_IO_H_
#define FOCUS_IO_DATA_IO_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "data/block_txn_db.h"
#include "data/dataset.h"
#include "data/transaction_db.h"

namespace focus::io {

// Line-oriented text formats for the data substrates, used by the CLI
// tool and for interchange with external systems.
//
//   transactions v1:  "focus-txns-v1", "<num_items> <num_transactions>",
//                     then one space-separated item list per line.
//   dataset v1:       "focus-data-v1", an embedded schema, the row count,
//                     then "<label> v1 v2 …" per row.
//
// Attribute names must not contain whitespace. Load functions return
// std::nullopt on malformed input and are STRICT: truncated or
// garbage-bearing lines, out-of-range counts/ids, and trailing content
// after the declared payload all reject the file (the monitoring daemon
// ingests untrusted spool files through these loaders). On rejection the
// optional `error` out-param receives a one-line human-readable reason
// (e.g. "line 3: item id out of range"), which the daemon logs next to
// the quarantined file.

void SaveTransactionDb(const data::TransactionDb& db, std::ostream& out);
std::optional<data::TransactionDb> LoadTransactionDb(
    std::istream& in, std::string* error = nullptr);

void SaveDataset(const data::Dataset& dataset, std::ostream& out);
std::optional<data::Dataset> LoadDataset(std::istream& in,
                                         std::string* error = nullptr);

// Streams a `focus-txns-v1` text snapshot into the block codec
// (data/block_txn_db.h) without ever materializing the whole database —
// the monitoring daemon's --ooc spool ingest. Validation is exactly as
// strict as LoadTransactionDb (same rejection reasons on the same
// inputs); on rejection, false + `*error`, and `out` holds a truncated
// block file the caller must discard. The resulting file opens with
// data::BlockTransactionDb and is logically identical to the database
// LoadTransactionDb would have built.
bool ConvertTransactionTextToBlocks(
    std::istream& in, std::ostream& out,
    int64_t block_size = data::BlockStoreOptions{}.block_size,
    std::string* error = nullptr);

bool SaveTransactionDbToFile(const data::TransactionDb& db,
                             const std::string& path);
std::optional<data::TransactionDb> LoadTransactionDbFromFile(
    const std::string& path, std::string* error = nullptr);
bool SaveDatasetToFile(const data::Dataset& dataset, const std::string& path);
std::optional<data::Dataset> LoadDatasetFromFile(const std::string& path,
                                                 std::string* error = nullptr);

}  // namespace focus::io

#endif  // FOCUS_IO_DATA_IO_H_

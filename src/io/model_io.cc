#include "io/model_io.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace focus::io {
namespace {

constexpr char kLitsMagic[] = "focus-lits-v1";
constexpr char kSchemaMagic[] = "focus-schema-v1";
constexpr char kTreeMagic[] = "focus-dt-v1";

// Reads one whole line and parses it with a stringstream; returns false
// on EOF.
bool NextLine(std::istream& in, std::istringstream* line) {
  std::string text;
  if (!std::getline(in, text)) return false;
  line->clear();
  line->str(text);
  return true;
}

}  // namespace

void SaveLitsModel(const lits::LitsModel& model, std::ostream& out) {
  out << kLitsMagic << '\n';
  out << std::setprecision(17);
  out << model.min_support() << ' ' << model.num_transactions() << ' '
      << model.num_items() << ' ' << model.size() << '\n';
  for (const lits::Itemset& itemset : model.StructuralComponent()) {
    out << model.SupportOr(itemset, 0.0);
    for (int32_t item : itemset.items()) out << ' ' << item;
    out << '\n';
  }
}

std::optional<lits::LitsModel> LoadLitsModel(std::istream& in) {
  std::istringstream line;
  if (!NextLine(in, &line)) return std::nullopt;
  std::string magic;
  line >> magic;
  if (magic != kLitsMagic) return std::nullopt;

  if (!NextLine(in, &line)) return std::nullopt;
  double min_support = 0.0;
  int64_t num_transactions = 0;
  int32_t num_items = 0;
  int64_t count = 0;
  if (!(line >> min_support >> num_transactions >> num_items >> count)) {
    return std::nullopt;
  }
  if (min_support <= 0.0 || min_support > 1.0 || num_transactions <= 0 ||
      num_items <= 0 || count < 0) {
    return std::nullopt;
  }

  lits::LitsModel model(min_support, num_transactions, num_items);
  for (int64_t i = 0; i < count; ++i) {
    if (!NextLine(in, &line)) return std::nullopt;
    double support = 0.0;
    if (!(line >> support)) return std::nullopt;
    if (support < 0.0 || support > 1.0) return std::nullopt;
    std::vector<int32_t> items;
    int32_t item = 0;
    while (line >> item) {
      if (item < 0 || item >= num_items) return std::nullopt;
      items.push_back(item);
    }
    model.Add(lits::Itemset(std::move(items)), support);
  }
  return model;
}

void SaveSchema(const data::Schema& schema, std::ostream& out) {
  out << kSchemaMagic << '\n';
  out << std::setprecision(17);
  out << schema.num_attributes() << ' ' << schema.num_classes() << '\n';
  for (const data::Attribute& attr : schema.attributes()) {
    if (attr.type == data::AttributeType::kNumeric) {
      out << "numeric " << attr.min_value << ' ' << attr.max_value << ' '
          << attr.name << '\n';
    } else {
      out << "categorical " << attr.cardinality << ' ' << attr.name << '\n';
    }
  }
}

std::optional<data::Schema> LoadSchema(std::istream& in) {
  std::istringstream line;
  if (!NextLine(in, &line)) return std::nullopt;
  std::string magic;
  line >> magic;
  if (magic != kSchemaMagic) return std::nullopt;

  if (!NextLine(in, &line)) return std::nullopt;
  int num_attributes = 0;
  int num_classes = 0;
  if (!(line >> num_attributes >> num_classes)) return std::nullopt;
  if (num_attributes < 0 || num_classes < 0) return std::nullopt;

  std::vector<data::Attribute> attributes;
  for (int a = 0; a < num_attributes; ++a) {
    if (!NextLine(in, &line)) return std::nullopt;
    std::string kind;
    if (!(line >> kind)) return std::nullopt;
    if (kind == "numeric") {
      double lo = 0.0;
      double hi = 0.0;
      std::string name;
      if (!(line >> lo >> hi >> name)) return std::nullopt;
      if (lo > hi) return std::nullopt;
      attributes.push_back(data::Schema::Numeric(name, lo, hi));
    } else if (kind == "categorical") {
      int cardinality = 0;
      std::string name;
      if (!(line >> cardinality >> name)) return std::nullopt;
      if (cardinality < 1 || cardinality > 64) return std::nullopt;
      attributes.push_back(data::Schema::Categorical(name, cardinality));
    } else {
      return std::nullopt;
    }
  }
  return data::Schema(std::move(attributes), num_classes);
}

void SaveDecisionTree(const dt::DecisionTree& tree, std::ostream& out) {
  out << kTreeMagic << '\n';
  SaveSchema(tree.schema(), out);
  out << std::setprecision(17);
  out << tree.num_nodes() << '\n';
  for (int i = 0; i < tree.num_nodes(); ++i) {
    const dt::DecisionTree::Node& node = tree.node(i);
    if (node.attribute < 0) {
      out << "leaf";
      for (int64_t count : node.class_counts) out << ' ' << count;
      out << '\n';
    } else {
      out << "split " << node.attribute << ' ' << node.threshold << ' '
          << node.left_mask << ' ' << node.left << ' ' << node.right << '\n';
    }
  }
}

std::optional<dt::DecisionTree> LoadDecisionTree(std::istream& in) {
  std::istringstream line;
  if (!NextLine(in, &line)) return std::nullopt;
  std::string magic;
  line >> magic;
  if (magic != kTreeMagic) return std::nullopt;

  std::optional<data::Schema> schema = LoadSchema(in);
  if (!schema.has_value()) return std::nullopt;

  if (!NextLine(in, &line)) return std::nullopt;
  int num_nodes = 0;
  if (!(line >> num_nodes) || num_nodes < 0) return std::nullopt;

  dt::DecisionTree tree(*schema);
  struct PendingChildren {
    int node = -1;
    int left = -1;
    int right = -1;
  };
  std::vector<PendingChildren> pending;
  for (int i = 0; i < num_nodes; ++i) {
    if (!NextLine(in, &line)) return std::nullopt;
    std::string kind;
    if (!(line >> kind)) return std::nullopt;
    if (kind == "leaf") {
      std::vector<int64_t> counts;
      int64_t count = 0;
      while (line >> count) {
        if (count < 0) return std::nullopt;
        counts.push_back(count);
      }
      if (static_cast<int>(counts.size()) != schema->num_classes()) {
        return std::nullopt;
      }
      const int index = tree.AddLeafNode(std::move(counts));
      if (index != i) return std::nullopt;
    } else if (kind == "split") {
      int attribute = 0;
      double threshold = 0.0;
      uint64_t left_mask = 0;
      int left = -1;
      int right = -1;
      if (!(line >> attribute >> threshold >> left_mask >> left >> right)) {
        return std::nullopt;
      }
      if (attribute < 0 || attribute >= schema->num_attributes()) {
        return std::nullopt;
      }
      if (left < 0 || left >= num_nodes || right < 0 || right >= num_nodes) {
        return std::nullopt;
      }
      const int index = tree.AddInternalNode(attribute, threshold, left_mask);
      if (index != i) return std::nullopt;
      pending.push_back({index, left, right});
    } else {
      return std::nullopt;
    }
  }
  for (const PendingChildren& p : pending) {
    tree.SetChildren(p.node, p.left, p.right);
  }
  return tree;
}

bool SaveLitsModelToFile(const lits::LitsModel& model,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  SaveLitsModel(model, out);
  return static_cast<bool>(out);
}

std::optional<lits::LitsModel> LoadLitsModelFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return LoadLitsModel(in);
}

bool SaveDecisionTreeToFile(const dt::DecisionTree& tree,
                            const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  SaveDecisionTree(tree, out);
  return static_cast<bool>(out);
}

std::optional<dt::DecisionTree> LoadDecisionTreeFromFile(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return LoadDecisionTree(in);
}

}  // namespace focus::io

#include "stats/rng.h"

#include "common/check.h"

namespace focus::stats {

std::mt19937_64 MakeRng(uint64_t seed) { return std::mt19937_64(seed); }

uint64_t DeriveSeed(uint64_t seed, uint64_t stream) {
  // SplitMix64 finalizer over (seed, stream); decorrelates nearby inputs.
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (stream + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double ExponentialVariate(std::mt19937_64& rng, double mean) {
  FOCUS_CHECK_GT(mean, 0.0);
  std::exponential_distribution<double> dist(1.0 / mean);
  return dist(rng);
}

int64_t PoissonVariate(std::mt19937_64& rng, double mean) {
  FOCUS_CHECK_GT(mean, 0.0);
  std::poisson_distribution<int64_t> dist(mean);
  return dist(rng);
}

double UniformVariate(std::mt19937_64& rng, double lo, double hi) {
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(rng);
}

int64_t UniformInt(std::mt19937_64& rng, int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(rng);
}

double NormalVariate(std::mt19937_64& rng) {
  std::normal_distribution<double> dist(0.0, 1.0);
  return dist(rng);
}

}  // namespace focus::stats

#ifndef FOCUS_STATS_DESCRIPTIVE_H_
#define FOCUS_STATS_DESCRIPTIVE_H_

#include <span>

namespace focus::stats {

double Mean(std::span<const double> values);

// Sample variance (n-1 denominator); 0 for fewer than two values.
double Variance(std::span<const double> values);

double StdDev(std::span<const double> values);

double Min(std::span<const double> values);
double Max(std::span<const double> values);

// Linear-interpolated quantile, q in [0, 1].
double Quantile(std::span<const double> values, double q);

// Pearson correlation coefficient of paired samples (NaN-free input,
// equal non-zero lengths). Returns 0 when either side is constant.
double PearsonCorrelation(std::span<const double> x, std::span<const double> y);

}  // namespace focus::stats

#endif  // FOCUS_STATS_DESCRIPTIVE_H_

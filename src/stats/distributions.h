#ifndef FOCUS_STATS_DISTRIBUTIONS_H_
#define FOCUS_STATS_DISTRIBUTIONS_H_

namespace focus::stats {

// Cumulative distribution functions needed by the qualification procedure
// (Section 3.4) and the chi-squared instantiation (Section 5.2.2).

// Standard normal CDF, Phi(z).
double NormalCdf(double z);

// Regularized lower incomplete gamma function P(a, x) = gamma(a, x)/Gamma(a),
// a > 0, x >= 0. Series for x < a + 1, continued fraction otherwise
// (Numerical Recipes style, implemented from the standard formulas).
double RegularizedGammaP(double a, double x);

// Chi-squared CDF with `dof` degrees of freedom evaluated at x >= 0.
double ChiSquaredCdf(double x, double dof);

// Upper-tail p-value for a chi-squared statistic.
double ChiSquaredPValue(double x, double dof);

}  // namespace focus::stats

#endif  // FOCUS_STATS_DISTRIBUTIONS_H_

#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"

namespace focus::stats {

double Mean(std::span<const double> values) {
  FOCUS_CHECK(!values.empty());
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double ss = 0.0;
  for (double v : values) ss += (v - mean) * (v - mean);
  return ss / static_cast<double>(values.size() - 1);
}

double StdDev(std::span<const double> values) {
  return std::sqrt(Variance(values));
}

double Min(std::span<const double> values) {
  FOCUS_CHECK(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) {
  FOCUS_CHECK(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double Quantile(std::span<const double> values, double q) {
  FOCUS_CHECK(!values.empty());
  FOCUS_CHECK_GE(q, 0.0);
  FOCUS_CHECK_LE(q, 1.0);
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double PearsonCorrelation(std::span<const double> x, std::span<const double> y) {
  FOCUS_CHECK_EQ(x.size(), y.size());
  FOCUS_CHECK(!x.empty());
  const double mx = Mean(x);
  const double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace focus::stats

#ifndef FOCUS_STATS_RNG_H_
#define FOCUS_STATS_RNG_H_

#include <cstdint>
#include <random>

namespace focus::stats {

// Deterministic RNG factory. All experiment harnesses derive their
// generators from an explicit seed so every reported number is
// reproducible run-to-run.
std::mt19937_64 MakeRng(uint64_t seed);

// Derives an independent child seed (SplitMix64 step), so parallel
// experiment arms can have decorrelated streams from one master seed.
uint64_t DeriveSeed(uint64_t seed, uint64_t stream);

// Exponential variate with the given mean.
double ExponentialVariate(std::mt19937_64& rng, double mean);

// Poisson variate with the given mean.
int64_t PoissonVariate(std::mt19937_64& rng, double mean);

// Uniform double in [lo, hi).
double UniformVariate(std::mt19937_64& rng, double lo, double hi);

// Uniform integer in [lo, hi] (inclusive).
int64_t UniformInt(std::mt19937_64& rng, int64_t lo, int64_t hi);

// Standard normal variate.
double NormalVariate(std::mt19937_64& rng);

}  // namespace focus::stats

#endif  // FOCUS_STATS_RNG_H_

#ifndef FOCUS_STATS_WILCOXON_H_
#define FOCUS_STATS_WILCOXON_H_

#include <span>

namespace focus::stats {

// Result of a Wilcoxon rank-sum (Mann–Whitney) two-sample test, as used in
// Section 6 of the paper to decide whether sample deviations at size
// s_{i+1} are stochastically smaller than at size s_i.
struct WilcoxonResult {
  double rank_sum_a = 0.0;  // rank sum of the first sample
  double u_statistic = 0.0; // Mann–Whitney U of the first sample
  double z = 0.0;           // normal approximation (tie-corrected, with
                            // continuity correction)
  // One-sided p-value for the alternative "values in `a` tend to be
  // LARGER than values in `b`".
  double p_greater = 1.0;
  // One-sided p-value for the alternative "values in `a` tend to be
  // SMALLER than values in `b`".
  double p_less = 1.0;
  double p_two_sided = 1.0;
};

// Runs the test on two independent samples. Requires both samples
// non-empty. Normal approximation is used (appropriate for the paper's
// sets of 50 deviations per sample size).
WilcoxonResult WilcoxonRankSum(std::span<const double> a,
                               std::span<const double> b);

// Exact version for small tie-free samples: the one-sided p-values are
// computed from the exact null distribution of the rank sum (dynamic
// programming over subset rank sums, feasible for na + nb <= 30). The
// samples must contain no tied values across the pool; use the normal
// approximation otherwise.
WilcoxonResult WilcoxonRankSumExact(std::span<const double> a,
                                    std::span<const double> b);

// True when the pooled samples are small and tie-free, i.e.
// WilcoxonRankSumExact is applicable.
bool WilcoxonExactApplicable(std::span<const double> a,
                             std::span<const double> b);

// The paper's Table 1/2 entry: the percentage confidence 100(1-alpha)%
// with which "samples of the larger size are equally representative" is
// rejected in favor of "deviations decreased". `smaller_size_sds` are SD
// values at size s_i, `larger_size_sds` at s_{i+1} (> s_i). Returns a
// value in [0, 100), capped at 99.99 like the paper's table.
double SignificanceOfDecreasePercent(std::span<const double> smaller_size_sds,
                                     std::span<const double> larger_size_sds);

}  // namespace focus::stats

#endif  // FOCUS_STATS_WILCOXON_H_

#include "stats/wilcoxon.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "stats/distributions.h"

namespace focus::stats {

WilcoxonResult WilcoxonRankSum(std::span<const double> a,
                               std::span<const double> b) {
  FOCUS_CHECK(!a.empty());
  FOCUS_CHECK(!b.empty());
  const double na = static_cast<double>(a.size());
  const double nb = static_cast<double>(b.size());

  // Pool, sort, assign mid-ranks to ties.
  struct Tagged {
    double value;
    bool from_a;
  };
  std::vector<Tagged> pooled;
  pooled.reserve(a.size() + b.size());
  for (double v : a) pooled.push_back({v, true});
  for (double v : b) pooled.push_back({v, false});
  std::sort(pooled.begin(), pooled.end(),
            [](const Tagged& x, const Tagged& y) { return x.value < y.value; });

  double rank_sum_a = 0.0;
  double tie_correction = 0.0;  // sum of (t^3 - t) over tie groups
  size_t i = 0;
  while (i < pooled.size()) {
    size_t j = i;
    while (j < pooled.size() && pooled[j].value == pooled[i].value) ++j;
    const double t = static_cast<double>(j - i);
    // Ranks are 1-based; the tied group spans ranks [i+1, j].
    const double mid_rank = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (size_t k = i; k < j; ++k) {
      if (pooled[k].from_a) rank_sum_a += mid_rank;
    }
    tie_correction += t * t * t - t;
    i = j;
  }

  WilcoxonResult result;
  result.rank_sum_a = rank_sum_a;
  result.u_statistic = rank_sum_a - na * (na + 1.0) / 2.0;

  const double n = na + nb;
  const double mean_u = na * nb / 2.0;
  double var_u = na * nb / 12.0 * ((n + 1.0) - tie_correction / (n * (n - 1.0)));
  if (var_u <= 0.0) {
    // All values identical: no evidence either way.
    result.z = 0.0;
    result.p_greater = result.p_less = 0.5;
    result.p_two_sided = 1.0;
    return result;
  }
  const double sd_u = std::sqrt(var_u);
  // Continuity correction of 0.5 toward the mean.
  double centered = result.u_statistic - mean_u;
  if (centered > 0.5) {
    centered -= 0.5;
  } else if (centered < -0.5) {
    centered += 0.5;
  } else {
    centered = 0.0;
  }
  result.z = centered / sd_u;
  result.p_greater = 1.0 - NormalCdf(result.z);
  result.p_less = NormalCdf(result.z);
  result.p_two_sided = 2.0 * std::min(result.p_greater, result.p_less);
  result.p_two_sided = std::min(result.p_two_sided, 1.0);
  return result;
}

WilcoxonResult WilcoxonRankSumExact(std::span<const double> a,
                                    std::span<const double> b) {
  FOCUS_CHECK(WilcoxonExactApplicable(a, b))
      << "exact Wilcoxon requires small, tie-free samples";
  // Start from the approximate computation to get the rank sum / U.
  WilcoxonResult result = WilcoxonRankSum(a, b);

  const int na = static_cast<int>(a.size());
  const int n = static_cast<int>(a.size() + b.size());
  const int max_sum = n * (n + 1) / 2;
  // count[k][s] = number of k-subsets of {1..i} with rank sum s, built
  // incrementally over i (only k <= na needed).
  std::vector<std::vector<double>> count(
      na + 1, std::vector<double>(max_sum + 1, 0.0));
  count[0][0] = 1.0;
  for (int i = 1; i <= n; ++i) {
    for (int k = std::min(na, i); k >= 1; --k) {
      for (int s = max_sum; s >= i; --s) {
        count[k][s] += count[k - 1][s - i];
      }
    }
  }
  double total = 0.0;
  for (int s = 0; s <= max_sum; ++s) total += count[na][s];

  const int w = static_cast<int>(std::llround(result.rank_sum_a));
  double at_most = 0.0;    // P(W <= w) numerator
  double at_least = 0.0;   // P(W >= w) numerator
  for (int s = 0; s <= max_sum; ++s) {
    if (s <= w) at_most += count[na][s];
    if (s >= w) at_least += count[na][s];
  }
  result.p_less = at_most / total;
  result.p_greater = at_least / total;
  result.p_two_sided = std::min(1.0, 2.0 * std::min(result.p_less,
                                                    result.p_greater));
  return result;
}

bool WilcoxonExactApplicable(std::span<const double> a,
                             std::span<const double> b) {
  if (a.empty() || b.empty() || a.size() + b.size() > 30) return false;
  std::vector<double> pooled(a.begin(), a.end());
  pooled.insert(pooled.end(), b.begin(), b.end());
  std::sort(pooled.begin(), pooled.end());
  return std::adjacent_find(pooled.begin(), pooled.end()) == pooled.end();
}

double SignificanceOfDecreasePercent(std::span<const double> smaller_size_sds,
                                     std::span<const double> larger_size_sds) {
  // Alternative: SD at the smaller sample size tends to be LARGER, i.e.
  // growing the sample decreased the deviation. Small tie-free samples
  // use the exact null distribution; otherwise the (tie-corrected)
  // normal approximation.
  const WilcoxonResult r =
      WilcoxonExactApplicable(smaller_size_sds, larger_size_sds)
          ? WilcoxonRankSumExact(smaller_size_sds, larger_size_sds)
          : WilcoxonRankSum(smaller_size_sds, larger_size_sds);
  const double confidence = 100.0 * (1.0 - r.p_greater);
  return std::min(std::max(confidence, 0.0), 99.99);
}

}  // namespace focus::stats

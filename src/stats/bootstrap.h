#ifndef FOCUS_STATS_BOOTSTRAP_H_
#define FOCUS_STATS_BOOTSTRAP_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

namespace focus::stats {

// Generic two-sample pooled bootstrap (Efron & Tibshirani [14]), the
// technique the paper's qualification procedure (Section 3.4) relies on.
//
// Under the null hypothesis that D1 and D2 come from the same generating
// process, the pooled bag D1 ∪ D2 is an estimate of that process. Each
// bootstrap replicate draws |D1| and |D2| elements with replacement from
// the pool and recomputes the statistic; the observed statistic is then
// located within that null distribution.

struct BootstrapOptions {
  int num_replicates = 99;
  uint64_t seed = 0x5eed;
};

// `statistic(sample1_indices, sample2_indices)` evaluates the deviation on
// a resampled pair, where indices refer to a pooled collection of
// n1 + n2 elements. Returns the null-distribution values.
std::vector<double> BootstrapNullDistribution(
    int64_t n1, int64_t n2,
    const std::function<double(std::span<const int64_t>,
                               std::span<const int64_t>)>& statistic,
    const BootstrapOptions& options);

// Percentile of `observed` within `null_distribution`: the fraction of
// null values strictly below `observed`, in percent (0..100). This is the
// paper's sig(d) — high values mean the deviation is unlikely under the
// null hypothesis.
double SignificancePercent(double observed,
                           std::span<const double> null_distribution);

}  // namespace focus::stats

#endif  // FOCUS_STATS_BOOTSTRAP_H_

#include "stats/distributions.h"

#include <cmath>
#include <limits>

#include "common/check.h"

namespace focus::stats {
namespace {

// Series expansion of P(a, x), valid and quickly convergent for x < a + 1.
double GammaPSeries(double a, double x) {
  const double gln = std::lgamma(a);
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int i = 0; i < 500; ++i) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - gln);
}

// Continued-fraction expansion of Q(a, x) = 1 - P(a, x), for x >= a + 1.
double GammaQContinuedFraction(double a, double x) {
  const double gln = std::lgamma(a);
  const double kTiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kTiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = b + an / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + a * std::log(x) - gln) * h;
}

}  // namespace

double NormalCdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }

double RegularizedGammaP(double a, double x) {
  FOCUS_CHECK_GT(a, 0.0);
  FOCUS_CHECK_GE(x, 0.0);
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) return GammaPSeries(a, x);
  return 1.0 - GammaQContinuedFraction(a, x);
}

double ChiSquaredCdf(double x, double dof) {
  FOCUS_CHECK_GT(dof, 0.0);
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(dof / 2.0, x / 2.0);
}

double ChiSquaredPValue(double x, double dof) {
  return 1.0 - ChiSquaredCdf(x, dof);
}

}  // namespace focus::stats

#include "stats/bootstrap.h"

#include <random>

#include "common/check.h"
#include "stats/rng.h"

namespace focus::stats {

std::vector<double> BootstrapNullDistribution(
    int64_t n1, int64_t n2,
    const std::function<double(std::span<const int64_t>,
                               std::span<const int64_t>)>& statistic,
    const BootstrapOptions& options) {
  FOCUS_CHECK_GT(n1, 0);
  FOCUS_CHECK_GT(n2, 0);
  FOCUS_CHECK_GT(options.num_replicates, 0);
  const int64_t pool_size = n1 + n2;
  std::mt19937_64 rng = MakeRng(options.seed);
  std::uniform_int_distribution<int64_t> pick(0, pool_size - 1);

  std::vector<double> null_values;
  null_values.reserve(options.num_replicates);
  std::vector<int64_t> sample1(n1);
  std::vector<int64_t> sample2(n2);
  for (int r = 0; r < options.num_replicates; ++r) {
    for (int64_t i = 0; i < n1; ++i) sample1[i] = pick(rng);
    for (int64_t i = 0; i < n2; ++i) sample2[i] = pick(rng);
    null_values.push_back(statistic(sample1, sample2));
  }
  return null_values;
}

double SignificancePercent(double observed,
                           std::span<const double> null_distribution) {
  FOCUS_CHECK(!null_distribution.empty());
  int64_t below = 0;
  for (double v : null_distribution) {
    if (v < observed) ++below;
  }
  return 100.0 * static_cast<double>(below) /
         static_cast<double>(null_distribution.size());
}

}  // namespace focus::stats

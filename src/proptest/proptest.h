#ifndef FOCUS_PROPTEST_PROPTEST_H_
#define FOCUS_PROPTEST_PROPTEST_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "stats/rng.h"

namespace focus::proptest {

// Minimal header-first property-testing harness for the FOCUS laws.
//
// Every property runs `num_cases` generated cases. Case i draws its value
// from an independent RNG stream seeded with DeriveSeed(master_seed, i),
// so a failure is fully identified by ONE 64-bit case seed. The harness
// prints that seed on failure, and setting
//
//   FOCUS_PROPTEST_SEED=<case seed>
//
// in the environment re-runs exactly that case (of every property — cheap,
// since each property then runs a single case). FOCUS_PROPTEST_CASES
// overrides the per-property case count; FOCUS_PROPTEST_MASTER rotates the
// master seed for soak runs without recompiling.
//
// On failure the harness additionally performs BOUNDED shrinking: the
// domain's `shrink` hook proposes structurally smaller candidates, the
// first still-failing candidate is descended into, and after at most
// kMaxShrinkSteps total re-evaluations the smallest failure found is
// reported alongside the original.

// Per-case deterministic random source. Wraps the shared stats engine so
// generated workloads use the same variates as the rest of the codebase.
class Rng {
 public:
  explicit Rng(uint64_t seed) : seed_(seed), engine_(stats::MakeRng(seed)) {}

  uint64_t seed() const { return seed_; }
  std::mt19937_64& engine() { return engine_; }

  // Uniform integer in [lo, hi] (inclusive).
  int64_t IntIn(int64_t lo, int64_t hi) {
    return stats::UniformInt(engine_, lo, hi);
  }
  // Uniform double in [lo, hi).
  double DoubleIn(double lo, double hi) {
    return stats::UniformVariate(engine_, lo, hi);
  }
  bool Chance(double p) { return DoubleIn(0.0, 1.0) < p; }

  template <typename T>
  const T& OneOf(const std::vector<T>& options) {
    return options[static_cast<size_t>(
        IntIn(0, static_cast<int64_t>(options.size()) - 1))];
  }

  // An independent child seed for nested generators.
  uint64_t Fork(uint64_t stream) { return stats::DeriveSeed(seed_, stream); }

 private:
  uint64_t seed_;
  std::mt19937_64 engine_;
};

// Outcome of evaluating a property on one generated value.
struct PropResult {
  bool ok = true;
  std::string message;

  static PropResult Ok() { return {true, ""}; }
  static PropResult Fail(std::string why) { return {false, std::move(why)}; }
};

// Runner configuration. FromEnv applies the FOCUS_PROPTEST_* overrides.
struct Config {
  uint64_t master_seed = 0xF0C05;
  int num_cases = 20;
  // When set (FOCUS_PROPTEST_SEED), run exactly one case with this seed.
  std::optional<uint64_t> replay_seed;

  static Config FromEnv(int default_cases = 20);
};

// A generatable domain: how to draw a value, how to print it, and
// (optionally) how to propose smaller failing candidates.
template <typename T>
struct Domain {
  std::function<T(Rng&)> generate;
  std::function<std::string(const T&)> describe =
      [](const T&) { return std::string("<value>"); };
  // Candidates structurally smaller than `value`, simplest first. Empty =
  // no shrinking for this domain.
  std::function<std::vector<T>(const T&)> shrink =
      [](const T&) { return std::vector<T>{}; };
};

namespace internal {

inline constexpr int kMaxShrinkSteps = 128;

// Global catalogue of registered properties (name + master seed + cases),
// so a binary can enumerate what it checks. Registration happens on the
// first Check() call of each property.
void RegisterProperty(const std::string& name, uint64_t master_seed,
                      int num_cases);
std::vector<std::string> RegisteredProperties();

// One failure report line, routed through gtest when available (weakly
// linked via ADD_FAILURE in the header would force a gtest dependency, so
// the .cc reports through std::fprintf and a failure flag the caller
// converts into an assertion).
void ReportFailure(const std::string& property, uint64_t case_seed,
                   int case_index, const std::string& original_desc,
                   const std::string& original_msg,
                   const std::string& shrunk_desc,
                   const std::string& shrunk_msg, int shrink_steps);

}  // namespace internal

// Checks `property` over `config.num_cases` generated cases. Returns true
// when every case passed. On failure, shrinks (bounded), prints a replay
// banner with the case seed, and returns false; the caller asserts on the
// return value so the failure surfaces in its own framework:
//
//   EXPECT_TRUE(proptest::Check<TxnDbSpec>("lits/self-deviation-zero",
//                                          domain, prop));
template <typename T>
bool Check(const std::string& name, const Domain<T>& domain,
           const std::function<PropResult(const T&)>& property,
           Config config = Config::FromEnv()) {
  internal::RegisterProperty(name, config.master_seed, config.num_cases);

  std::vector<uint64_t> case_seeds;
  if (config.replay_seed.has_value()) {
    case_seeds.push_back(*config.replay_seed);
  } else {
    for (int i = 0; i < config.num_cases; ++i) {
      case_seeds.push_back(stats::DeriveSeed(config.master_seed,
                                             static_cast<uint64_t>(i)));
    }
  }

  bool all_ok = true;
  for (size_t i = 0; i < case_seeds.size(); ++i) {
    const uint64_t case_seed = case_seeds[i];
    Rng rng(case_seed);
    T value = domain.generate(rng);
    PropResult result = property(value);
    if (result.ok) continue;
    all_ok = false;

    // Bounded greedy shrink: descend into the first failing candidate.
    const std::string original_desc = domain.describe(value);
    const std::string original_msg = result.message;
    T smallest = value;
    std::string smallest_msg = result.message;
    int steps = 0;
    bool made_progress = true;
    while (made_progress && steps < internal::kMaxShrinkSteps) {
      made_progress = false;
      for (const T& candidate : domain.shrink(smallest)) {
        if (++steps >= internal::kMaxShrinkSteps) break;
        const PropResult r = property(candidate);
        if (!r.ok) {
          smallest = candidate;
          smallest_msg = r.message;
          made_progress = true;
          break;
        }
      }
    }
    internal::ReportFailure(name, case_seed, static_cast<int>(i),
                            original_desc, original_msg,
                            domain.describe(smallest), smallest_msg, steps);
  }
  return all_ok;
}

}  // namespace focus::proptest

#endif  // FOCUS_PROPTEST_PROPTEST_H_

#include "proptest/proptest.h"

#include <cstdlib>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace focus::proptest {

Config Config::FromEnv(int default_cases) {
  Config config;
  config.num_cases = default_cases;
  if (const char* cases = std::getenv("FOCUS_PROPTEST_CASES")) {
    const long parsed = std::strtol(cases, nullptr, 10);
    if (parsed > 0) config.num_cases = static_cast<int>(parsed);
  }
  if (const char* master = std::getenv("FOCUS_PROPTEST_MASTER")) {
    config.master_seed = std::strtoull(master, nullptr, 10);
  }
  if (const char* replay = std::getenv("FOCUS_PROPTEST_SEED")) {
    config.replay_seed = std::strtoull(replay, nullptr, 10);
  }
  return config;
}

namespace internal {
namespace {

common::Mutex registry_mutex;
std::vector<std::string>& RegistryNames() {
  static std::vector<std::string>* names = new std::vector<std::string>();
  return *names;
}

}  // namespace

void RegisterProperty(const std::string& name, uint64_t master_seed,
                      int num_cases) {
  common::MutexLock lock(&registry_mutex);
  std::vector<std::string>& names = RegistryNames();
  for (const std::string& existing : names) {
    if (existing == name) return;
  }
  names.push_back(name);
  // One banner per property per process: the master seed identifies the
  // whole sweep, so even an aborted run (crash mid-case) is replayable.
  std::fprintf(stderr,
               "[proptest] %s: %d cases, master_seed=%llu "
               "(replay one case with FOCUS_PROPTEST_SEED=<case seed>)\n",
               name.c_str(), num_cases,
               static_cast<unsigned long long>(master_seed));
}

std::vector<std::string> RegisteredProperties() {
  common::MutexLock lock(&registry_mutex);
  return RegistryNames();
}

void ReportFailure(const std::string& property, uint64_t case_seed,
                   int case_index, const std::string& original_desc,
                   const std::string& original_msg,
                   const std::string& shrunk_desc,
                   const std::string& shrunk_msg, int shrink_steps) {
  std::fprintf(stderr,
               "[proptest] FAILED %s (case %d)\n"
               "  replay:   FOCUS_PROPTEST_SEED=%llu\n"
               "  original: %s\n"
               "            %s\n",
               property.c_str(), case_index,
               static_cast<unsigned long long>(case_seed),
               original_desc.c_str(), original_msg.c_str());
  if (shrunk_desc != original_desc || shrunk_msg != original_msg) {
    std::fprintf(stderr,
                 "  shrunk(%d steps): %s\n"
                 "            %s\n",
                 shrink_steps, shrunk_desc.c_str(), shrunk_msg.c_str());
  }
}

}  // namespace internal
}  // namespace focus::proptest

#include "proptest/generators.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

#include "stats/rng.h"

namespace focus::proptest {
namespace {

// Halves `value` toward `floor`; returns floor when already there.
int64_t Halve(int64_t value, int64_t floor) {
  return std::max(floor, value / 2);
}

}  // namespace

// ---------------------------------------------------------------- lits

LitsWorkload GenLitsWorkload(Rng& rng) {
  LitsWorkload w;
  w.quest.num_transactions = rng.IntIn(5, 600);
  w.quest.num_items = static_cast<int32_t>(rng.IntIn(3, 100));
  w.quest.num_patterns =
      static_cast<int32_t>(rng.IntIn(2, std::min<int64_t>(50, w.quest.num_items)));
  w.quest.avg_pattern_length = rng.DoubleIn(1.5, 5.0);
  w.quest.avg_transaction_length = rng.DoubleIn(2.0, 8.0);
  w.quest.seed = static_cast<uint64_t>(rng.IntIn(1, 1 << 30));
  w.quest.pattern_seed = static_cast<uint64_t>(rng.IntIn(1, 1 << 30));
  // High supports are generated on purpose: they mine EMPTY models, a
  // corner the example-based tests never hit.
  w.apriori.min_support = rng.Chance(0.15) ? rng.DoubleIn(0.5, 0.9)
                                           : rng.DoubleIn(0.02, 0.25);
  w.apriori.max_itemset_size = static_cast<int>(rng.IntIn(2, 5));
  w.apriori.min_absolute_count = 2;
  return w;
}

LitsPair GenLitsPair(Rng& rng) {
  LitsPair pair;
  pair.a = GenLitsWorkload(rng);
  pair.b = GenLitsWorkload(rng);
  // A shared item universe is required for the pair to be comparable.
  pair.b.quest.num_items = pair.a.quest.num_items;
  pair.b.quest.num_patterns = std::min(pair.b.quest.num_patterns,
                                       pair.a.quest.num_items);
  pair.b.apriori = pair.a.apriori;
  // Sometimes a "same distribution" pair (shared pattern table).
  if (rng.Chance(0.4)) {
    pair.b.quest.pattern_seed = pair.a.quest.pattern_seed;
    pair.b.quest.num_patterns = pair.a.quest.num_patterns;
    pair.b.quest.avg_pattern_length = pair.a.quest.avg_pattern_length;
  }
  return pair;
}

LitsTriple GenLitsTriple(Rng& rng) {
  LitsTriple triple;
  LitsPair pair = GenLitsPair(rng);
  triple.a = pair.a;
  triple.b = pair.b;
  triple.c = GenLitsWorkload(rng);
  triple.c.quest.num_items = triple.a.quest.num_items;
  triple.c.quest.num_patterns = std::min(triple.c.quest.num_patterns,
                                         triple.a.quest.num_items);
  triple.c.apriori = triple.a.apriori;
  return triple;
}

data::TransactionDb MaterializeDb(const LitsWorkload& workload) {
  return datagen::GenerateQuest(workload.quest);
}

lits::LitsModel Mine(const LitsWorkload& workload,
                     const data::TransactionDb& db) {
  return lits::Apriori(db, workload.apriori);
}

std::string Describe(const LitsWorkload& workload) {
  std::ostringstream out;
  out << "lits{txns=" << workload.quest.num_transactions
      << " items=" << workload.quest.num_items
      << " pats=" << workload.quest.num_patterns
      << " patlen=" << workload.quest.avg_pattern_length
      << " txnlen=" << workload.quest.avg_transaction_length
      << " seed=" << workload.quest.seed
      << " patseed=" << workload.quest.pattern_seed
      << " minsup=" << workload.apriori.min_support
      << " maxsize=" << workload.apriori.max_itemset_size << "}";
  return out.str();
}

std::string Describe(const LitsPair& pair) {
  return "a=" + Describe(pair.a) + " b=" + Describe(pair.b);
}

std::string Describe(const LitsTriple& triple) {
  return "a=" + Describe(triple.a) + " b=" + Describe(triple.b) +
         " c=" + Describe(triple.c);
}

std::vector<LitsWorkload> Shrink(const LitsWorkload& workload) {
  std::vector<LitsWorkload> candidates;
  if (workload.quest.num_transactions > 5) {
    LitsWorkload c = workload;
    c.quest.num_transactions = Halve(c.quest.num_transactions, 5);
    candidates.push_back(c);
  }
  if (workload.quest.num_items > 3) {
    LitsWorkload c = workload;
    c.quest.num_items = static_cast<int32_t>(Halve(c.quest.num_items, 3));
    c.quest.num_patterns =
        std::min(c.quest.num_patterns, c.quest.num_items);
    candidates.push_back(c);
  }
  if (workload.quest.num_patterns > 2) {
    LitsWorkload c = workload;
    c.quest.num_patterns = static_cast<int32_t>(Halve(c.quest.num_patterns, 2));
    candidates.push_back(c);
  }
  return candidates;
}

namespace {

// Shrinks one member of a multi-workload case at a time.
template <typename Pair>
std::vector<Pair> ShrinkPairwise(const Pair& pair) {
  std::vector<Pair> candidates;
  for (const LitsWorkload& a : Shrink(pair.a)) {
    Pair c = pair;
    c.a = a;
    candidates.push_back(c);
  }
  for (const LitsWorkload& b : Shrink(pair.b)) {
    Pair c = pair;
    c.b = b;
    candidates.push_back(c);
  }
  return candidates;
}

}  // namespace

std::vector<LitsPair> Shrink(const LitsPair& pair) {
  return ShrinkPairwise(pair);
}

std::vector<LitsTriple> Shrink(const LitsTriple& triple) {
  std::vector<LitsTriple> candidates = ShrinkPairwise(triple);
  for (const LitsWorkload& c : Shrink(triple.c)) {
    LitsTriple t = triple;
    t.c = c;
    candidates.push_back(t);
  }
  return candidates;
}

lits::Itemset GenItemset(Rng& rng, int32_t num_items, int max_len) {
  const int len = static_cast<int>(
      rng.IntIn(0, std::min<int64_t>(max_len, num_items)));
  std::vector<int32_t> items;
  items.reserve(len);
  for (int i = 0; i < len; ++i) {
    items.push_back(static_cast<int32_t>(rng.IntIn(0, num_items - 1)));
  }
  return lits::Itemset(std::move(items));  // sorts + dedupes
}

core::ItemsetSet GenItemsetSet(Rng& rng, int32_t num_items, int max_sets,
                               int max_len) {
  const int count = static_cast<int>(rng.IntIn(0, max_sets));
  core::ItemsetSet set;
  set.reserve(count);
  for (int i = 0; i < count; ++i) {
    set.push_back(GenItemset(rng, num_items, max_len));
  }
  return core::NormalizeItemsets(std::move(set));
}

std::string Describe(const core::ItemsetSet& set) {
  std::ostringstream out;
  out << "{";
  for (size_t i = 0; i < set.size(); ++i) {
    out << (i == 0 ? "" : ", ") << set[i].ToString();
  }
  out << "}";
  return out.str();
}

// ---------------------------------------------------------------- dt

DtWorkload GenDtWorkload(Rng& rng) {
  DtWorkload w;
  w.gen.num_rows = rng.IntIn(200, 2500);
  w.gen.function = static_cast<datagen::ClassFunction>(rng.IntIn(1, 7));
  w.gen.label_noise = rng.Chance(0.3) ? rng.DoubleIn(0.0, 0.2) : 0.0;
  w.gen.seed = static_cast<uint64_t>(rng.IntIn(1, 1 << 30));
  // Depth 1 stumps and oversized leaves (single-leaf trees) are the
  // degenerate corners the GCR code must survive.
  w.cart.max_depth = static_cast<int>(rng.IntIn(1, 7));
  w.cart.min_leaf_size = rng.Chance(0.15) ? w.gen.num_rows * 2
                                          : rng.IntIn(20, 200);
  return w;
}

DtPair GenDtPair(Rng& rng) {
  DtPair pair;
  pair.a = GenDtWorkload(rng);
  pair.b = GenDtWorkload(rng);
  return pair;
}

data::Dataset MaterializeDataset(const DtWorkload& workload) {
  return datagen::GenerateClassification(workload.gen);
}

dt::DecisionTree BuildTree(const DtWorkload& workload,
                           const data::Dataset& dataset) {
  return dt::BuildCart(dataset, workload.cart);
}

std::string Describe(const DtWorkload& workload) {
  std::ostringstream out;
  out << "dt{rows=" << workload.gen.num_rows
      << " F" << static_cast<int>(workload.gen.function)
      << " noise=" << workload.gen.label_noise
      << " seed=" << workload.gen.seed
      << " depth=" << workload.cart.max_depth
      << " minleaf=" << workload.cart.min_leaf_size << "}";
  return out.str();
}

std::string Describe(const DtPair& pair) {
  return "a=" + Describe(pair.a) + " b=" + Describe(pair.b);
}

std::vector<DtWorkload> Shrink(const DtWorkload& workload) {
  std::vector<DtWorkload> candidates;
  if (workload.gen.num_rows > 200) {
    DtWorkload c = workload;
    c.gen.num_rows = Halve(c.gen.num_rows, 200);
    candidates.push_back(c);
  }
  if (workload.cart.max_depth > 1) {
    DtWorkload c = workload;
    c.cart.max_depth /= 2;
    candidates.push_back(c);
  }
  return candidates;
}

std::vector<DtPair> Shrink(const DtPair& pair) {
  std::vector<DtPair> candidates;
  for (const DtWorkload& a : Shrink(pair.a)) {
    candidates.push_back({a, pair.b});
  }
  for (const DtWorkload& b : Shrink(pair.b)) {
    candidates.push_back({pair.a, b});
  }
  return candidates;
}

data::Box GenBox(Rng& rng, const data::Schema& schema, bool allow_empty) {
  data::Box box = data::Box::Full(schema);
  for (int a = 0; a < schema.num_attributes(); ++a) {
    if (!rng.Chance(0.4)) continue;
    const data::Attribute& attr = schema.attribute(a);
    if (attr.type == data::AttributeType::kNumeric) {
      double lo = rng.DoubleIn(attr.min_value, attr.max_value);
      double hi = rng.DoubleIn(attr.min_value, attr.max_value);
      if (lo > hi) std::swap(lo, hi);
      if (lo == hi && !allow_empty) hi = attr.max_value;
      box.ClampNumeric(a, lo, hi);
    } else {
      uint64_t mask = 0;
      for (int code = 0; code < attr.cardinality; ++code) {
        if (rng.Chance(0.6)) mask |= (1ULL << code);
      }
      if (mask == 0 && !allow_empty) mask = 1;  // keep at least one code
      box.ClampCategorical(a, mask);
    }
  }
  return box;
}

// ---------------------------------------------------------------- cluster

ClusterWorkload GenClusterWorkload(Rng& rng) {
  ClusterWorkload w;
  w.num_attributes = static_cast<int>(rng.IntIn(1, 3));
  w.num_blobs = static_cast<int>(rng.IntIn(1, 4));
  w.rows = rng.IntIn(100, 800);
  w.blob_sd = rng.DoubleIn(0.02, 0.12);
  w.bins = static_cast<int>(rng.IntIn(3, 10));
  w.density_threshold = rng.DoubleIn(0.002, 0.05);
  w.seed = static_cast<uint64_t>(rng.IntIn(1, 1 << 30));
  return w;
}

ClusterPair GenClusterPair(Rng& rng) {
  ClusterPair pair;
  pair.a = GenClusterWorkload(rng);
  pair.b = GenClusterWorkload(rng);
  // ClusterGcr requires both models to share the grid shape.
  pair.b.num_attributes = pair.a.num_attributes;
  pair.b.bins = pair.a.bins;
  return pair;
}

data::Schema ClusterSchema(const ClusterWorkload& workload) {
  std::vector<data::Attribute> attributes;
  for (int a = 0; a < workload.num_attributes; ++a) {
    attributes.push_back(
        data::Schema::Numeric("x" + std::to_string(a), 0.0, 1.0));
  }
  return data::Schema(std::move(attributes), 0);
}

data::Dataset MaterializeBlobs(const ClusterWorkload& workload) {
  const data::Schema schema = ClusterSchema(workload);
  data::Dataset dataset(schema);
  dataset.Reserve(workload.rows);
  std::mt19937_64 rng = stats::MakeRng(workload.seed);
  std::vector<std::vector<double>> centers(workload.num_blobs);
  for (auto& center : centers) {
    center.resize(workload.num_attributes);
    for (double& c : center) c = stats::UniformVariate(rng, 0.1, 0.9);
  }
  std::vector<double> row(workload.num_attributes);
  for (int64_t i = 0; i < workload.rows; ++i) {
    const auto& center = centers[static_cast<size_t>(
        stats::UniformInt(rng, 0, workload.num_blobs - 1))];
    for (int a = 0; a < workload.num_attributes; ++a) {
      const double v =
          center[a] + workload.blob_sd * stats::NormalVariate(rng);
      row[a] = std::clamp(v, 0.0, 0.999);
    }
    dataset.AddRow(row, 0);
  }
  return dataset;
}

cluster::Grid MakeGrid(const ClusterWorkload& workload) {
  std::vector<int> attributes(workload.num_attributes);
  for (int a = 0; a < workload.num_attributes; ++a) attributes[a] = a;
  return cluster::Grid(ClusterSchema(workload), std::move(attributes),
                       workload.bins);
}

cluster::ClusterModel MineCluster(const ClusterWorkload& workload,
                                  const data::Dataset& dataset) {
  cluster::GridClusteringOptions options;
  options.density_threshold = workload.density_threshold;
  return cluster::GridClustering(dataset, MakeGrid(workload), options);
}

std::string Describe(const ClusterWorkload& workload) {
  std::ostringstream out;
  out << "cluster{attrs=" << workload.num_attributes
      << " blobs=" << workload.num_blobs << " rows=" << workload.rows
      << " sd=" << workload.blob_sd << " bins=" << workload.bins
      << " density=" << workload.density_threshold
      << " seed=" << workload.seed << "}";
  return out.str();
}

std::string Describe(const ClusterPair& pair) {
  return "a=" + Describe(pair.a) + " b=" + Describe(pair.b);
}

std::vector<ClusterWorkload> Shrink(const ClusterWorkload& workload) {
  std::vector<ClusterWorkload> candidates;
  if (workload.rows > 100) {
    ClusterWorkload c = workload;
    c.rows = Halve(c.rows, 100);
    candidates.push_back(c);
  }
  if (workload.bins > 3) {
    ClusterWorkload c = workload;
    c.bins = static_cast<int>(Halve(c.bins, 3));
    candidates.push_back(c);
  }
  return candidates;
}

std::vector<ClusterPair> Shrink(const ClusterPair& pair) {
  std::vector<ClusterPair> candidates;
  // Grid shape must stay shared, so bins shrink in lockstep.
  if (pair.a.bins > 3) {
    ClusterPair c = pair;
    c.a.bins = c.b.bins = static_cast<int>(Halve(pair.a.bins, 3));
    candidates.push_back(c);
  }
  for (int member = 0; member < 2; ++member) {
    const ClusterWorkload& w = member == 0 ? pair.a : pair.b;
    if (w.rows > 100) {
      ClusterPair c = pair;
      (member == 0 ? c.a : c.b).rows = Halve(w.rows, 100);
      candidates.push_back(c);
    }
  }
  return candidates;
}

// ---------------------------------------------------------------- domains

Domain<LitsWorkload> LitsWorkloadDomain() {
  return {.generate = [](Rng& rng) { return GenLitsWorkload(rng); },
          .describe = [](const LitsWorkload& w) { return Describe(w); },
          .shrink = [](const LitsWorkload& w) { return Shrink(w); }};
}

Domain<LitsPair> LitsPairDomain() {
  return {.generate = [](Rng& rng) { return GenLitsPair(rng); },
          .describe = [](const LitsPair& p) { return Describe(p); },
          .shrink = [](const LitsPair& p) { return Shrink(p); }};
}

Domain<LitsTriple> LitsTripleDomain() {
  return {.generate = [](Rng& rng) { return GenLitsTriple(rng); },
          .describe = [](const LitsTriple& t) { return Describe(t); },
          .shrink = [](const LitsTriple& t) { return Shrink(t); }};
}

Domain<DtWorkload> DtWorkloadDomain() {
  return {.generate = [](Rng& rng) { return GenDtWorkload(rng); },
          .describe = [](const DtWorkload& w) { return Describe(w); },
          .shrink = [](const DtWorkload& w) { return Shrink(w); }};
}

Domain<DtPair> DtPairDomain() {
  return {.generate = [](Rng& rng) { return GenDtPair(rng); },
          .describe = [](const DtPair& p) { return Describe(p); },
          .shrink = [](const DtPair& p) { return Shrink(p); }};
}

Domain<ClusterWorkload> ClusterWorkloadDomain() {
  return {.generate = [](Rng& rng) { return GenClusterWorkload(rng); },
          .describe = [](const ClusterWorkload& w) { return Describe(w); },
          .shrink = [](const ClusterWorkload& w) { return Shrink(w); }};
}

Domain<ClusterPair> ClusterPairDomain() {
  return {.generate = [](Rng& rng) { return GenClusterPair(rng); },
          .describe = [](const ClusterPair& p) { return Describe(p); },
          .shrink = [](const ClusterPair& p) { return Shrink(p); }};
}

}  // namespace focus::proptest

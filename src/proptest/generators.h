#ifndef FOCUS_PROPTEST_GENERATORS_H_
#define FOCUS_PROPTEST_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster_model.h"
#include "cluster/grid_clustering.h"
#include "core/region_algebra.h"
#include "data/box.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "data/transaction_db.h"
#include "datagen/class_gen.h"
#include "datagen/quest_gen.h"
#include "itemsets/apriori.h"
#include "proptest/proptest.h"
#include "tree/cart_builder.h"

namespace focus::proptest {

// Seeded workload generators shared by the law checkers, the differential
// oracles, and tests/property_test.cc. Every generator is a pure function
// of an Rng (itself a pure function of one case seed), so workloads are
// replayable from the seed alone. Sizes are deliberately small — the law
// suites sweep dozens of cases per property on one core.

// ---------------------------------------------------------------- lits

// One market-basket workload: Quest generator parameters plus mining
// options. Covers degenerate corners on purpose: single-item universes,
// a handful of transactions, and min_support high enough to mine an EMPTY
// model.
struct LitsWorkload {
  datagen::QuestParams quest;
  lits::AprioriOptions apriori;
};

// Two (resp. three) workloads over a SHARED item universe, sometimes from
// the same generating pattern table (the paper's "same distribution"
// pairs) and sometimes from unrelated ones.
struct LitsPair {
  LitsWorkload a;
  LitsWorkload b;
};
struct LitsTriple {
  LitsWorkload a;
  LitsWorkload b;
  LitsWorkload c;
};

LitsWorkload GenLitsWorkload(Rng& rng);
LitsPair GenLitsPair(Rng& rng);
LitsTriple GenLitsTriple(Rng& rng);

data::TransactionDb MaterializeDb(const LitsWorkload& workload);
lits::LitsModel Mine(const LitsWorkload& workload,
                     const data::TransactionDb& db);

std::string Describe(const LitsWorkload& workload);
std::string Describe(const LitsPair& pair);
std::string Describe(const LitsTriple& triple);

// Shrinking halves the transaction count, pattern count, and item universe
// toward their minima, preserving the seeds.
std::vector<LitsWorkload> Shrink(const LitsWorkload& workload);
std::vector<LitsPair> Shrink(const LitsPair& pair);
std::vector<LitsTriple> Shrink(const LitsTriple& triple);

// A random itemset over `num_items` items with at most `max_len` items —
// possibly empty (the empty itemset is a legal region: the whole space).
lits::Itemset GenItemset(Rng& rng, int32_t num_items, int max_len);

// A normalized GCR-ready region set (sorted, deduplicated collection of
// itemsets), possibly empty.
core::ItemsetSet GenItemsetSet(Rng& rng, int32_t num_items, int max_sets,
                               int max_len);

std::string Describe(const core::ItemsetSet& set);

// ---------------------------------------------------------------- dt

// One classification workload: generator parameters plus CART options.
// Degenerate corners: depth-1 stumps and min_leaf_size large enough to
// force a single-leaf tree.
struct DtWorkload {
  datagen::ClassGenParams gen;
  dt::CartOptions cart;
};
struct DtPair {
  DtWorkload a;
  DtWorkload b;
};

DtWorkload GenDtWorkload(Rng& rng);
DtPair GenDtPair(Rng& rng);

data::Dataset MaterializeDataset(const DtWorkload& workload);
dt::DecisionTree BuildTree(const DtWorkload& workload,
                           const data::Dataset& dataset);

std::string Describe(const DtWorkload& workload);
std::string Describe(const DtPair& pair);
std::vector<DtWorkload> Shrink(const DtWorkload& workload);
std::vector<DtPair> Shrink(const DtPair& pair);

// A random sub-box of the workload schema's attribute space (random
// numeric clamps and categorical mask restrictions); never empty by
// construction unless `allow_empty`.
data::Box GenBox(Rng& rng, const data::Schema& schema,
                 bool allow_empty = false);

// ---------------------------------------------------------------- cluster

// A blob dataset over `num_attributes` numeric attributes in [0,1) plus a
// shared grid and density threshold, for grid-clustering models.
struct ClusterWorkload {
  int num_attributes = 2;
  int num_blobs = 3;
  int64_t rows = 500;
  double blob_sd = 0.05;
  int bins = 8;
  double density_threshold = 0.01;
  uint64_t seed = 1;
};
struct ClusterPair {
  ClusterWorkload a;
  ClusterWorkload b;  // same grid shape as a (attributes/bins are shared)
};

ClusterWorkload GenClusterWorkload(Rng& rng);
ClusterPair GenClusterPair(Rng& rng);

data::Schema ClusterSchema(const ClusterWorkload& workload);
data::Dataset MaterializeBlobs(const ClusterWorkload& workload);
cluster::Grid MakeGrid(const ClusterWorkload& workload);
cluster::ClusterModel MineCluster(const ClusterWorkload& workload,
                                  const data::Dataset& dataset);

std::string Describe(const ClusterWorkload& workload);
std::string Describe(const ClusterPair& pair);
std::vector<ClusterWorkload> Shrink(const ClusterWorkload& workload);
std::vector<ClusterPair> Shrink(const ClusterPair& pair);

// ---------------------------------------------------------------- domains

// Ready-made Domain bundles (generate + describe + shrink) for Check().
Domain<LitsWorkload> LitsWorkloadDomain();
Domain<LitsPair> LitsPairDomain();
Domain<LitsTriple> LitsTripleDomain();
Domain<DtWorkload> DtWorkloadDomain();
Domain<DtPair> DtPairDomain();
Domain<ClusterWorkload> ClusterWorkloadDomain();
Domain<ClusterPair> ClusterPairDomain();

}  // namespace focus::proptest

#endif  // FOCUS_PROPTEST_GENERATORS_H_

#ifndef FOCUS_CLUSTER_BIRCH_H_
#define FOCUS_CLUSTER_BIRCH_H_

#include <span>
#include <vector>

#include "cluster/cluster_model.h"
#include "data/dataset.h"

namespace focus::cluster {

// BIRCH-style clustering-feature (CF) clustering (Zhang, Ramakrishnan &
// Livny [38], the clustering substrate the paper cites for
// cluster-models), reduced to its core: a single sequential scan absorbs
// each point into the nearest CF entry if that keeps the entry's radius
// under `threshold`, otherwise opens a new entry; a final agglomerative
// pass merges entries whose centroids are within `merge_factor *
// threshold`.
//
// The resulting centroids are converted into the library's cluster-model
// shape: every dense grid cell is assigned to the nearest centroid, so
// regions stay unions of grid cells (exact refinement, see
// cluster/cluster_model.h) and all FOCUS machinery applies unchanged —
// including GCRs against grid-density models over the same grid.
struct BirchOptions {
  // Max radius (RMS distance to centroid) a CF entry may reach when
  // absorbing a point.
  double threshold = 1.0;
  // Entries with centroid distance below merge_factor * threshold merge.
  double merge_factor = 2.0;
  // Cells holding less than this fraction of the dataset are noise.
  double density_threshold = 0.001;
  // Safety valve on the number of CF entries.
  int max_entries = 4096;
};

// A clustering feature: sufficient statistics of one sub-cluster.
struct ClusteringFeature {
  int64_t n = 0;
  std::vector<double> linear_sum;   // per grid attribute
  std::vector<double> square_sum;   // per grid attribute

  std::vector<double> Centroid() const;
  // RMS distance of the members to the centroid.
  double Radius() const;
  // The radius this entry would have after absorbing `point`.
  double RadiusWith(std::span<const double> point) const;
  void Absorb(std::span<const double> point);
  void Merge(const ClusteringFeature& other);
};

ClusterModel BirchClustering(const data::Dataset& dataset, const Grid& grid,
                             const BirchOptions& options);

}  // namespace focus::cluster

#endif  // FOCUS_CLUSTER_BIRCH_H_

#ifndef FOCUS_CLUSTER_GRID_CLUSTERING_H_
#define FOCUS_CLUSTER_GRID_CLUSTERING_H_

#include "cluster/cluster_model.h"
#include "data/dataset.h"

namespace focus::cluster {

// Grid-density clustering: cells whose tuple fraction is at least
// `density_threshold` are dense; maximal axis-connected components of
// dense cells are the clusters. Produces exactly the paper's
// cluster-model shape (§2.4): a set of non-overlapping regions that need
// not cover the whole attribute space.
struct GridClusteringOptions {
  // Minimum fraction of |D| a cell must hold to be dense.
  double density_threshold = 0.001;
};

ClusterModel GridClustering(const data::Dataset& dataset, const Grid& grid,
                            const GridClusteringOptions& options);

}  // namespace focus::cluster

#endif  // FOCUS_CLUSTER_GRID_CLUSTERING_H_

#include "cluster/cluster_model.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace focus::cluster {

Grid::Grid(data::Schema schema, std::vector<int> attributes, int bins)
    : schema_(std::move(schema)),
      attributes_(std::move(attributes)),
      bins_(bins) {
  FOCUS_CHECK_GT(bins_, 0);
  FOCUS_CHECK(!attributes_.empty());
  num_cells_ = 1;
  for (int attr : attributes_) {
    FOCUS_CHECK_GE(attr, 0);
    FOCUS_CHECK_LT(attr, schema_.num_attributes());
    const data::Attribute& a = schema_.attribute(attr);
    FOCUS_CHECK(a.type == data::AttributeType::kNumeric)
        << "grid attribute must be numeric: " << a.name;
    FOCUS_CHECK_LT(a.min_value, a.max_value);
    lo_.push_back(a.min_value);
    width_.push_back((a.max_value - a.min_value) / static_cast<double>(bins_));
    num_cells_ *= bins_;
    FOCUS_CHECK_LT(num_cells_, int64_t{1} << 40) << "grid too fine";
  }
}

int64_t Grid::CellOf(std::span<const double> row) const {
  int64_t cell = 0;
  for (size_t axis = 0; axis < attributes_.size(); ++axis) {
    const double v = row[attributes_[axis]];
    int64_t bin = static_cast<int64_t>(std::floor((v - lo_[axis]) / width_[axis]));
    bin = std::clamp<int64_t>(bin, 0, bins_ - 1);
    cell = cell * bins_ + bin;
  }
  return cell;
}

data::Box Grid::CellBox(int64_t cell) const {
  data::Box box = data::Box::Full(schema_);
  for (size_t axis = attributes_.size(); axis-- > 0;) {
    const int64_t bin = cell % bins_;
    cell /= bins_;
    const double lo = lo_[axis] + width_[axis] * static_cast<double>(bin);
    const double hi =
        bin == bins_ - 1
            ? std::numeric_limits<double>::infinity()  // top bin is clamped
            : lo + width_[axis];
    box.ClampNumeric(attributes_[axis],
                     bin == 0 ? -std::numeric_limits<double>::infinity() : lo,
                     hi);
  }
  return box;
}

std::vector<int64_t> Grid::Neighbors(int64_t cell) const {
  // Decompose into per-axis coordinates.
  std::vector<int64_t> coords(attributes_.size());
  int64_t rest = cell;
  for (size_t axis = attributes_.size(); axis-- > 0;) {
    coords[axis] = rest % bins_;
    rest /= bins_;
  }
  std::vector<int64_t> neighbors;
  for (size_t axis = 0; axis < attributes_.size(); ++axis) {
    for (int delta : {-1, 1}) {
      const int64_t coord = coords[axis] + delta;
      if (coord < 0 || coord >= bins_) continue;
      int64_t neighbor = 0;
      for (size_t a = 0; a < attributes_.size(); ++a) {
        neighbor = neighbor * bins_ + (a == axis ? coord : coords[a]);
      }
      neighbors.push_back(neighbor);
    }
  }
  return neighbors;
}

bool Grid::SameShape(const Grid& other) const {
  return bins_ == other.bins_ && attributes_ == other.attributes_ &&
         schema_ == other.schema_;
}

ClusterModel::ClusterModel(Grid grid, std::vector<std::vector<int64_t>> regions,
                           std::vector<double> selectivities)
    : grid_(std::move(grid)),
      regions_(std::move(regions)),
      selectivities_(std::move(selectivities)) {
  FOCUS_CHECK_EQ(regions_.size(), selectivities_.size());
  // Regions must be sorted cell lists, pairwise disjoint.
  std::vector<int64_t> all_cells;
  for (auto& region : regions_) {
    FOCUS_CHECK(std::is_sorted(region.begin(), region.end()));
    all_cells.insert(all_cells.end(), region.begin(), region.end());
  }
  std::sort(all_cells.begin(), all_cells.end());
  FOCUS_CHECK(std::adjacent_find(all_cells.begin(), all_cells.end()) ==
              all_cells.end())
      << "cluster regions overlap";
}

double ClusterModel::CoveredSelectivity() const {
  double total = 0.0;
  for (double s : selectivities_) total += s;
  return total;
}

std::vector<int64_t> CountCells(const data::Dataset& dataset, const Grid& grid) {
  std::vector<int64_t> counts(grid.num_cells(), 0);
  for (int64_t row = 0; row < dataset.num_rows(); ++row) {
    ++counts[grid.CellOf(dataset.Row(row))];
  }
  return counts;
}

}  // namespace focus::cluster

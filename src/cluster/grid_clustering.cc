#include "cluster/grid_clustering.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace focus::cluster {

ClusterModel GridClustering(const data::Dataset& dataset, const Grid& grid,
                            const GridClusteringOptions& options) {
  FOCUS_CHECK_GT(dataset.num_rows(), 0);
  FOCUS_CHECK_GT(options.density_threshold, 0.0);

  const std::vector<int64_t> counts = CountCells(dataset, grid);
  const double n = static_cast<double>(dataset.num_rows());
  const int64_t min_count = std::max<int64_t>(
      1, static_cast<int64_t>(options.density_threshold * n));

  std::vector<int64_t> dense_cells;
  for (int64_t cell = 0; cell < grid.num_cells(); ++cell) {
    if (counts[cell] >= min_count) dense_cells.push_back(cell);
  }

  // Connected components over dense cells (axis adjacency), iterative DFS.
  std::unordered_map<int64_t, int> component_of;
  component_of.reserve(dense_cells.size() * 2);
  for (int64_t cell : dense_cells) component_of[cell] = -1;

  std::vector<std::vector<int64_t>> regions;
  std::vector<int64_t> stack;
  for (int64_t seed : dense_cells) {
    if (component_of[seed] != -1) continue;
    const int component = static_cast<int>(regions.size());
    regions.emplace_back();
    stack.push_back(seed);
    component_of[seed] = component;
    while (!stack.empty()) {
      const int64_t cell = stack.back();
      stack.pop_back();
      regions[component].push_back(cell);
      for (int64_t neighbor : grid.Neighbors(cell)) {
        const auto it = component_of.find(neighbor);
        if (it != component_of.end() && it->second == -1) {
          it->second = component;
          stack.push_back(neighbor);
        }
      }
    }
  }

  std::vector<double> selectivities;
  selectivities.reserve(regions.size());
  for (auto& region : regions) {
    std::sort(region.begin(), region.end());
    int64_t total = 0;
    for (int64_t cell : region) total += counts[cell];
    selectivities.push_back(static_cast<double>(total) / n);
  }
  return ClusterModel(grid, std::move(regions), std::move(selectivities));
}

}  // namespace focus::cluster

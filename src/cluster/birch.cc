#include "cluster/birch.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"

namespace focus::cluster {
namespace {

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    total += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return total;
}

}  // namespace

std::vector<double> ClusteringFeature::Centroid() const {
  FOCUS_CHECK_GT(n, 0);
  std::vector<double> centroid(linear_sum.size());
  for (size_t i = 0; i < linear_sum.size(); ++i) {
    centroid[i] = linear_sum[i] / static_cast<double>(n);
  }
  return centroid;
}

double ClusteringFeature::Radius() const {
  if (n == 0) return 0.0;
  // radius^2 = SS/n - ||LS/n||^2, per dimension summed.
  double radius_sq = 0.0;
  const double dn = static_cast<double>(n);
  for (size_t i = 0; i < linear_sum.size(); ++i) {
    radius_sq += square_sum[i] / dn - (linear_sum[i] / dn) * (linear_sum[i] / dn);
  }
  return std::sqrt(std::max(0.0, radius_sq));
}

double ClusteringFeature::RadiusWith(std::span<const double> point) const {
  ClusteringFeature trial = *this;
  trial.Absorb(point);
  return trial.Radius();
}

void ClusteringFeature::Absorb(std::span<const double> point) {
  if (linear_sum.empty()) {
    linear_sum.assign(point.size(), 0.0);
    square_sum.assign(point.size(), 0.0);
  }
  FOCUS_CHECK_EQ(linear_sum.size(), point.size());
  ++n;
  for (size_t i = 0; i < point.size(); ++i) {
    linear_sum[i] += point[i];
    square_sum[i] += point[i] * point[i];
  }
}

void ClusteringFeature::Merge(const ClusteringFeature& other) {
  FOCUS_CHECK_EQ(linear_sum.size(), other.linear_sum.size());
  n += other.n;
  for (size_t i = 0; i < linear_sum.size(); ++i) {
    linear_sum[i] += other.linear_sum[i];
    square_sum[i] += other.square_sum[i];
  }
}

ClusterModel BirchClustering(const data::Dataset& dataset, const Grid& grid,
                             const BirchOptions& options) {
  FOCUS_CHECK_GT(dataset.num_rows(), 0);
  FOCUS_CHECK_GT(options.threshold, 0.0);
  const std::vector<int>& attrs = grid.attributes();

  // Phase 1: sequential CF absorption.
  std::vector<ClusteringFeature> entries;
  std::vector<double> point(attrs.size());
  for (int64_t row = 0; row < dataset.num_rows(); ++row) {
    const auto values = dataset.Row(row);
    for (size_t i = 0; i < attrs.size(); ++i) point[i] = values[attrs[i]];

    int best = -1;
    double best_distance = std::numeric_limits<double>::infinity();
    for (size_t e = 0; e < entries.size(); ++e) {
      const double d = SquaredDistance(entries[e].Centroid(), point);
      if (d < best_distance) {
        best_distance = d;
        best = static_cast<int>(e);
      }
    }
    if (best >= 0 && entries[best].RadiusWith(point) <= options.threshold) {
      entries[best].Absorb(point);
    } else if (static_cast<int>(entries.size()) < options.max_entries) {
      ClusteringFeature fresh;
      fresh.Absorb(point);
      entries.push_back(std::move(fresh));
    } else {
      entries[best].Absorb(point);  // valve: absorb anyway
    }
  }

  // Phase 2: agglomerative merge of close entries.
  const double merge_distance_sq =
      (options.merge_factor * options.threshold) *
      (options.merge_factor * options.threshold);
  bool merged = true;
  while (merged) {
    merged = false;
    for (size_t a = 0; a < entries.size() && !merged; ++a) {
      for (size_t b = a + 1; b < entries.size(); ++b) {
        if (SquaredDistance(entries[a].Centroid(), entries[b].Centroid()) <=
            merge_distance_sq) {
          entries[a].Merge(entries[b]);
          entries.erase(entries.begin() + static_cast<ptrdiff_t>(b));
          merged = true;
          break;
        }
      }
    }
  }

  // Phase 3: project onto the grid — dense cells are assigned to the
  // nearest centroid, keeping regions as disjoint cell unions.
  const std::vector<int64_t> cell_counts = CountCells(dataset, grid);
  const int64_t min_count = std::max<int64_t>(
      1, static_cast<int64_t>(options.density_threshold *
                              static_cast<double>(dataset.num_rows())));
  std::vector<std::vector<double>> centroids;
  centroids.reserve(entries.size());
  for (const ClusteringFeature& entry : entries) {
    centroids.push_back(entry.Centroid());
  }

  std::vector<std::vector<int64_t>> regions(entries.size());
  std::vector<double> cell_center(attrs.size());
  for (int64_t cell = 0; cell < grid.num_cells(); ++cell) {
    if (cell_counts[cell] < min_count) continue;
    // Cell center from its box (clip infinities to the attribute domain).
    const data::Box box = grid.CellBox(cell);
    for (size_t i = 0; i < attrs.size(); ++i) {
      const data::Attribute& attr = grid.schema().attribute(attrs[i]);
      const double lo = std::max(box.bound(attrs[i]).lo, attr.min_value);
      const double hi = std::min(box.bound(attrs[i]).hi, attr.max_value);
      cell_center[i] = (lo + hi) / 2.0;
    }
    int best = -1;
    double best_distance = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < centroids.size(); ++c) {
      const double d = SquaredDistance(centroids[c], cell_center);
      if (d < best_distance) {
        best_distance = d;
        best = static_cast<int>(c);
      }
    }
    if (best >= 0) regions[best].push_back(cell);
  }

  // Drop empty regions, compute selectivities.
  std::vector<std::vector<int64_t>> kept;
  std::vector<double> selectivities;
  const double n = static_cast<double>(dataset.num_rows());
  for (auto& region : regions) {
    if (region.empty()) continue;
    std::sort(region.begin(), region.end());
    int64_t total = 0;
    for (int64_t cell : region) total += cell_counts[cell];
    kept.push_back(std::move(region));
    selectivities.push_back(static_cast<double>(total) / n);
  }
  return ClusterModel(grid, std::move(kept), std::move(selectivities));
}

}  // namespace focus::cluster

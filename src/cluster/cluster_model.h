#ifndef FOCUS_CLUSTER_CLUSTER_MODEL_H_
#define FOCUS_CLUSTER_CLUSTER_MODEL_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/box.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace focus::cluster {

// A regular grid over a subset of the numeric attributes. Cluster-model
// regions are unions of grid cells, so two models over the same grid have
// an exact greatest common refinement at cell granularity (the cluster-
// model discussion of §2.4 — "a special case of dt-models" with possibly
// non-exhaustive regions).
class Grid {
 public:
  // `attributes` are indices of numeric attributes in `schema`; each is
  // divided into `bins` equal-width bins spanning its declared domain.
  Grid(data::Schema schema, std::vector<int> attributes, int bins);

  const data::Schema& schema() const { return schema_; }
  const std::vector<int>& attributes() const { return attributes_; }
  int bins() const { return bins_; }
  int64_t num_cells() const { return num_cells_; }

  // Flattened cell index of a tuple (values outside the declared domain
  // clamp into the boundary bins).
  int64_t CellOf(std::span<const double> row) const;

  // The axis-aligned Box covered by a cell (unconstrained on attributes
  // not in the grid).
  data::Box CellBox(int64_t cell) const;

  // Neighboring cells (±1 along each grid axis); used by the clustering
  // connected-components pass.
  std::vector<int64_t> Neighbors(int64_t cell) const;

  bool SameShape(const Grid& other) const;

 private:
  data::Schema schema_;
  std::vector<int> attributes_;
  int bins_;
  int64_t num_cells_;
  std::vector<double> lo_;     // per grid axis
  std::vector<double> width_;  // per grid axis (bin width)
};

// A cluster-model: a set of disjoint regions, each a sorted list of grid
// cells, with the selectivity of each region w.r.t. the inducing dataset.
// Cells not covered by any region are "noise" (the structural component
// need not be exhaustive).
class ClusterModel {
 public:
  ClusterModel(Grid grid, std::vector<std::vector<int64_t>> regions,
               std::vector<double> selectivities);

  const Grid& grid() const { return grid_; }
  int num_regions() const { return static_cast<int>(regions_.size()); }
  const std::vector<int64_t>& region(int i) const { return regions_[i]; }
  double selectivity(int i) const { return selectivities_[i]; }

  // Total selectivity over all regions (≤ 1; < 1 when noise exists).
  double CoveredSelectivity() const;

 private:
  Grid grid_;
  std::vector<std::vector<int64_t>> regions_;  // each sorted, all disjoint
  std::vector<double> selectivities_;
};

// Per-cell tuple counts of a dataset under a grid — the one-scan primitive
// for computing measure components of cluster regions.
std::vector<int64_t> CountCells(const data::Dataset& dataset, const Grid& grid);

}  // namespace focus::cluster

#endif  // FOCUS_CLUSTER_CLUSTER_MODEL_H_

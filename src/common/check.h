#ifndef FOCUS_COMMON_CHECK_H_
#define FOCUS_COMMON_CHECK_H_

#include <sstream>
#include <string>

namespace focus::common {

// Aborts the process with a diagnostic. Used by the FOCUS_CHECK macros;
// call directly only for unconditional failures.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

namespace internal {

// Collects an optional streamed message for a failed check and fires
// CheckFailed when destroyed. The lifetime of one temporary spans exactly
// one FOCUS_CHECK expansion.
class CheckMessageSink {
 public:
  CheckMessageSink(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}
  [[noreturn]] ~CheckMessageSink() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessageSink& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace focus::common

// Always-on invariant check (library correctness conditions, not user
// input validation). Supports streaming extra context:
//   FOCUS_CHECK(n > 0) << "empty dataset " << name;
#define FOCUS_CHECK(condition)                                              \
  if (condition) {                                                         \
  } else /* NOLINT */                                                       \
    ::focus::common::internal::CheckMessageSink(__FILE__, __LINE__, #condition)

#define FOCUS_CHECK_EQ(a, b) FOCUS_CHECK((a) == (b))
#define FOCUS_CHECK_NE(a, b) FOCUS_CHECK((a) != (b))
#define FOCUS_CHECK_LT(a, b) FOCUS_CHECK((a) < (b))
#define FOCUS_CHECK_LE(a, b) FOCUS_CHECK((a) <= (b))
#define FOCUS_CHECK_GT(a, b) FOCUS_CHECK((a) > (b))
#define FOCUS_CHECK_GE(a, b) FOCUS_CHECK((a) >= (b))

#endif  // FOCUS_COMMON_CHECK_H_

#ifndef FOCUS_COMMON_ENV_H_
#define FOCUS_COMMON_ENV_H_

#include <cstdint>
#include <string>

namespace focus::common {

// Reads configuration from the process environment, with defaults. Used by
// the benchmark harness so reproduction scale can be adjusted without
// recompiling:
//   FOCUS_SCALE  — multiplier on default workload sizes (default 1.0).
//   FOCUS_FULL   — if set to 1, approximate the paper's original sizes.
double GetEnvDouble(const std::string& name, double default_value);
int64_t GetEnvInt(const std::string& name, int64_t default_value);
bool GetEnvBool(const std::string& name, bool default_value);
std::string GetEnvString(const std::string& name,
                         const std::string& default_value);

// Workload scale for benches: FOCUS_FULL=1 returns `full_scale`,
// otherwise FOCUS_SCALE (default 1.0).
double BenchScale(double full_scale);

}  // namespace focus::common

#endif  // FOCUS_COMMON_ENV_H_

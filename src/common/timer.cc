#include "common/timer.h"

// Timer is header-only; this translation unit exists so the build graph has
// a stable home for future non-inline timing helpers.

#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "common/check.h"
#include "common/mutex.h"

namespace focus::common {

ThreadPool::ThreadPool(int num_threads) {
  FOCUS_CHECK_GE(num_threads, 1);
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this]() { Worker(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& thread : threads_) thread.join();
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    MutexLock lock(&mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::Worker() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      cv_.Wait(mutex_,
               [this]() REQUIRES(mutex_) { return stop_ || !queue_.empty(); });
      // Drain the queue even when stopping: queued work finishes before
      // the destructor returns.
      if (queue_.empty()) return;  // only reachable when stop_ is set
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int num_shards,
                             const ShardBody& body) {
  if (end <= begin) return;
  const int64_t total = end - begin;
  num_shards = std::max(1, std::min<int>(num_shards, total));

  struct State {
    std::atomic<int> next_shard{0};
    std::atomic<int> shards_done{0};
    Mutex mutex;
    CondVar done_cv;
    std::exception_ptr error GUARDED_BY(mutex);  // first failure
  };
  auto state = std::make_shared<State>();

  // Claims shards off the shared counter until none remain. Run by the
  // caller AND by up to num_shards-1 helper jobs; a helper that starts
  // after all shards are claimed returns immediately.
  auto run_shards = [state, body, begin, total, num_shards]() {
    for (int shard = state->next_shard.fetch_add(1); shard < num_shards;
         shard = state->next_shard.fetch_add(1)) {
      const int64_t lo = begin + total * shard / num_shards;
      const int64_t hi = begin + total * (shard + 1) / num_shards;
      try {
        body(shard, lo, hi);
      } catch (...) {
        MutexLock lock(&state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
      if (state->shards_done.fetch_add(1) + 1 == num_shards) {
        MutexLock lock(&state->mutex);
        state->done_cv.NotifyAll();
      }
    }
  };

  const int helpers =
      std::min(num_threads(), num_shards - 1);  // the caller takes one share
  for (int i = 0; i < helpers; ++i) Enqueue(run_shards);
  run_shards();

  MutexLock lock(&state->mutex);
  state->done_cv.Wait(state->mutex, [&]() {
    return state->shards_done.load() >= num_shards;
  });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace focus::common

#ifndef FOCUS_COMMON_FLAGS_H_
#define FOCUS_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace focus::common {

// Hardened `--flag value` parser shared by the CLI tools (focus_cli,
// focus_monitord). Every flag takes exactly one value. Malformed command
// lines are rejected with a diagnostic on stderr rather than silently
// ignored:
//   * a token that is not a --flag where one is expected,
//   * a trailing flag with no value,
//   * a flag not in the command's allowed list,
//   * the same flag given twice.
class Flags {
 public:
  // Parses argv[first..argc). `allowed` lists the flag names the command
  // accepts (without the leading "--"). Returns nullopt after printing a
  // diagnostic if the command line is malformed; callers should exit with
  // status 1.
  static std::optional<Flags> Parse(int argc, char* const* argv, int first,
                                    const std::vector<std::string>& allowed);

  std::string Get(const std::string& key, const std::string& fallback) const;
  double GetDouble(const std::string& key, double fallback) const;
  int64_t GetInt(const std::string& key, int64_t fallback) const;
  bool Has(const std::string& key) const { return values_.count(key) > 0; }

 private:
  Flags() = default;

  std::map<std::string, std::string> values_;
};

}  // namespace focus::common

#endif  // FOCUS_COMMON_FLAGS_H_

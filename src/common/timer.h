#ifndef FOCUS_COMMON_TIMER_H_
#define FOCUS_COMMON_TIMER_H_

#include <chrono>

namespace focus::common {

// Wall-clock stopwatch. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  // Elapsed time since construction or the last Restart, in seconds.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace focus::common

#endif  // FOCUS_COMMON_TIMER_H_

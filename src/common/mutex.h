#ifndef FOCUS_COMMON_MUTEX_H_
#define FOCUS_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace focus::common {

// Thin annotated wrappers over the std synchronization primitives. They
// add zero behavior — Lock/Unlock forward straight to std::mutex — but
// carry the CAPABILITY annotations that let clang prove, at compile time,
// which mutex guards which field (common/thread_annotations.h). All
// locking in this repo goes through these types; focus_lint rule
// `raw-mutex` rejects the raw std primitives outside src/common/.

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mutex_.lock(); }
  void Unlock() RELEASE() { mutex_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mutex_.try_lock(); }

  // Documents (to the analysis) that the calling context holds the lock
  // when that fact cannot be proven structurally. No runtime effect.
  void AssertHeld() ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mutex_;
};

// RAII holder: acquires in the constructor, releases in the destructor.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mutex) ACQUIRE(mutex) : mutex_(mutex) {
    mutex_->Lock();
  }
  ~MutexLock() RELEASE() { mutex_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mutex_;
};

// Condition variable bound to common::Mutex. Wait temporarily releases
// the caller's mutex exactly like std::condition_variable::wait; the
// REQUIRES annotations record that the mutex is held on entry and again
// on return, which is all the (lexically scoped) analysis can model.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

  // Blocks until notified; spurious wakeups possible, as with std.
  void Wait(Mutex& mutex) REQUIRES(mutex) {
    // Adopt the already-held std::mutex for the duration of the wait and
    // release ownership back before returning: the capability state seen
    // by the analysis (held on entry, held on exit) matches reality.
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();
  }

  // Predicate loop, equivalent to std::condition_variable::wait(lock,
  // pred). `pred` runs with the mutex held.
  template <typename Pred>
  void Wait(Mutex& mutex, Pred pred) REQUIRES(mutex) {
    while (!pred()) Wait(mutex);
  }

  // Blocks until notified or `deadline`; reports which happened.
  template <typename Clock, typename Duration>
  std::cv_status WaitUntil(
      Mutex& mutex, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mutex) {
    std::unique_lock<std::mutex> lock(mutex.mutex_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(lock, deadline);
    lock.release();
    return status;
  }

  // Equivalent to std::condition_variable::wait_for(lock, timeout, pred):
  // true when `pred` held before the timeout elapsed, otherwise one final
  // evaluation of `pred` after it.
  template <typename Rep, typename Period, typename Pred>
  bool WaitFor(Mutex& mutex,
               const std::chrono::duration<Rep, Period>& timeout, Pred pred)
      REQUIRES(mutex) {
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (!pred()) {
      if (WaitUntil(mutex, deadline) == std::cv_status::timeout) {
        return pred();
      }
    }
    return true;
  }

 private:
  std::condition_variable cv_;
};

}  // namespace focus::common

#endif  // FOCUS_COMMON_MUTEX_H_

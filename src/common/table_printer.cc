#include "common/table_printer.h"

#include <cstdio>

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace focus::common {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  FOCUS_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  FOCUS_CHECK_LE(row.size(), header_.size());
  row.resize(header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : " | ") << row[c]
          << std::string(widths[c] - row[c].size(), ' ');
    }
    out << '\n';
  };
  emit_row(header_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c == 0 ? 0 : 3);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void TablePrinter::Print() const {
  const std::string rendered = ToString();
  std::fwrite(rendered.data(), 1, rendered.size(), stdout);
}

std::string FormatDouble(double value, int digits) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string FormatInt(int64_t value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%lld", static_cast<long long>(value));
  return buffer;
}

}  // namespace focus::common

#ifndef FOCUS_COMMON_THREAD_ANNOTATIONS_H_
#define FOCUS_COMMON_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis annotations (Hutchins et al., "C/C++
// Thread Safety Analysis"). Under clang the whole tree compiles with
// -Werror=thread-safety -Werror=thread-safety-beta, so a field declared
// GUARDED_BY(mu) that is touched without mu held is a BUILD ERROR, not a
// TSan finding that depends on test scheduling. Under gcc (and any other
// compiler without the attributes) every macro expands to nothing.
//
// Conventions (see docs/STATIC_ANALYSIS.md):
//   * lock-protected fields:          T field_ GUARDED_BY(mutex_);
//   * functions expecting the lock:   void FooLocked() REQUIRES(mutex_);
//     (suffix such helpers with "Locked")
//   * functions that take the lock:   void Foo() EXCLUDES(mutex_);
//   * lock wrapper types:             class CAPABILITY("mutex") Mutex;
//   * RAII holders:                   class SCOPED_CAPABILITY MutexLock;
//
// The only lock types in this repo are common::Mutex / common::MutexLock
// / common::CondVar (common/mutex.h); focus_lint rule `raw-mutex` keeps
// unannotated std primitives from reappearing outside src/common/.

#if defined(__clang__) && !defined(SWIG)
#define FOCUS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define FOCUS_THREAD_ANNOTATION_(x)  // no-op off clang
#endif

// A type that models a capability (a mutex). `x` names the capability
// kind in diagnostics, e.g. CAPABILITY("mutex").
#define CAPABILITY(x) FOCUS_THREAD_ANNOTATION_(capability(x))

// An RAII type that acquires a capability in its constructor and
// releases it in its destructor.
#define SCOPED_CAPABILITY FOCUS_THREAD_ANNOTATION_(scoped_lockable)

// Data members: readable/writable only while `x` is held.
#define GUARDED_BY(x) FOCUS_THREAD_ANNOTATION_(guarded_by(x))

// Pointer members: the pointed-to data is protected by `x` (the pointer
// itself may be read freely).
#define PT_GUARDED_BY(x) FOCUS_THREAD_ANNOTATION_(pt_guarded_by(x))

// The caller must hold the listed capabilities (exclusively) before
// calling, and they remain held after the call.
#define REQUIRES(...) \
  FOCUS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

// The caller must hold the listed capabilities in shared mode.
#define REQUIRES_SHARED(...) \
  FOCUS_THREAD_ANNOTATION_(requires_shared_capability(__VA_ARGS__))

// The caller must NOT hold the listed capabilities (the function acquires
// them itself; calling with them held would self-deadlock).
#define EXCLUDES(...) FOCUS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

// The function acquires / releases the capability.
#define ACQUIRE(...) \
  FOCUS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  FOCUS_THREAD_ANNOTATION_(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  FOCUS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  FOCUS_THREAD_ANNOTATION_(release_shared_capability(__VA_ARGS__))

// The function tries to acquire the capability and reports success via
// its return value: TRY_ACQUIRE(true) means "returns true when locked".
#define TRY_ACQUIRE(...) \
  FOCUS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

// Runtime assertion that the capability is held (no-op wrapper bodies).
#define ASSERT_CAPABILITY(x) \
  FOCUS_THREAD_ANNOTATION_(assert_capability(x))

// Returns a reference to the capability guarding this object.
#define RETURN_CAPABILITY(x) FOCUS_THREAD_ANNOTATION_(lock_returned(x))

// Escape hatch for code the analysis cannot model (e.g. adopting a lock
// into std::unique_lock inside CondVar::Wait). Use sparingly; every use
// needs a comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  FOCUS_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // FOCUS_COMMON_THREAD_ANNOTATIONS_H_

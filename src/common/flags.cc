#include "common/flags.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace focus::common {

std::optional<Flags> Flags::Parse(int argc, char* const* argv, int first,
                                  const std::vector<std::string>& allowed) {
  Flags flags;
  for (int i = first; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() == 2) {
      std::fprintf(stderr, "expected a --flag, got '%s'\n", token.c_str());
      return std::nullopt;
    }
    const std::string key = token.substr(2);
    if (std::find(allowed.begin(), allowed.end(), key) == allowed.end()) {
      std::fprintf(stderr, "unknown flag '--%s'\n", key.c_str());
      return std::nullopt;
    }
    if (i + 1 >= argc) {
      std::fprintf(stderr, "flag '--%s' is missing its value\n", key.c_str());
      return std::nullopt;
    }
    if (!flags.values_.emplace(key, argv[i + 1]).second) {
      std::fprintf(stderr, "flag '--%s' given twice\n", key.c_str());
      return std::nullopt;
    }
    ++i;  // consume the value
  }
  return flags;
}

std::string Flags::Get(const std::string& key,
                       const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

double Flags::GetDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atof(it->second.c_str());
}

int64_t Flags::GetInt(const std::string& key, int64_t fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : std::atoll(it->second.c_str());
}

}  // namespace focus::common

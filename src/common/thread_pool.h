#ifndef FOCUS_COMMON_THREAD_POOL_H_
#define FOCUS_COMMON_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace focus::common {

// Fixed-size worker pool used by the parallel scan kernels and the serving
// layer. Two APIs:
//
//   * Submit(task)       — schedule a callable; the returned future carries
//                          its result or exception.
//   * ParallelFor(...)   — run a body over contiguous shards of an index
//                          range. The CALLING thread claims shards too, so
//                          the call always makes progress even when every
//                          worker is busy — it is safe to invoke from
//                          inside a pool task (no nested-wait deadlock).
//
// Shard boundaries depend only on (begin, end, num_shards), never on
// scheduling, so kernels that accumulate into per-shard buffers and merge
// them in shard order are deterministic run-to-run.
class ThreadPool {
 public:
  // Starts `num_threads` workers (at least 1).
  explicit ThreadPool(int num_threads);

  // Finishes every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  // Schedules `task` on the pool. The future rethrows any exception the
  // task raised.
  template <typename F>
  auto Submit(F&& task) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto packaged =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(task));
    std::future<R> future = packaged->get_future();
    Enqueue([packaged]() { (*packaged)(); });
    return future;
  }

  // body(shard, shard_begin, shard_end) over `num_shards` contiguous
  // shards of [begin, end). Blocks until every shard ran; rethrows the
  // first shard exception (remaining shards still run). Shards whose
  // range would be empty are skipped by clamping num_shards to the range
  // size.
  using ShardBody = std::function<void(int shard, int64_t begin, int64_t end)>;
  void ParallelFor(int64_t begin, int64_t end, int num_shards,
                   const ShardBody& body);

  // One shard per worker thread.
  void ParallelFor(int64_t begin, int64_t end, const ShardBody& body) {
    ParallelFor(begin, end, num_threads(), body);
  }

 private:
  void Enqueue(std::function<void()> task) EXCLUDES(mutex_);
  void Worker() EXCLUDES(mutex_);

  Mutex mutex_;
  CondVar cv_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool stop_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace focus::common

#endif  // FOCUS_COMMON_THREAD_POOL_H_

#include "common/env.h"

#include <cstdlib>

namespace focus::common {

double GetEnvDouble(const std::string& name, double default_value) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return default_value;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  return (end == value) ? default_value : parsed;
}

int64_t GetEnvInt(const std::string& name, int64_t default_value) {
  const char* value = std::getenv(name.c_str());
  if (value == nullptr || *value == '\0') return default_value;
  char* end = nullptr;
  const long long parsed = std::strtoll(value, &end, 10);
  return (end == value) ? default_value : static_cast<int64_t>(parsed);
}

bool GetEnvBool(const std::string& name, bool default_value) {
  return GetEnvInt(name, default_value ? 1 : 0) != 0;
}

std::string GetEnvString(const std::string& name,
                         const std::string& default_value) {
  const char* value = std::getenv(name.c_str());
  return (value == nullptr || *value == '\0') ? default_value : value;
}

double BenchScale(double full_scale) {
  if (GetEnvBool("FOCUS_FULL", false)) return full_scale;
  return GetEnvDouble("FOCUS_SCALE", 1.0);
}

}  // namespace focus::common

#ifndef FOCUS_COMMON_TABLE_PRINTER_H_
#define FOCUS_COMMON_TABLE_PRINTER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace focus::common {

// Renders aligned text tables for the benchmark harness, e.g.
//
//   Sample Fraction | 0.01  | 0.05  | ...
//   Significance    | 99.99 | 99.99 | ...
//
// Cells are strings; numeric helpers format with fixed precision.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  // Appends a row; the row is padded with empty cells if shorter than the
  // header and must not be longer.
  void AddRow(std::vector<std::string> row);

  // Renders the table (header, separator, rows) as a single string.
  std::string ToString() const;

  // Renders and writes to stdout.
  void Print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats `value` with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

// Formats an integer count with no decoration.
std::string FormatInt(int64_t value);

}  // namespace focus::common

#endif  // FOCUS_COMMON_TABLE_PRINTER_H_

#ifndef FOCUS_NET_HTTP_SERVER_H_
#define FOCUS_NET_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "net/http_parser.h"
#include "net/poller.h"
#include "net/router.h"
#include "net/socket_util.h"

namespace focus::net {

struct HttpServerOptions {
  std::string bind_address = "127.0.0.1";
  uint16_t port = 0;  // 0 = kernel-assigned ephemeral port
  int backlog = 128;
  // Beyond this many open connections, new ones are accepted only to send
  // an immediate 503 and close — the kernel backlog never silently grows.
  int max_connections = 256;
  // A connection that has been silent this long mid-request (or between
  // keep-alive requests) is closed.
  int read_deadline_ms = 10'000;
  HttpParserLimits limits;
  // Use the poll(2) engine even where epoll exists (tests).
  bool force_poll = false;
  // Bind with SO_REUSEPORT so multiple server instances can share one
  // port (the sharded front end runs one reactor per instance and lets
  // the kernel spread accepts across them).
  bool reuse_port = false;
};

// Point-in-time counters, safe to read from any thread.
struct HttpServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_refused = 0;   // over the connection cap
  int64_t requests_handled = 0;
  int64_t parse_errors = 0;          // malformed requests answered 4xx/5xx
  int64_t deadline_closes = 0;       // read-deadline expirations
  int64_t open_connections = 0;
};

// Single-threaded HTTP/1.1 server: one event-loop thread multiplexes the
// listener and every connection through a level-triggered Poller (epoll on
// Linux, poll elsewhere); handlers run inline on that thread, so they must
// either be fast or delegate to their own executor. Reads, writes, and
// accepts are all non-blocking; per-connection state lives in a small
// state machine (parse -> dispatch -> buffered write), keep-alive and
// pipelined requests included.
//
// Lifecycle: Start() binds and spawns the loop. BeginDrain() stops
// accepting, closes idle keep-alive connections, and lets in-flight
// requests finish writing. Stop() drains (bounded by the read deadline)
// and joins. Malformed input is answered with the parser's 4xx/5xx status
// and a closed connection — never a crash or a hang.
class HttpServer {
 public:
  HttpServer(HttpServerOptions options, Router router);
  ~HttpServer();  // Stop()

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens, and starts the loop thread. False + `error` on
  // failure.
  bool Start(std::string* error = nullptr);

  // The bound port (after Start); useful with port 0.
  uint16_t port() const { return port_; }

  // Stops accepting and closes connections that are idle between
  // requests. Safe from any thread; idempotent.
  void BeginDrain();

  // Blocks until every connection is gone or `timeout_ms` elapsed.
  // Returns true when fully drained. Call BeginDrain() first.
  bool WaitDrained(int timeout_ms) EXCLUDES(drained_mutex_);

  // BeginDrain + close everything + join the loop thread. Idempotent.
  void Stop();

  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  HttpServerStats stats() const;

 private:
  struct Connection {
    UniqueFd fd;
    HttpParser parser;
    // Serialized responses not yet written. Each queued response
    // contributes its header block and (unless empty) its body as
    // SEPARATE buffers; FlushWrites hands the queue front to sendmsg as
    // one iovec batch, so header + body — and a whole burst of pipelined
    // responses — go out in a single syscall without concatenation.
    // Invariant: buffers are non-empty and the front one is never fully
    // written (FlushWrites pops exhausted fronts), so a non-empty queue
    // means bytes are pending.
    std::deque<std::string> out;
    size_t out_offset = 0;    // bytes of out.front() already written
    bool close_after_write = false;
    bool want_write = false;  // write interest currently registered
    std::chrono::steady_clock::time_point last_activity;

    explicit Connection(UniqueFd fd_in, const HttpParserLimits& limits)
        : fd(std::move(fd_in)), parser(limits) {}
  };

  void Loop();
  void AcceptNew(std::chrono::steady_clock::time_point now);
  void HandleReadable(Connection* conn,
                      std::chrono::steady_clock::time_point now);
  void HandleWritable(Connection* conn);
  // Runs parser results to completion (possibly several pipelined
  // requests) and queues response bytes.
  void DispatchParsed(Connection* conn, HttpParser::Status status);
  // Takes the response by value so its body moves into the write queue
  // instead of being copied.
  void QueueResponse(Connection* conn, HttpResponse response,
                     bool keep_alive);
  // Flushes as much of conn->out as the socket accepts (iovec batches via
  // sendmsg); adjusts write interest; may close. Returns false when the
  // connection was closed.
  bool FlushWrites(Connection* conn);
  void CloseConnection(Connection* conn);
  void CloseExpired(std::chrono::steady_clock::time_point now);
  void Wake();

  const HttpServerOptions options_;
  const Router router_;

  UniqueFd listen_fd_;
  UniqueFd wake_read_, wake_write_;  // self-pipe: Stop/BeginDrain -> loop
  uint16_t port_ = 0;

  Poller poller_;
  std::unordered_map<int, std::unique_ptr<Connection>> connections_;

  std::thread loop_;
  std::atomic<bool> started_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> draining_{false};

  // drained_cv_ broadcasts under drained_mutex_ when open_ reaches zero;
  // the predicate itself reads the atomic open_ counter.
  mutable common::Mutex drained_mutex_;
  common::CondVar drained_cv_;

  // Stats counters (relaxed atomics; read via stats()).
  std::atomic<int64_t> accepted_{0}, refused_{0}, requests_{0},
      parse_errors_{0}, deadline_closes_{0};
  std::atomic<int64_t> open_{0};
};

}  // namespace focus::net

#endif  // FOCUS_NET_HTTP_SERVER_H_

#include "net/http_server.h"

#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"

namespace focus::net {
namespace {

// Poll granularity: the loop wakes at least this often to check read
// deadlines and drain progress.
constexpr int kTickMs = 50;

// Buffers gathered into one sendmsg call: 8 pipelined header+body pairs
// per syscall, far below any kernel IOV_MAX. Leftovers go next round.
constexpr int kMaxResponseIov = 16;

}  // namespace

HttpServer::HttpServer(HttpServerOptions options, Router router)
    : options_(std::move(options)),
      router_(std::move(router)),
      poller_(options_.force_poll) {}

HttpServer::~HttpServer() { Stop(); }

bool HttpServer::Start(std::string* error) {
  FOCUS_CHECK(!started_.load());
  listen_fd_ = ListenTcp(options_.bind_address, options_.port,
                         options_.backlog, &port_, error,
                         options_.reuse_port);
  if (!listen_fd_.valid()) return false;
  if (!SetNonBlocking(listen_fd_.get())) {
    if (error != nullptr) *error = "cannot set listener non-blocking";
    return false;
  }
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    if (error != nullptr) *error = "cannot create wake pipe";
    return false;
  }
  wake_read_.Reset(pipe_fds[0]);
  wake_write_.Reset(pipe_fds[1]);
  // A blocking wake pipe would hang the event loop when it drains the
  // self-pipe, so failing to configure it is a startup failure.
  if (!SetNonBlocking(wake_read_.get()) ||
      !SetNonBlocking(wake_write_.get())) {
    if (error != nullptr) *error = "cannot set wake pipe non-blocking";
    return false;
  }
  poller_.Add(listen_fd_.get(), /*want_read=*/true, /*want_write=*/false);
  poller_.Add(wake_read_.get(), /*want_read=*/true, /*want_write=*/false);
  started_.store(true);
  loop_ = std::thread([this]() { Loop(); });
  return true;
}

void HttpServer::Wake() {
  if (!wake_write_.valid()) return;
  const char byte = 'w';
  [[maybe_unused]] const ssize_t n = ::write(wake_write_.get(), &byte, 1);
}

void HttpServer::BeginDrain() {
  draining_.store(true, std::memory_order_relaxed);
  Wake();
}

bool HttpServer::WaitDrained(int timeout_ms) {
  common::MutexLock lock(&drained_mutex_);
  return drained_cv_.WaitFor(drained_mutex_,
                             std::chrono::milliseconds(timeout_ms),
                             [this]() { return open_.load() == 0; });
}

void HttpServer::Stop() {
  if (!started_.load()) return;
  stopping_.store(true);
  Wake();
  if (loop_.joinable()) loop_.join();
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats stats;
  stats.connections_accepted = accepted_.load(std::memory_order_relaxed);
  stats.connections_refused = refused_.load(std::memory_order_relaxed);
  stats.requests_handled = requests_.load(std::memory_order_relaxed);
  stats.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  stats.deadline_closes = deadline_closes_.load(std::memory_order_relaxed);
  stats.open_connections = open_.load(std::memory_order_relaxed);
  return stats;
}

void HttpServer::Loop() {
  std::vector<Poller::Event> events;
  bool drain_applied = false;
  while (!stopping_.load(std::memory_order_relaxed)) {
    poller_.Wait(kTickMs, &events);
    const auto now = std::chrono::steady_clock::now();
    for (const Poller::Event& event : events) {
      if (event.fd == wake_read_.get()) {
        char sink[64];
        while (::read(wake_read_.get(), sink, sizeof(sink)) > 0) {}
        continue;
      }
      if (event.fd == listen_fd_.get()) {
        if (event.readable) AcceptNew(now);
        continue;
      }
      // The connection may have been closed by an earlier event this
      // round; look it up fresh.
      auto it = connections_.find(event.fd);
      if (it == connections_.end()) continue;
      Connection* conn = it->second.get();
      if (event.error) {
        CloseConnection(conn);
        continue;
      }
      if (event.readable) HandleReadable(conn, now);
      it = connections_.find(event.fd);
      if (it != connections_.end() && event.writable) {
        HandleWritable(it->second.get());
      }
    }
    CloseExpired(now);
    if (draining_.load(std::memory_order_relaxed)) {
      if (!drain_applied) {
        // Stop accepting: deregister and close the listener so the port
        // is released and new connects are refused by the kernel.
        if (listen_fd_.valid()) {
          poller_.Remove(listen_fd_.get());
          listen_fd_.Reset();
        }
        drain_applied = true;
      }
      // Close connections sitting idle between requests; in-flight ones
      // finish their response first (QueueResponse forces close-after).
      std::vector<Connection*> idle;
      for (auto& [fd, conn] : connections_) {
        if (conn->parser.idle() && conn->out.empty()) {
          // focus-analyze: allow(nondet-iteration) — close order is irrelevant
          idle.push_back(conn.get());
        }
      }
      for (Connection* conn : idle) CloseConnection(conn);
      if (connections_.empty()) {
        common::MutexLock lock(&drained_mutex_);
        drained_cv_.NotifyAll();
      }
    }
  }
  // Shutdown: drop everything still open.
  std::vector<Connection*> remaining;
  remaining.reserve(connections_.size());
  // focus-analyze: allow(nondet-iteration) — close order is irrelevant
  for (auto& [fd, conn] : connections_) remaining.push_back(conn.get());
  for (Connection* conn : remaining) CloseConnection(conn);
  if (listen_fd_.valid()) {
    poller_.Remove(listen_fd_.get());
    listen_fd_.Reset();
  }
}

void HttpServer::AcceptNew(std::chrono::steady_clock::time_point now) {
  for (;;) {
    UniqueFd client(::accept(listen_fd_.get(), nullptr, nullptr));
    if (!client.valid()) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;  // transient accept failure; retry on next readiness
    }
    if (draining_.load(std::memory_order_relaxed)) continue;  // close
    if (open_.load(std::memory_order_relaxed) >= options_.max_connections) {
      // Over the cap: answer 503 then close. The response is tiny; a
      // fresh socket's send buffer always takes it without blocking.
      const std::string bytes = SerializeResponse(
          ErrorResponse(503, "connection limit reached"), /*keep_alive=*/false);
      [[maybe_unused]] const ssize_t n =
          ::send(client.get(), bytes.data(), bytes.size(), MSG_NOSIGNAL);
      refused_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!SetNonBlocking(client.get())) continue;
    const int fd = client.get();
    auto conn = std::make_unique<Connection>(std::move(client),
                                             options_.limits);
    conn->last_activity = now;
    if (!poller_.Add(fd, /*want_read=*/true, /*want_write=*/false)) continue;
    connections_[fd] = std::move(conn);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_.fetch_add(1, std::memory_order_relaxed);
  }
}

void HttpServer::HandleReadable(Connection* conn,
                                std::chrono::steady_clock::time_point now) {
  char buffer[16384];
  for (;;) {
    const ssize_t n = ::read(conn->fd.get(), buffer, sizeof(buffer));
    if (n > 0) {
      conn->last_activity = now;
      DispatchParsed(conn,
                     conn->parser.Consume(std::string_view(buffer, n)));
      if (!FlushWrites(conn)) return;  // closed
      if (conn->close_after_write) {
        // Error or Connection: close already queued; stop reading.
        poller_.Update(conn->fd.get(), /*want_read=*/false, conn->want_write);
        return;
      }
      continue;
    }
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      CloseConnection(conn);
      return;
    }
    // EOF. A response still being written survives the peer's half-close;
    // anything else (idle or mid-request) is done. A non-empty write
    // queue always has unwritten bytes (FlushWrites pops drained fronts).
    if (!conn->out.empty()) {
      conn->close_after_write = true;
      poller_.Update(conn->fd.get(), /*want_read=*/false, /*want_write=*/true);
      conn->want_write = true;
    } else {
      CloseConnection(conn);
    }
    return;
  }
}

void HttpServer::DispatchParsed(Connection* conn, HttpParser::Status status) {
  while (status == HttpParser::Status::kComplete) {
    requests_.fetch_add(1, std::memory_order_relaxed);
    const HttpRequest& request = conn->parser.request();
    // While draining, finish this request but refuse to keep the
    // connection: clients re-connect elsewhere.
    const bool keep_alive =
        request.keep_alive && !draining_.load(std::memory_order_relaxed);
    QueueResponse(conn, router_.Dispatch(request), keep_alive);
    if (!keep_alive) {
      conn->close_after_write = true;
      return;
    }
    status = conn->parser.Reset();
  }
  if (status == HttpParser::Status::kError) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    QueueResponse(conn,
                  ErrorResponse(conn->parser.error_status(),
                                conn->parser.error()),
                  /*keep_alive=*/false);
    conn->close_after_write = true;
  }
}

void HttpServer::QueueResponse(Connection* conn, HttpResponse response,
                               bool keep_alive) {
  conn->out.push_back(SerializeResponseHeader(response, keep_alive));
  if (!response.body.empty()) conn->out.push_back(std::move(response.body));
}

bool HttpServer::FlushWrites(Connection* conn) {
  while (!conn->out.empty()) {
    // Gather the queued buffers — header blocks and bodies interleaved —
    // into one iovec batch; sendmsg with MSG_NOSIGNAL is writev plus the
    // SIGPIPE suppression ::send gave the old single-buffer path.
    iovec iov[kMaxResponseIov];
    int iov_count = 0;
    size_t skip = conn->out_offset;
    for (const std::string& buffer : conn->out) {
      if (iov_count == kMaxResponseIov) break;
      iov[iov_count].iov_base = const_cast<char*>(buffer.data()) + skip;
      iov[iov_count].iov_len = buffer.size() - skip;
      ++iov_count;
      skip = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = iov_count;
    const ssize_t n = ::sendmsg(conn->fd.get(), &msg, MSG_NOSIGNAL);
    if (n > 0) {
      // A short write can end anywhere: pop fully-written fronts, advance
      // the offset into a partially-written one.
      size_t written = static_cast<size_t>(n);
      while (written > 0) {
        const size_t front_left = conn->out.front().size() - conn->out_offset;
        if (written < front_left) {
          conn->out_offset += written;
          break;
        }
        written -= front_left;
        conn->out.pop_front();
        conn->out_offset = 0;
      }
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      if (!conn->want_write) {
        conn->want_write = true;
        poller_.Update(conn->fd.get(), !conn->close_after_write, true);
      }
      return true;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseConnection(conn);  // peer reset mid-response
    return false;
  }
  conn->out_offset = 0;
  if (conn->close_after_write) {
    CloseConnection(conn);
    return false;
  }
  if (conn->want_write) {
    conn->want_write = false;
    poller_.Update(conn->fd.get(), /*want_read=*/true, /*want_write=*/false);
  }
  return true;
}

void HttpServer::HandleWritable(Connection* conn) { FlushWrites(conn); }

void HttpServer::CloseExpired(std::chrono::steady_clock::time_point now) {
  if (options_.read_deadline_ms <= 0) return;
  const auto deadline = std::chrono::milliseconds(options_.read_deadline_ms);
  std::vector<Connection*> expired;
  for (auto& [fd, conn] : connections_) {
    // focus-analyze: allow(nondet-iteration) — close order is irrelevant
    if (now - conn->last_activity > deadline) expired.push_back(conn.get());
  }
  for (Connection* conn : expired) {
    deadline_closes_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn);
  }
}

void HttpServer::CloseConnection(Connection* conn) {
  const int fd = conn->fd.get();
  poller_.Remove(fd);
  connections_.erase(fd);  // destroys conn; fd closed by UniqueFd
  open_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace focus::net

#include "net/poller.h"

#include <poll.h>

#include <cerrno>

#if defined(__linux__)
#include <sys/epoll.h>
#endif

namespace focus::net {

#if defined(__linux__)

namespace {

uint32_t EpollMask(bool want_read, bool want_write) {
  uint32_t mask = 0;
  if (want_read) mask |= EPOLLIN;
  if (want_write) mask |= EPOLLOUT;
  return mask;
}

}  // namespace

Poller::Poller(bool force_poll) {
  if (!force_poll) epoll_fd_.Reset(::epoll_create1(0));
}

#else

Poller::Poller(bool force_poll) { (void)force_poll; }

#endif

Poller::~Poller() = default;

bool Poller::Add(int fd, bool want_read, bool want_write) {
  if (fd < 0 || interest_.count(fd) > 0) return false;
#if defined(__linux__)
  if (epoll_fd_.valid()) {
    epoll_event ev{};
    ev.events = EpollMask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_ADD, fd, &ev) != 0) {
      return false;
    }
  }
#endif
  interest_[fd] = Interest{want_read, want_write};
  return true;
}

bool Poller::Update(int fd, bool want_read, bool want_write) {
  const auto it = interest_.find(fd);
  if (it == interest_.end()) return false;
#if defined(__linux__)
  if (epoll_fd_.valid()) {
    epoll_event ev{};
    ev.events = EpollMask(want_read, want_write);
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_MOD, fd, &ev) != 0) {
      return false;
    }
  }
#endif
  it->second = Interest{want_read, want_write};
  return true;
}

void Poller::Remove(int fd) {
  if (interest_.erase(fd) == 0) return;
#if defined(__linux__)
  if (epoll_fd_.valid()) {
    epoll_event ev{};  // ignored for DEL, required pre-2.6.9
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, fd, &ev);
  }
#endif
}

int Poller::Wait(int timeout_ms, std::vector<Event>* events) {
  events->clear();
#if defined(__linux__)
  if (epoll_fd_.valid()) {
    epoll_event ready[64];
    int n;
    do {
      n = ::epoll_wait(epoll_fd_.get(), ready, 64, timeout_ms);
    } while (n < 0 && errno == EINTR);
    if (n < 0) return -1;
    events->reserve(n);
    for (int i = 0; i < n; ++i) {
      Event event;
      event.fd = ready[i].data.fd;
      event.readable = (ready[i].events & EPOLLIN) != 0;
      event.writable = (ready[i].events & EPOLLOUT) != 0;
      event.error = (ready[i].events & (EPOLLERR | EPOLLHUP)) != 0;
      events->push_back(event);
    }
    return n;
  }
#endif
  std::vector<pollfd> fds;
  fds.reserve(interest_.size());
  for (const auto& [fd, want] : interest_) {
    pollfd p{};
    p.fd = fd;
    if (want.read) p.events |= POLLIN;
    if (want.write) p.events |= POLLOUT;
    // poll(2) treats the pollfd array as a set; readiness is per-fd.
    // focus-analyze: allow(nondet-iteration) — pollfd order is irrelevant
    fds.push_back(p);
  }
  int n;
  do {
    n = ::poll(fds.data(), fds.size(), timeout_ms);
  } while (n < 0 && errno == EINTR);
  if (n < 0) return -1;
  for (const pollfd& p : fds) {
    if (p.revents == 0) continue;
    Event event;
    event.fd = p.fd;
    event.readable = (p.revents & POLLIN) != 0;
    event.writable = (p.revents & POLLOUT) != 0;
    event.error = (p.revents & (POLLERR | POLLHUP | POLLNVAL)) != 0;
    events->push_back(event);
  }
  return n;
}

}  // namespace focus::net

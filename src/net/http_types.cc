#include "net/http_types.h"

namespace focus::net {
namespace {

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view lower_name) const {
  for (const auto& [name, value] : headers) {
    if (name == lower_name) return &value;
  }
  return nullptr;
}

std::string_view StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 409: return "Conflict";
    case 413: return "Content Too Large";
    case 414: return "URI Too Long";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponseHeader(const HttpResponse& response,
                                    bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " ";
  out += StatusText(response.status);
  out += "\r\n";
  if (!response.content_type.empty()) {
    out += "Content-Type: " + response.content_type + "\r\n";
  }
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  return out;
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive) {
  std::string out = SerializeResponseHeader(response, keep_alive);
  out += response.body;
  return out;
}

std::string PercentDecode(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '+') {
      out += ' ';
    } else if (text[i] == '%' && i + 2 < text.size() &&
               HexDigit(text[i + 1]) >= 0 && HexDigit(text[i + 2]) >= 0) {
      out += static_cast<char>(HexDigit(text[i + 1]) * 16 +
                               HexDigit(text[i + 2]));
      i += 2;
    } else {
      out += text[i];
    }
  }
  return out;
}

std::map<std::string, std::string> ParseQueryString(std::string_view text) {
  std::map<std::string, std::string> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t end = text.find('&', start);
    if (end == std::string_view::npos) end = text.size();
    const std::string_view pair = text.substr(start, end - start);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string_view::npos) {
        out[PercentDecode(pair)] = "";
      } else {
        out[PercentDecode(pair.substr(0, eq))] =
            PercentDecode(pair.substr(eq + 1));
      }
    }
    if (end == text.size()) break;
    start = end + 1;
  }
  return out;
}

}  // namespace focus::net

#include "net/http_parser.h"

#include <algorithm>
#include <cctype>

namespace focus::net {
namespace {

bool IsTokenChar(char c) {
  if (std::isalnum(static_cast<unsigned char>(c))) return true;
  switch (c) {
    case '!': case '#': case '$': case '%': case '&': case '\'': case '*':
    case '+': case '-': case '.': case '^': case '_': case '`': case '|':
    case '~':
      return true;
    default:
      return false;
  }
}

bool IsToken(std::string_view text) {
  if (text.empty()) return false;
  return std::all_of(text.begin(), text.end(), IsTokenChar);
}

std::string_view TrimOws(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() && (text.back() == ' ' || text.back() == '\t')) {
    text.remove_suffix(1);
  }
  return text;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

// Case-insensitive comparison for Connection tokens.
bool TokenEquals(std::string_view value, std::string_view want) {
  if (value.size() != want.size()) return false;
  for (size_t i = 0; i < value.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(value[i])) != want[i]) {
      return false;
    }
  }
  return true;
}

}  // namespace

HttpParser::HttpParser(const HttpParserLimits& limits) : limits_(limits) {}

HttpParser::Status HttpParser::Consume(std::string_view bytes) {
  if (state_ == State::kError) return Status::kError;
  buffer_.append(bytes.data(), bytes.size());
  return Advance();
}

HttpParser::Status HttpParser::Reset() {
  buffer_.erase(0, cursor_);
  cursor_ = 0;
  content_length_ = 0;
  chunked_ = false;
  chunk_remaining_ = 0;
  trailer_lines_ = 0;
  request_ = HttpRequest();
  state_ = State::kRequestLine;
  return Advance();
}

HttpParser::Status HttpParser::Fail(int status, std::string reason) {
  state_ = State::kError;
  error_status_ = status;
  error_ = std::move(reason);
  return Status::kError;
}

bool HttpParser::NextLine(std::string_view* line) {
  const size_t newline = buffer_.find('\n', cursor_);
  if (newline == std::string::npos) {
    if (buffer_.size() - cursor_ > limits_.max_line_bytes) {
      Fail(state_ == State::kRequestLine ? 414 : 431, "line too long");
    }
    return false;
  }
  size_t end = newline;
  if (end > cursor_ && buffer_[end - 1] == '\r') --end;  // CRLF or bare LF
  if (end - cursor_ > limits_.max_line_bytes) {
    Fail(state_ == State::kRequestLine ? 414 : 431, "line too long");
    return false;
  }
  *line = std::string_view(buffer_).substr(cursor_, end - cursor_);
  cursor_ = newline + 1;
  return true;
}

bool HttpParser::ParseRequestLine(std::string_view line) {
  const size_t first_space = line.find(' ');
  const size_t last_space = line.rfind(' ');
  if (first_space == std::string_view::npos || first_space == last_space) {
    Fail(400, "malformed request line");
    return false;
  }
  const std::string_view method = line.substr(0, first_space);
  const std::string_view target =
      line.substr(first_space + 1, last_space - first_space - 1);
  const std::string_view version = line.substr(last_space + 1);
  if (!IsToken(method) || method.size() > 32) {
    Fail(400, "invalid method");
    return false;
  }
  if (target.empty() || target.front() != '/' ||
      target.find(' ') != std::string_view::npos) {
    Fail(400, "invalid request target");
    return false;
  }
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
  } else if (version.substr(0, 5) == "HTTP/") {
    Fail(505, "unsupported HTTP version");
    return false;
  } else {
    Fail(400, "malformed request line");
    return false;
  }
  request_.method = std::string(method);
  request_.target = std::string(target);
  const size_t question = target.find('?');
  request_.path = PercentDecode(target.substr(0, question));
  if (question != std::string_view::npos) {
    request_.query = ParseQueryString(target.substr(question + 1));
  }
  return true;
}

bool HttpParser::ParseHeaderLine(std::string_view line) {
  if (request_.headers.size() >= limits_.max_headers) {
    Fail(431, "too many headers");
    return false;
  }
  if (line.front() == ' ' || line.front() == '\t') {
    Fail(400, "obsolete header folding");  // RFC 9112 §5.2: reject
    return false;
  }
  const size_t colon = line.find(':');
  if (colon == std::string_view::npos) {
    Fail(400, "header line without ':'");
    return false;
  }
  const std::string_view name = line.substr(0, colon);
  if (!IsToken(name)) {
    Fail(400, "invalid header name");
    return false;
  }
  const std::string_view value = TrimOws(line.substr(colon + 1));
  for (char c : value) {
    if (static_cast<unsigned char>(c) < 0x20 && c != '\t') {
      Fail(400, "control byte in header value");
      return false;
    }
  }
  request_.headers.emplace_back(ToLower(name), std::string(value));
  return true;
}

bool HttpParser::FinishHeaders() {
  request_.keep_alive = request_.version_minor >= 1;
  bool have_content_length = false;
  for (const auto& [name, value] : request_.headers) {
    if (name == "content-length") {
      if (value.empty() ||
          !std::all_of(value.begin(), value.end(),
                       [](char c) { return c >= '0' && c <= '9'; })) {
        Fail(400, "malformed Content-Length");
        return false;
      }
      // Overflow-safe accumulate against the body limit.
      size_t parsed = 0;
      for (char c : value) {
        parsed = parsed * 10 + static_cast<size_t>(c - '0');
        if (parsed > limits_.max_body_bytes) {
          Fail(413, "Content-Length exceeds body limit");
          return false;
        }
      }
      if (have_content_length && parsed != content_length_) {
        Fail(400, "conflicting Content-Length headers");
        return false;
      }
      have_content_length = true;
      content_length_ = parsed;
      if (chunked_) {
        Fail(400, "Transfer-Encoding with Content-Length");
        return false;
      }
    } else if (name == "transfer-encoding") {
      if (chunked_) {
        Fail(400, "duplicate Transfer-Encoding header");
        return false;
      }
      if (have_content_length) {
        Fail(400, "Transfer-Encoding with Content-Length");
        return false;
      }
      // Exactly "chunked" is supported; any other coding (or a coding
      // list) keeps the 501 contract.
      if (!TokenEquals(TrimOws(value), "chunked")) {
        Fail(501, "unsupported Transfer-Encoding");
        return false;
      }
      chunked_ = true;
    } else if (name == "connection") {
      if (TokenEquals(value, "close")) request_.keep_alive = false;
      if (TokenEquals(value, "keep-alive")) request_.keep_alive = true;
    }
  }
  return true;
}

HttpParser::Status HttpParser::Advance() {
  for (;;) {
    switch (state_) {
      case State::kRequestLine: {
        std::string_view line;
        if (!NextLine(&line)) {
          return state_ == State::kError ? Status::kError : Status::kNeedMore;
        }
        if (line.empty()) {
          // Tolerate blank lines between pipelined requests (RFC 9112 §2.2)
          // — but consume them so idle() stays accurate.
          buffer_.erase(0, cursor_);
          cursor_ = 0;
          continue;
        }
        if (!ParseRequestLine(line)) return Status::kError;
        state_ = State::kHeaders;
        continue;
      }
      case State::kHeaders: {
        std::string_view line;
        if (!NextLine(&line)) {
          return state_ == State::kError ? Status::kError : Status::kNeedMore;
        }
        if (line.empty()) {
          if (!FinishHeaders()) return Status::kError;
          state_ = chunked_ ? State::kChunkSize : State::kBody;
          continue;
        }
        if (!ParseHeaderLine(line)) return Status::kError;
        continue;
      }
      case State::kBody: {
        if (buffer_.size() - cursor_ < content_length_) {
          return Status::kNeedMore;
        }
        request_.body = buffer_.substr(cursor_, content_length_);
        cursor_ += content_length_;
        state_ = State::kComplete;
        return Status::kComplete;
      }
      case State::kChunkSize: {
        std::string_view line;
        if (!NextLine(&line)) {
          return state_ == State::kError ? Status::kError : Status::kNeedMore;
        }
        // Chunk extensions (";ext=…") are allowed and ignored.
        const size_t semicolon = line.find(';');
        const std::string_view digits =
            TrimOws(line.substr(0, semicolon));
        if (digits.empty()) {
          return Fail(400, "malformed chunk size");
        }
        // Overflow-safe hex accumulate against the body limit: the decoded
        // body obeys max_body_bytes exactly like Content-Length framing.
        size_t size = 0;
        for (char c : digits) {
          int digit;
          if (c >= '0' && c <= '9') digit = c - '0';
          else if (c >= 'a' && c <= 'f') digit = c - 'a' + 10;
          else if (c >= 'A' && c <= 'F') digit = c - 'A' + 10;
          else return Fail(400, "malformed chunk size");
          size = (size << 4) | static_cast<size_t>(digit);
          if (size > limits_.max_body_bytes) {
            return Fail(413, "chunked body exceeds body limit");
          }
        }
        if (request_.body.size() + size > limits_.max_body_bytes) {
          return Fail(413, "chunked body exceeds body limit");
        }
        if (size == 0) {
          state_ = State::kChunkTrailer;
          continue;
        }
        chunk_remaining_ = size;
        state_ = State::kChunkData;
        continue;
      }
      case State::kChunkData: {
        // Stream the payload as it arrives; the buffer never holds more
        // than one read's worth of an accepted chunk.
        const size_t available = buffer_.size() - cursor_;
        const size_t take = std::min(available, chunk_remaining_);
        request_.body.append(buffer_, cursor_, take);
        cursor_ += take;
        chunk_remaining_ -= take;
        buffer_.erase(0, cursor_);
        cursor_ = 0;
        if (chunk_remaining_ > 0) return Status::kNeedMore;
        // The chunk's trailing CRLF (tolerating bare LF).
        if (buffer_.empty()) return Status::kNeedMore;
        if (buffer_[0] == '\r') {
          if (buffer_.size() < 2) return Status::kNeedMore;
          if (buffer_[1] != '\n') {
            return Fail(400, "malformed chunk terminator");
          }
          cursor_ = 2;
        } else if (buffer_[0] == '\n') {
          cursor_ = 1;
        } else {
          return Fail(400, "malformed chunk terminator");
        }
        buffer_.erase(0, cursor_);
        cursor_ = 0;
        state_ = State::kChunkSize;
        continue;
      }
      case State::kChunkTrailer: {
        std::string_view line;
        if (!NextLine(&line)) {
          return state_ == State::kError ? Status::kError : Status::kNeedMore;
        }
        if (line.empty()) {
          state_ = State::kComplete;
          return Status::kComplete;
        }
        // Trailer fields are consumed but discarded (none are needed for
        // framing); their count is bounded like headers.
        if (++trailer_lines_ > limits_.max_headers) {
          return Fail(431, "too many trailer fields");
        }
        continue;
      }
      case State::kComplete:
        return Status::kComplete;
      case State::kError:
        return Status::kError;
    }
  }
}

}  // namespace focus::net

#ifndef FOCUS_NET_SOCKET_UTIL_H_
#define FOCUS_NET_SOCKET_UTIL_H_

#include <cstdint>
#include <string>

namespace focus::net {

// RAII wrapper around a POSIX file descriptor. Move-only; closes on
// destruction. -1 means "no descriptor".
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int Release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset(int fd = -1);

 private:
  int fd_ = -1;
};

// Marks `fd` O_NONBLOCK. Returns false (and leaves errno set) on failure.
bool SetNonBlocking(int fd);

// Creates a TCP listening socket bound to `address:port` (port 0 picks an
// ephemeral port) with SO_REUSEADDR. With `reuse_port`, SO_REUSEPORT is
// also set so several listeners can share one port and let the kernel
// load-balance accepts across them (the sharded front end's reactors). On
// success returns the descriptor and stores the actually bound port in
// `bound_port`; on failure returns an invalid fd and fills `error` with a
// reason.
UniqueFd ListenTcp(const std::string& address, uint16_t port, int backlog,
                   uint16_t* bound_port, std::string* error,
                   bool reuse_port = false);

// Blocking TCP connect (used by the test/bench client, not the server).
UniqueFd ConnectTcp(const std::string& address, uint16_t port,
                    std::string* error);

// Creates a Unix-domain stream listener bound to `path`. A stale socket
// file at `path` is unlinked first (the caller owns the directory, so a
// leftover from a crashed predecessor is safe to replace). Fails when the
// path does not fit sockaddr_un.
UniqueFd ListenUnix(const std::string& path, int backlog, std::string* error);

// Blocking Unix-domain connect (shard clients in the HTTP front end).
UniqueFd ConnectUnix(const std::string& path, std::string* error);

}  // namespace focus::net

#endif  // FOCUS_NET_SOCKET_UTIL_H_

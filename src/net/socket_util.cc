#include "net/socket_util.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace focus::net {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

bool FillAddress(const std::string& address, uint16_t port,
                 sockaddr_in* out, std::string* error) {
  std::memset(out, 0, sizeof(*out));
  out->sin_family = AF_INET;
  out->sin_port = htons(port);
  if (inet_pton(AF_INET, address.c_str(), &out->sin_addr) != 1) {
    if (error != nullptr) *error = "invalid IPv4 address '" + address + "'";
    return false;
  }
  return true;
}

}  // namespace

void UniqueFd::Reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

UniqueFd ListenTcp(const std::string& address, uint16_t port, int backlog,
                   uint16_t* bound_port, std::string* error,
                   bool reuse_port) {
  sockaddr_in addr;
  if (!FillAddress(address, port, &addr, error)) return UniqueFd();

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return UniqueFd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
#ifdef SO_REUSEPORT
  if (reuse_port) {
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one));
  }
#else
  (void)reuse_port;
#endif
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (error != nullptr) *error = Errno("bind " + address);
    return UniqueFd();
  }
  if (::listen(fd.get(), backlog) != 0) {
    if (error != nullptr) *error = Errno("listen");
    return UniqueFd();
  }
  if (bound_port != nullptr) {
    sockaddr_in bound;
    socklen_t len = sizeof(bound);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) !=
        0) {
      if (error != nullptr) *error = Errno("getsockname");
      return UniqueFd();
    }
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

UniqueFd ConnectTcp(const std::string& address, uint16_t port,
                    std::string* error) {
  sockaddr_in addr;
  if (!FillAddress(address, port, &addr, error)) return UniqueFd();

  UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return UniqueFd();
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (error != nullptr) *error = Errno("connect");
    return UniqueFd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

namespace {

bool FillUnixAddress(const std::string& path, sockaddr_un* out,
                     std::string* error) {
  std::memset(out, 0, sizeof(*out));
  out->sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(out->sun_path)) {
    if (error != nullptr) {
      *error = "unix socket path '" + path + "' is empty or too long";
    }
    return false;
  }
  std::memcpy(out->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

UniqueFd ListenUnix(const std::string& path, int backlog,
                    std::string* error) {
  sockaddr_un addr;
  if (!FillUnixAddress(path, &addr, error)) return UniqueFd();

  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return UniqueFd();
  }
  ::unlink(path.c_str());  // replace a stale socket file, if any
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (error != nullptr) *error = Errno("bind " + path);
    return UniqueFd();
  }
  if (::listen(fd.get(), backlog) != 0) {
    if (error != nullptr) *error = Errno("listen " + path);
    return UniqueFd();
  }
  return fd;
}

UniqueFd ConnectUnix(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!FillUnixAddress(path, &addr, error)) return UniqueFd();

  UniqueFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (error != nullptr) *error = Errno("socket");
    return UniqueFd();
  }
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    if (error != nullptr) *error = Errno("connect " + path);
    return UniqueFd();
  }
  return fd;
}

}  // namespace focus::net

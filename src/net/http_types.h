#ifndef FOCUS_NET_HTTP_TYPES_H_
#define FOCUS_NET_HTTP_TYPES_H_

#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace focus::net {

// One parsed HTTP/1.x request. Header names are lower-cased at parse time
// (field names are case-insensitive per RFC 9110); values keep their bytes
// with surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;              // e.g. "GET" (kept upper-case as sent)
  std::string target;              // raw request target, e.g. "/a/b?x=1"
  std::string path;                // target up to '?', percent-decoded
  std::map<std::string, std::string> query;  // decoded key -> value
  int version_minor = 1;           // HTTP/1.<minor>
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;          // after Connection/version defaulting

  // First header with this lower-case name, or nullptr.
  const std::string* FindHeader(std::string_view lower_name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  // Extra headers (e.g. {"retry-after","1"}); Content-Length, Connection
  // and Content-Type are emitted by the serializer.
  std::vector<std::pair<std::string, std::string>> headers;
};

// Canonical reason phrase ("Not Found"); "Unknown" for unlisted codes.
std::string_view StatusText(int status);

// Serializes a response as HTTP/1.1 bytes with Content-Length framing and
// an explicit Connection header.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive);

// Only the status line + headers, through the terminating blank line,
// with Content-Length framing for `response.body` (which is NOT
// appended). The server queues this block and the body as separate
// buffers and hands both to one sendmsg iovec batch, so a response goes
// out in a single syscall without concatenating the body into the header
// string first.
std::string SerializeResponseHeader(const HttpResponse& response,
                                    bool keep_alive);

// Decodes %XX escapes and '+' (as space). Invalid escapes pass through
// verbatim — the parser never rejects on decoding alone.
std::string PercentDecode(std::string_view text);

// Parses "a=1&b=two" into a decoded key/value map (last key wins).
std::map<std::string, std::string> ParseQueryString(std::string_view text);

}  // namespace focus::net

#endif  // FOCUS_NET_HTTP_TYPES_H_

#ifndef FOCUS_NET_POLLER_H_
#define FOCUS_NET_POLLER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/socket_util.h"

namespace focus::net {

// Readiness multiplexer behind the server's event loop: epoll on Linux, a
// portable poll(2) implementation everywhere else. Level-triggered on both
// engines, so a descriptor that still has buffered bytes (or writable
// space) is reported again on the next Wait — the server never needs to
// drain a socket to EAGAIN inside one callback to stay correct.
class Poller {
 public:
  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    // Hangup or error condition; the owner should tear the fd down.
    bool error = false;
  };

  // `force_poll` selects the poll(2) engine even where epoll is available
  // (exercised by tests so the fallback cannot bit-rot).
  explicit Poller(bool force_poll = false);
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  // Registers `fd`; at most one registration per descriptor.
  bool Add(int fd, bool want_read, bool want_write);
  // Changes the interest set of a registered descriptor.
  bool Update(int fd, bool want_read, bool want_write);
  // Deregisters; must be called before the descriptor is closed.
  void Remove(int fd);

  // Blocks up to `timeout_ms` (-1 = forever) and appends ready events to
  // `events` (cleared first). Returns the number of ready descriptors, 0
  // on timeout, -1 on failure.
  int Wait(int timeout_ms, std::vector<Event>* events);

  size_t size() const { return interest_.size(); }
  bool using_epoll() const { return epoll_fd_.valid(); }

 private:
  struct Interest {
    bool read = false;
    bool write = false;
  };

  // fd -> interest; the source of truth for the poll(2) engine and the
  // registration guard for both.
  std::unordered_map<int, Interest> interest_;
  UniqueFd epoll_fd_;  // invalid => poll(2) engine
};

}  // namespace focus::net

#endif  // FOCUS_NET_POLLER_H_

#ifndef FOCUS_NET_ROUTER_H_
#define FOCUS_NET_ROUTER_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "net/http_types.h"

namespace focus::net {

// Captured path parameters, e.g. {"name" -> "payments"} for the pattern
// "/v1/streams/{name}/snapshots".
using PathParams = std::map<std::string, std::string>;

using HttpHandler =
    std::function<HttpResponse(const HttpRequest&, const PathParams&)>;

// Method + literal/parameterized path dispatch. Patterns are '/'-separated
// segments; a segment spelled "{name}" captures one non-empty path
// segment. Matching is exact on segment count. Unknown paths get 404;
// known paths with the wrong method get 405 with an Allow header.
class Router {
 public:
  void Handle(std::string method, std::string pattern, HttpHandler handler);

  HttpResponse Dispatch(const HttpRequest& request) const;

  size_t num_routes() const { return routes_.size(); }

 private:
  struct Route {
    std::string method;
    std::vector<std::string> segments;  // "{x}" marks a capture
    HttpHandler handler;
  };

  static std::vector<std::string> SplitPath(std::string_view path);
  static bool Match(const Route& route,
                    const std::vector<std::string>& segments,
                    PathParams* params);

  std::vector<Route> routes_;
};

// JSON error payload {"error":"..."} with the right content type.
HttpResponse ErrorResponse(int status, std::string_view message);

}  // namespace focus::net

#endif  // FOCUS_NET_ROUTER_H_

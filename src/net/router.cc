#include "net/router.h"

#include <cstdio>

namespace focus::net {
namespace {

// Minimal JSON string escaping for error payloads (the serve layer has a
// full exporter; net stays dependency-free below it).
std::string EscapeJson(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

HttpResponse ErrorResponse(int status, std::string_view message) {
  HttpResponse response;
  response.status = status;
  response.body = "{\"error\":\"" + EscapeJson(message) + "\"}\n";
  return response;
}

void Router::Handle(std::string method, std::string pattern,
                    HttpHandler handler) {
  Route route;
  route.method = std::move(method);
  route.segments = SplitPath(pattern);
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

std::vector<std::string> Router::SplitPath(std::string_view path) {
  std::vector<std::string> segments;
  size_t start = 0;
  while (start < path.size()) {
    if (path[start] == '/') {
      ++start;
      continue;
    }
    size_t end = path.find('/', start);
    if (end == std::string_view::npos) end = path.size();
    segments.emplace_back(path.substr(start, end - start));
    start = end;
  }
  return segments;
}

bool Router::Match(const Route& route, const std::vector<std::string>& segments,
                   PathParams* params) {
  if (route.segments.size() != segments.size()) return false;
  PathParams captured;
  for (size_t i = 0; i < segments.size(); ++i) {
    const std::string& pattern = route.segments[i];
    if (pattern.size() >= 2 && pattern.front() == '{' &&
        pattern.back() == '}') {
      if (segments[i].empty()) return false;
      captured[pattern.substr(1, pattern.size() - 2)] = segments[i];
    } else if (pattern != segments[i]) {
      return false;
    }
  }
  params->swap(captured);
  return true;
}

HttpResponse Router::Dispatch(const HttpRequest& request) const {
  const std::vector<std::string> segments = SplitPath(request.path);
  std::string allowed;  // methods that matched the path but not the verb
  for (const Route& route : routes_) {
    PathParams params;
    if (!Match(route, segments, &params)) continue;
    if (route.method != request.method) {
      if (!allowed.empty()) allowed += ", ";
      allowed += route.method;
      continue;
    }
    return route.handler(request, params);
  }
  if (!allowed.empty()) {
    HttpResponse response = ErrorResponse(405, "method not allowed");
    response.headers.emplace_back("allow", allowed);
    return response;
  }
  return ErrorResponse(404, "no such endpoint");
}

}  // namespace focus::net

#ifndef FOCUS_NET_HTTP_PARSER_H_
#define FOCUS_NET_HTTP_PARSER_H_

#include <cstddef>
#include <string>
#include <string_view>

#include "net/http_types.h"

namespace focus::net {

// Hard limits on the wire format. A request breaching any of them is a
// parse error with an appropriate 4xx status — never an allocation
// proportional to attacker-controlled input beyond these bounds.
struct HttpParserLimits {
  size_t max_line_bytes = 8192;        // request line and each header line
  size_t max_headers = 64;             // header count
  size_t max_body_bytes = 8u << 20;    // Content-Length ceiling (8 MiB)
};

// Incremental HTTP/1.0-1.1 request parser for one connection. Feed network
// bytes as they arrive; the parser consumes at most one request per
// Consume/Reset cycle and buffers any pipelined surplus for the next
// cycle.
//
//   HttpParser parser(limits);
//   switch (parser.Consume(bytes)) {
//     case Status::kNeedMore:  // wait for more bytes
//     case Status::kComplete:  // parser.request() is valid;
//                              // handle, then parser.Reset() — which may
//                              // itself return kComplete for a pipelined
//                              // follow-up already in the buffer
//     case Status::kError:     // respond parser.error_status(), close
//   }
//
// Supported framing is Content-Length, `Transfer-Encoding: chunked` (the
// decoded body honors max_body_bytes, chunk-size lines honor
// max_line_bytes, and trailer fields are consumed but discarded), and no
// body. Any other Transfer-Encoding is rejected as 501; a request sending
// both Transfer-Encoding and Content-Length is rejected as 400 (request-
// smuggling vector, RFC 9112 §6.1). Bare-LF line endings are accepted
// (robustness — curl and friends always send CRLF). Errors are terminal
// for the connection.
class HttpParser {
 public:
  enum class Status { kNeedMore, kComplete, kError };

  explicit HttpParser(const HttpParserLimits& limits = HttpParserLimits());

  // Appends bytes and advances the state machine.
  Status Consume(std::string_view bytes);

  // After kComplete: discards the finished request and immediately parses
  // any buffered pipelined bytes (so the return value is again one of the
  // three states). Undefined after kError.
  Status Reset();

  // Valid while the last status was kComplete.
  const HttpRequest& request() const { return request_; }
  HttpRequest& mutable_request() { return request_; }

  // Valid while the last status was kError.
  const std::string& error() const { return error_; }
  int error_status() const { return error_status_; }

  // True when no bytes of a next request have been received — the
  // connection is between requests and safe to close at drain/deadline.
  bool idle() const { return state_ == State::kRequestLine && buffer_.empty(); }

  const HttpParserLimits& limits() const { return limits_; }

 private:
  enum class State {
    kRequestLine,
    kHeaders,
    kBody,          // Content-Length framing (or no body)
    kChunkSize,     // hex size line of the next chunk
    kChunkData,     // chunk payload + its trailing CRLF
    kChunkTrailer,  // trailer lines after the terminal 0-chunk
    kComplete,
    kError,
  };

  Status Advance();
  // Extracts the next line (without its terminator) from buffer_ starting
  // at cursor_. Returns false when incomplete; sets kError on an over-long
  // line.
  bool NextLine(std::string_view* line);
  Status Fail(int status, std::string reason);
  bool ParseRequestLine(std::string_view line);
  bool ParseHeaderLine(std::string_view line);
  bool FinishHeaders();

  HttpParserLimits limits_;
  State state_ = State::kRequestLine;
  std::string buffer_;   // unconsumed bytes
  size_t cursor_ = 0;    // parse position within buffer_
  size_t content_length_ = 0;
  bool chunked_ = false;        // Transfer-Encoding: chunked framing
  size_t chunk_remaining_ = 0;  // payload bytes left in the current chunk
  size_t trailer_lines_ = 0;    // trailer count, bounded by max_headers
  HttpRequest request_;
  std::string error_;
  int error_status_ = 400;
};

}  // namespace focus::net

#endif  // FOCUS_NET_HTTP_PARSER_H_

#include "net/http_client.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace focus::net {
namespace {

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  while (!text.empty() && (text.front() == ' ' || text.front() == '\t')) {
    text.remove_prefix(1);
  }
  while (!text.empty() &&
         (text.back() == ' ' || text.back() == '\t' || text.back() == '\r')) {
    text.remove_suffix(1);
  }
  return text;
}

}  // namespace

bool HttpClient::Connect(const std::string& address, uint16_t port,
                         std::string* error) {
  Close();
  fd_ = ConnectTcp(address, port, error);
  if (!fd_.valid()) return false;
  timeval tv{};
  tv.tv_sec = timeout_ms_ / 1000;
  tv.tv_usec = (timeout_ms_ % 1000) * 1000;
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd_.get(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  return true;
}

void HttpClient::Close() {
  fd_.Reset();
  inbuf_.clear();
}

bool HttpClient::SendRaw(std::string_view bytes) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_.get(), bytes.data() + sent,
                             bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      Close();
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

std::optional<HttpClientResponse> HttpClient::ReadResponse() {
  // Accumulate until the header block and the declared body are complete.
  auto read_more = [this]() -> bool {
    char buffer[8192];
    ssize_t n;
    do {
      n = ::recv(fd_.get(), buffer, sizeof(buffer), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return false;
    inbuf_.append(buffer, static_cast<size_t>(n));
    return true;
  };

  size_t header_end;
  while ((header_end = inbuf_.find("\r\n\r\n")) == std::string::npos) {
    if (!read_more()) {
      Close();
      return std::nullopt;
    }
  }

  HttpClientResponse response;
  size_t content_length = 0;
  {
    const std::string_view head =
        std::string_view(inbuf_).substr(0, header_end);
    size_t line_start = 0;
    bool first = true;
    while (line_start <= head.size()) {
      size_t line_end = head.find("\r\n", line_start);
      if (line_end == std::string_view::npos) line_end = head.size();
      const std::string_view line =
          head.substr(line_start, line_end - line_start);
      if (first) {
        // "HTTP/1.1 200 OK"
        const size_t sp = line.find(' ');
        if (sp == std::string_view::npos) {
          Close();
          return std::nullopt;
        }
        response.status =
            std::atoi(std::string(line.substr(sp + 1, 3)).c_str());
        first = false;
      } else if (!line.empty()) {
        const size_t colon = line.find(':');
        if (colon != std::string_view::npos) {
          response.headers[ToLower(Trim(line.substr(0, colon)))] =
              std::string(Trim(line.substr(colon + 1)));
        }
      }
      if (line_end == head.size()) break;
      line_start = line_end + 2;
    }
  }
  const auto it = response.headers.find("content-length");
  if (it != response.headers.end()) {
    content_length = static_cast<size_t>(std::atoll(it->second.c_str()));
  }
  const size_t body_start = header_end + 4;
  while (inbuf_.size() - body_start < content_length) {
    if (!read_more()) {
      Close();
      return std::nullopt;
    }
  }
  response.body = inbuf_.substr(body_start, content_length);
  inbuf_.erase(0, body_start + content_length);
  return response;
}

std::optional<HttpClientResponse> HttpClient::Request(
    std::string_view method, std::string_view target, std::string_view body,
    std::string_view content_type) {
  if (!fd_.valid()) return std::nullopt;
  std::string request;
  request.reserve(128 + body.size());
  request.append(method).append(" ").append(target).append(" HTTP/1.1\r\n");
  request.append("Host: localhost\r\n");
  if (!body.empty() || method == "POST" || method == "PUT") {
    request.append("Content-Type: ").append(content_type).append("\r\n");
    request.append("Content-Length: ")
        .append(std::to_string(body.size()))
        .append("\r\n");
  }
  request.append("\r\n").append(body);
  if (!SendRaw(request)) return std::nullopt;
  return ReadResponse();
}

}  // namespace focus::net

#ifndef FOCUS_NET_HTTP_CLIENT_H_
#define FOCUS_NET_HTTP_CLIENT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>

#include "net/socket_util.h"

namespace focus::net {

struct HttpClientResponse {
  int status = 0;
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;
};

// Minimal blocking HTTP/1.1 client for tests and benchmarks: one
// keep-alive connection, Content-Length framing only (which is all the
// server emits). Not safe for concurrent use; give each thread its own.
class HttpClient {
 public:
  // `timeout_ms` bounds each blocking send/recv (SO_SNDTIMEO/SO_RCVTIMEO).
  explicit HttpClient(int timeout_ms = 10'000) : timeout_ms_(timeout_ms) {}

  bool Connect(const std::string& address, uint16_t port,
               std::string* error = nullptr);
  void Close();
  bool connected() const { return fd_.valid(); }

  // Sends one request and blocks for the complete response. nullopt on
  // transport failure (connection also closed then).
  std::optional<HttpClientResponse> Request(
      std::string_view method, std::string_view target,
      std::string_view body = "",
      std::string_view content_type = "application/octet-stream");

  std::optional<HttpClientResponse> Get(std::string_view target) {
    return Request("GET", target);
  }
  std::optional<HttpClientResponse> Post(std::string_view target,
                                         std::string_view body,
                                         std::string_view content_type) {
    return Request("POST", target, body, content_type);
  }

  // Escape hatches for protocol-abuse tests: ship raw bytes, then read
  // whatever response the server produces.
  bool SendRaw(std::string_view bytes);
  std::optional<HttpClientResponse> ReadResponse();

 private:
  int timeout_ms_;
  UniqueFd fd_;
  std::string inbuf_;  // bytes past the previous response (keep-alive)
};

}  // namespace focus::net

#endif  // FOCUS_NET_HTTP_CLIENT_H_

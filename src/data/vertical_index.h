#ifndef FOCUS_DATA_VERTICAL_INDEX_H_
#define FOCUS_DATA_VERTICAL_INDEX_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/transaction_db.h"
#include "data/txn_source.h"

namespace focus::data {

// Vertical (per-item) representation of a TransactionDb: for every item a
// 64-bit TID bitmap whose bit t is set iff transaction t contains the
// item. Built in ONE pass over the database — the paper's §3.3.1 "scan
// each dataset once" budget — and then probed arbitrarily often: the
// support of an itemset is the popcount of the AND of its members'
// bitmaps, a word-parallel kernel that touches 64 transactions per
// instruction instead of walking transactions horizontally. Setting a
// transaction's bits and bumping its items' counts happen in the SAME
// loop, so the build really is one touch per occurrence.
//
// The classic vertical-mining trade-off: the index costs
// num_items x ceil(n/64) x 8 bytes (e.g. 1000 items x 1M transactions
// ~ 125 MiB) and one build scan, and in exchange every later counting
// pass over the SAME dataset — GCR extension against a rotating set of
// reference models, Apriori's level-wise passes, sliding-window
// re-comparisons in the serving layer — skips the raw transactions
// entirely. Build once, probe many.
class VerticalIndex {
 public:
  // One scan of `db`. Transactions must satisfy TransactionDb's
  // sorted-unique invariant (they do, by construction).
  explicit VerticalIndex(const TransactionDb& db);

  // One scan of either backend: block-backed sources stream through the
  // same build loop block-at-a-time (with read-ahead), touching each
  // occurrence exactly once. The resulting index is identical — not just
  // count-equal, operator==-equal — to an in-memory build of the same
  // logical database.
  explicit VerticalIndex(TxnSourceRef source);

  bool operator==(const VerticalIndex& other) const = default;

  int32_t num_items() const { return num_items_; }
  int64_t num_transactions() const { return num_transactions_; }
  // Words per item bitmap: ceil(num_transactions / 64).
  int64_t num_words() const { return words_; }

  // The TID bitmap of `item`. Bits at positions >= num_transactions()
  // (the tail of the last word) are always zero, so AND+popcount needs
  // no tail masking.
  std::span<const uint64_t> ItemBits(int32_t item) const {
    return {bits_.data() + static_cast<size_t>(item) * words_,
            static_cast<size_t>(words_)};
  }

  // Absolute occurrence count of a single item (cached popcount).
  int64_t ItemCount(int32_t item) const { return item_counts_[item]; }

  // Absolute occurrence count of the itemset `items` (ascending distinct
  // item ids in [0, num_items)): popcount of the AND of the members'
  // bitmaps, through the runtime-dispatched data::simd kernels (the k
  // streams advance together, so they stay cache-resident). The empty
  // itemset holds in every transaction.
  int64_t CountIntersection(std::span<const int32_t> items) const;

  // Transactions containing every item of `items` but NOT `excluded` —
  // the AND-NOT deviation kernel. Equals
  // CountIntersection(items) - CountIntersection(items + excluded).
  int64_t CountDifference(std::span<const int32_t> items,
                          int32_t excluded) const;

  // Approximate heap footprint, for capacity planning in caches.
  int64_t MemoryBytes() const {
    return static_cast<int64_t>(bits_.capacity()) * 8 +
           static_cast<int64_t>(item_counts_.capacity()) * 8;
  }

 private:
  int32_t num_items_ = 0;
  int64_t num_transactions_ = 0;
  int64_t words_ = 0;
  std::vector<uint64_t> bits_;  // row-major [item][word]
  std::vector<int64_t> item_counts_;
};

}  // namespace focus::data

#endif  // FOCUS_DATA_VERTICAL_INDEX_H_

#include "data/vertical_index.h"

#include <vector>

#include "common/check.h"
#include "data/simd_kernels.h"

namespace focus::data {

VerticalIndex::VerticalIndex(const TransactionDb& db)
    : VerticalIndex(TxnSourceRef(db)) {}

VerticalIndex::VerticalIndex(TxnSourceRef source)
    : num_items_(source.num_items()),
      num_transactions_(source.num_transactions()),
      words_((source.num_transactions() + 63) / 64),
      bits_(static_cast<size_t>(source.num_items()) *
                ((source.num_transactions() + 63) / 64),
            0),
      item_counts_(source.num_items(), 0) {
  // Transactions are sorted-unique, so every occurrence sets a fresh bit
  // and the per-item count can accumulate in the same single pass — no
  // second popcount sweep over the finished bitmaps. Block-backed sources
  // visit the same transactions at the same global TIDs, so the bitmaps
  // come out bit-identical to an in-memory build.
  source.ForEachBlock([&](int64_t first_txn, const TransactionDb& block) {
    const int64_t n = block.num_transactions();
    for (int64_t t = 0; t < n; ++t) {
      const int64_t tid = first_txn + t;
      const uint64_t bit = 1ULL << (tid & 63);
      const int64_t word = tid >> 6;
      for (int32_t item : block.Transaction(t)) {
        bits_[static_cast<size_t>(item) * words_ + word] |= bit;
        ++item_counts_[item];
      }
    }
  });
}

int64_t VerticalIndex::CountIntersection(std::span<const int32_t> items) const {
  if (items.empty()) return num_transactions_;
  if (items.size() == 1) return item_counts_[items[0]];

  constexpr size_t kStackStreams = 16;
  const uint64_t* stack_ptrs[kStackStreams];
  std::vector<const uint64_t*> heap_ptrs;
  const uint64_t** ptrs = stack_ptrs;
  if (items.size() > kStackStreams) {
    heap_ptrs.resize(items.size());
    ptrs = heap_ptrs.data();
  }
  for (size_t m = 0; m < items.size(); ++m) {
    ptrs[m] = bits_.data() + static_cast<size_t>(items[m]) * words_;
  }
  return simd::IntersectPopcountWords(ptrs, static_cast<int>(items.size()),
                                      /*exclude=*/nullptr, words_);
}

int64_t VerticalIndex::CountDifference(std::span<const int32_t> items,
                                       int32_t excluded) const {
  const uint64_t* exclude =
      bits_.data() + static_cast<size_t>(excluded) * words_;
  if (items.empty()) return num_transactions_ - item_counts_[excluded];

  constexpr size_t kStackStreams = 16;
  const uint64_t* stack_ptrs[kStackStreams];
  std::vector<const uint64_t*> heap_ptrs;
  const uint64_t** ptrs = stack_ptrs;
  if (items.size() > kStackStreams) {
    heap_ptrs.resize(items.size());
    ptrs = heap_ptrs.data();
  }
  for (size_t m = 0; m < items.size(); ++m) {
    ptrs[m] = bits_.data() + static_cast<size_t>(items[m]) * words_;
  }
  return simd::IntersectPopcountWords(ptrs, static_cast<int>(items.size()),
                                      exclude, words_);
}

}  // namespace focus::data

#include "data/vertical_index.h"

#include <algorithm>
#include <bit>

#include "common/check.h"

namespace focus::data {

VerticalIndex::VerticalIndex(const TransactionDb& db)
    : num_items_(db.num_items()),
      num_transactions_(db.num_transactions()),
      words_((db.num_transactions() + 63) / 64),
      bits_(static_cast<size_t>(db.num_items()) * ((db.num_transactions() + 63) / 64), 0),
      item_counts_(db.num_items(), 0) {
  for (int64_t t = 0; t < num_transactions_; ++t) {
    const uint64_t bit = 1ULL << (t & 63);
    const int64_t word = t >> 6;
    for (int32_t item : db.Transaction(t)) {
      bits_[static_cast<size_t>(item) * words_ + word] |= bit;
    }
  }
  for (int32_t item = 0; item < num_items_; ++item) {
    int64_t count = 0;
    for (uint64_t word : ItemBits(item)) count += std::popcount(word);
    item_counts_[item] = count;
  }
}

int64_t VerticalIndex::CountIntersection(std::span<const int32_t> items) const {
  if (items.empty()) return num_transactions_;
  if (items.size() == 1) return item_counts_[items[0]];

  const uint64_t* first = bits_.data() + static_cast<size_t>(items[0]) * words_;
  int64_t count = 0;
  // Blocked so the k bitmap streams stay within L1/L2 while the AND chain
  // runs word-parallel; 2048 words cover 128K transactions per block.
  constexpr int64_t kBlockWords = 2048;
  for (int64_t base = 0; base < words_; base += kBlockWords) {
    const int64_t end = std::min(words_, base + kBlockWords);
    for (int64_t w = base; w < end; ++w) {
      uint64_t acc = first[w];
      for (size_t m = 1; m < items.size(); ++m) {
        acc &= bits_[static_cast<size_t>(items[m]) * words_ + w];
      }
      count += std::popcount(acc);
    }
  }
  return count;
}

}  // namespace focus::data

#include "data/dataset.h"

#include "common/check.h"

namespace focus::data {

Dataset::Dataset(Schema schema) : schema_(std::move(schema)) {}

void Dataset::AddRow(std::span<const double> values, int label) {
  FOCUS_CHECK_EQ(static_cast<int>(values.size()), schema_.num_attributes());
  if (schema_.num_classes() > 0) {
    FOCUS_CHECK_GE(label, 0);
    FOCUS_CHECK_LT(label, schema_.num_classes());
  }
  values_.insert(values_.end(), values.begin(), values.end());
  labels_.push_back(label);
}

void Dataset::Reserve(int64_t rows) {
  values_.reserve(rows * schema_.num_attributes());
  labels_.reserve(rows);
}

void Dataset::Append(const Dataset& other) {
  FOCUS_CHECK(schema_ == other.schema_) << "Append requires identical schemas";
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
}

}  // namespace focus::data

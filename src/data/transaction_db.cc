#include "data/transaction_db.h"

#include <algorithm>

#include "common/check.h"

namespace focus::data {

void TransactionDb::AddTransaction(std::span<const int32_t> items) {
  std::vector<int32_t> sorted(items.begin(), items.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  for (int32_t item : sorted) {
    FOCUS_CHECK_GE(item, 0);
    FOCUS_CHECK_LT(item, num_items_);
  }
  items_.insert(items_.end(), sorted.begin(), sorted.end());
  offsets_.push_back(static_cast<int64_t>(items_.size()));
}

void TransactionDb::Append(const TransactionDb& other) {
  FOCUS_CHECK_EQ(num_items_, other.num_items_);
  for (int64_t t = 0; t < other.num_transactions(); ++t) {
    const auto txn = other.Transaction(t);
    items_.insert(items_.end(), txn.begin(), txn.end());
    offsets_.push_back(static_cast<int64_t>(items_.size()));
  }
}

void TransactionDb::Reserve(int64_t transactions, int64_t total_items) {
  offsets_.reserve(transactions + 1);
  items_.reserve(total_items);
}

}  // namespace focus::data

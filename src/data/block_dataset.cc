#include "data/block_dataset.h"

#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <istream>
#include <ostream>

#include "common/thread_pool.h"

namespace focus::data {
namespace {

constexpr uint64_t kMaxAttributes = 4096;
constexpr uint64_t kMaxClasses = uint64_t{1} << 20;
constexpr uint64_t kMaxNameBytes = 4096;
constexpr int64_t kMaxRows = int64_t{1} << 40;

bool Fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

void AppendDoubleBits(std::string& out, double value) {
  const auto bits = std::bit_cast<uint64_t>(value);
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

bool ReadDoubleBits(std::string_view bytes, size_t* pos, double* value) {
  if (*pos + 8 > bytes.size()) return false;
  uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[*pos + i]))
            << (8 * i);
  }
  *pos += 8;
  *value = std::bit_cast<double>(bits);
  return true;
}

void EncodeRow(std::span<const double> values, int label, std::string& out) {
  AppendVarint(out, static_cast<uint64_t>(label));
  for (double value : values) AppendDoubleBits(out, value);
}

}  // namespace

void EncodeSchemaBlock(const Schema& schema, std::string& out) {
  AppendVarint(out, static_cast<uint64_t>(schema.num_attributes()));
  AppendVarint(out, static_cast<uint64_t>(schema.num_classes()));
  for (const Attribute& attr : schema.attributes()) {
    AppendVarint(out, attr.name.size());
    out += attr.name;
    const bool categorical = attr.type == AttributeType::kCategorical;
    out.push_back(categorical ? '\1' : '\0');
    // Normalize the fields Schema::operator== ignores, so the encoding of
    // equal schemas is identical (and save -> load -> save a fixed point).
    AppendVarint(out, categorical ? static_cast<uint64_t>(attr.cardinality)
                                  : uint64_t{0});
    AppendDoubleBits(out, categorical ? 0.0 : attr.min_value);
    AppendDoubleBits(out, categorical ? 1.0 : attr.max_value);
  }
}

bool DecodeSchemaBlock(std::string_view payload, Schema* out,
                       std::string* error) {
  size_t pos = 0;
  uint64_t num_attributes = 0;
  uint64_t num_classes = 0;
  if (!ReadVarint(payload, &pos, &num_attributes) ||
      !ReadVarint(payload, &pos, &num_classes)) {
    return Fail(error, "schema block: bad header varint");
  }
  if (num_attributes > kMaxAttributes) {
    return Fail(error, "schema block: too many attributes");
  }
  if (num_classes > kMaxClasses) {
    return Fail(error, "schema block: too many classes");
  }
  std::vector<Attribute> attributes;
  attributes.reserve(num_attributes);
  for (uint64_t a = 0; a < num_attributes; ++a) {
    uint64_t name_len = 0;
    if (!ReadVarint(payload, &pos, &name_len) || name_len > kMaxNameBytes ||
        pos + name_len > payload.size()) {
      return Fail(error, "schema block: bad attribute name");
    }
    Attribute attr;
    attr.name.assign(payload.substr(pos, name_len));
    pos += name_len;
    if (pos >= payload.size()) {
      return Fail(error, "schema block: truncated attribute");
    }
    const auto type_byte = static_cast<uint8_t>(payload[pos++]);
    if (type_byte > 1) return Fail(error, "schema block: bad attribute type");
    attr.type = type_byte == 1 ? AttributeType::kCategorical
                               : AttributeType::kNumeric;
    uint64_t cardinality = 0;
    if (!ReadVarint(payload, &pos, &cardinality)) {
      return Fail(error, "schema block: bad cardinality varint");
    }
    if (!ReadDoubleBits(payload, &pos, &attr.min_value) ||
        !ReadDoubleBits(payload, &pos, &attr.max_value)) {
      return Fail(error, "schema block: truncated attribute bounds");
    }
    if (attr.type == AttributeType::kCategorical) {
      // Schema's invariant, checked here so corrupt input fails cleanly
      // instead of tripping the Schema constructor's FOCUS_CHECK.
      if (cardinality < 1 || cardinality > 64) {
        return Fail(error, "schema block: categorical cardinality out of range");
      }
      if (std::bit_cast<uint64_t>(attr.min_value) !=
              std::bit_cast<uint64_t>(0.0) ||
          std::bit_cast<uint64_t>(attr.max_value) !=
              std::bit_cast<uint64_t>(1.0)) {
        return Fail(error, "schema block: non-canonical categorical bounds");
      }
      attr.cardinality = static_cast<int>(cardinality);
    } else {
      if (cardinality != 0) {
        return Fail(error, "schema block: non-canonical numeric cardinality");
      }
      if (std::isnan(attr.min_value) || std::isnan(attr.max_value) ||
          !(attr.min_value <= attr.max_value)) {
        return Fail(error, "schema block: bad numeric bounds");
      }
    }
    attributes.push_back(std::move(attr));
  }
  if (pos != payload.size()) {
    return Fail(error, "schema block: trailing bytes");
  }
  *out = Schema(std::move(attributes), static_cast<int>(num_classes));
  return true;
}

bool DecodeDatasetBlock(std::string_view payload, const Schema& schema,
                        Dataset* out, std::string* error) {
  const int num_attributes = schema.num_attributes();
  size_t pos = 0;
  std::vector<double> values(static_cast<size_t>(num_attributes));
  while (pos < payload.size()) {
    uint64_t label = 0;
    if (!ReadVarint(payload, &pos, &label)) {
      return Fail(error, "dataset block: bad label varint");
    }
    if (schema.num_classes() > 0
            ? label >= static_cast<uint64_t>(schema.num_classes())
            : label != 0) {
      return Fail(error, "dataset block: label out of range");
    }
    for (int a = 0; a < num_attributes; ++a) {
      if (!ReadDoubleBits(payload, &pos, &values[a])) {
        return Fail(error, "dataset block: truncated row");
      }
    }
    out->AddRow(values, static_cast<int>(label));
  }
  return true;
}

BlockDatasetWriter::BlockDatasetWriter(std::ostream& out, const Schema& schema,
                                       int64_t block_size)
    : writer_(out, kBlockKindDataset),
      schema_(schema),
      block_size_(block_size) {
  FOCUS_CHECK_GT(block_size, 0);
  std::string schema_payload;
  EncodeSchemaBlock(schema_, schema_payload);
  writer_.AppendBlock(schema_payload, 0);
}

void BlockDatasetWriter::Add(std::span<const double> values, int label) {
  FOCUS_CHECK(!finished_) << "Add after Finish";
  FOCUS_CHECK_EQ(static_cast<int>(values.size()), schema_.num_attributes());
  FOCUS_CHECK_GE(label, 0);
  if (schema_.num_classes() > 0) {
    FOCUS_CHECK_LT(label, schema_.num_classes());
  } else {
    FOCUS_CHECK_EQ(label, 0);
  }
  const size_t row_bytes_upper = 10 + 8 * static_cast<size_t>(values.size());
  if (!buffer_.empty() &&
      buffer_.size() + row_bytes_upper > static_cast<size_t>(block_size_)) {
    FlushBlock();
  }
  EncodeRow(values, label, buffer_);
  ++buffer_rows_;
  ++num_rows_;
}

void BlockDatasetWriter::FlushBlock() {
  writer_.AppendBlock(buffer_, static_cast<uint64_t>(buffer_rows_));
  buffer_.clear();
  buffer_rows_ = 0;
}

void BlockDatasetWriter::Finish() {
  FOCUS_CHECK(!finished_) << "double Finish";
  finished_ = true;
  if (!buffer_.empty()) FlushBlock();
  const std::array<uint64_t, 1> meta = {static_cast<uint64_t>(num_rows_)};
  writer_.Finish(meta);
}

std::unique_ptr<BlockDataset> BlockDataset::Open(
    std::unique_ptr<std::istream> in, const BlockStoreOptions& options,
    std::string* error) {
  auto fail = [&](const std::string& why) -> std::unique_ptr<BlockDataset> {
    if (error != nullptr) *error = why;
    return nullptr;
  };
  std::unique_ptr<BlockFileReader> reader =
      BlockFileReader::Open(std::move(in), kBlockKindDataset, error);
  if (reader == nullptr) return nullptr;

  const std::span<const uint64_t> meta = reader->file_meta();
  if (meta.size() != 1) return fail("dataset block file: bad file meta arity");
  if (meta[0] >= static_cast<uint64_t>(kMaxRows)) {
    return fail("dataset block file: too many rows");
  }
  const auto num_rows = static_cast<int64_t>(meta[0]);
  if (reader->num_blocks() < 1) {
    return fail("dataset block file: missing schema block");
  }
  if (reader->block_meta(0) != 0) {
    return fail("dataset block file: schema block meta must be zero");
  }

  std::string payload;
  std::string why;
  if (!reader->ReadBlock(0, &payload, &why)) return fail(why);
  Schema schema;
  if (!DecodeSchemaBlock(payload, &schema, &why)) return fail(why);

  std::vector<int64_t> block_first_row;
  block_first_row.reserve(reader->num_blocks());
  block_first_row.push_back(0);
  int64_t total = 0;
  for (int64_t b = 1; b < reader->num_blocks(); ++b) {
    if (!reader->ReadBlock(b, &payload, &why)) return fail(why);
    Dataset decoded(schema);
    if (!DecodeDatasetBlock(payload, schema, &decoded, &why)) {
      return fail(why);
    }
    if (static_cast<uint64_t>(decoded.num_rows()) != reader->block_meta(b)) {
      return fail("dataset block file: block meta row count mismatch");
    }
    total += decoded.num_rows();
    block_first_row.push_back(total);
  }
  if (total != num_rows) {
    return fail("dataset block file: row total mismatch");
  }

  return std::unique_ptr<BlockDataset>(
      new BlockDataset(std::move(reader), options, std::move(schema), num_rows,
                       std::move(block_first_row)));
}

std::unique_ptr<BlockDataset> BlockDataset::OpenFile(
    const std::string& path, const BlockStoreOptions& options,
    std::string* error) {
  std::unique_ptr<std::istream> in = OpenBlockFileForRead(path);
  if (in == nullptr) {
    if (error != nullptr) *error = "dataset block file: cannot open " + path;
    return nullptr;
  }
  return Open(std::move(in), options, error);
}

BlockDataset::~BlockDataset() {
  std::vector<std::future<void>> pending;
  {
    common::MutexLock lock(&mu_);
    pending = std::move(pending_);
  }
  for (std::future<void>& f : pending) f.wait();
}

std::shared_ptr<const Dataset> BlockDataset::FetchBlock(int64_t block) const {
  std::string payload;
  std::string why;
  FOCUS_CHECK(reader_->ReadBlock(block + 1, &payload, &why)) << why;
  auto decoded = std::make_shared<Dataset>(schema_);
  FOCUS_CHECK(DecodeDatasetBlock(payload, schema_, decoded.get(), &why))
      << why;
  const int64_t bytes =
      decoded->num_rows() * (schema_.num_attributes() * 8 + 4) + 64;
  cache_.Put(block, decoded, bytes);
  return decoded;
}

std::shared_ptr<const Dataset> BlockDataset::Block(int64_t block) const {
  FOCUS_CHECK_GE(block, 0);
  FOCUS_CHECK_LT(block, num_blocks());
  if (std::shared_ptr<const Dataset> cached = cache_.Get(block)) {
    return cached;
  }
  return FetchBlock(block);
}

void BlockDataset::Prefetch(int64_t block) const {
  if (options_.pool == nullptr) return;
  FOCUS_CHECK_GE(block, 0);
  FOCUS_CHECK_LT(block, num_blocks());
  common::MutexLock lock(&mu_);
  std::erase_if(pending_, [](std::future<void>& f) {
    return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  });
  if (in_flight_.count(block) != 0) return;
  in_flight_.insert(block);
  pending_.push_back(options_.pool->Submit([this, block] {
    if (cache_.Get(block) == nullptr) FetchBlock(block);
    common::MutexLock inner(&mu_);
    in_flight_.erase(block);
  }));
}

void BlockDataset::SaveTo(std::ostream& out) const {
  BlockFileWriter writer(out, kBlockKindDataset);
  std::string payload;
  EncodeSchemaBlock(schema_, payload);
  writer.AppendBlock(payload, 0);
  ForEachBlock([&](int64_t, const Dataset& block) {
    payload.clear();
    for (int64_t r = 0; r < block.num_rows(); ++r) {
      EncodeRow(block.Row(r), block.Label(r), payload);
    }
    writer.AppendBlock(payload, static_cast<uint64_t>(block.num_rows()));
  });
  const std::array<uint64_t, 1> meta = {static_cast<uint64_t>(num_rows_)};
  writer.Finish(meta);
}

}  // namespace focus::data

#ifndef FOCUS_DATA_DATASET_H_
#define FOCUS_DATA_DATASET_H_

#include <cstdint>
#include <span>
#include <vector>

#include "data/schema.h"

namespace focus::data {

// A dataset D: a finite bag of n-tuples over a Schema (Definition 3.1),
// stored row-major. Categorical values are stored as their integer code
// (cast to double). Each tuple optionally carries a class label.
class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema);

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return labels_.size(); }
  int num_attributes() const { return schema_.num_attributes(); }

  // Value of attribute `attr` in row `row`.
  double At(int64_t row, int attr) const {
    return values_[row * schema_.num_attributes() + attr];
  }

  // The full attribute vector of `row`.
  std::span<const double> Row(int64_t row) const {
    return {values_.data() + row * schema_.num_attributes(),
            static_cast<size_t>(schema_.num_attributes())};
  }

  int Label(int64_t row) const { return labels_[row]; }
  void SetLabel(int64_t row, int label) { labels_[row] = label; }

  // Appends a tuple. `values.size()` must equal num_attributes(); `label`
  // must be in [0, num_classes) (use 0 for unlabeled schemas).
  void AddRow(std::span<const double> values, int label);

  void Reserve(int64_t rows);

  // Concatenates `other` (same schema) onto this dataset; used to model
  // the paper's "D + block" snapshot-growth experiments (Section 7).
  void Append(const Dataset& other);

 private:
  Schema schema_;
  std::vector<double> values_;  // row-major, num_rows * num_attributes
  std::vector<int32_t> labels_;
};

}  // namespace focus::data

#endif  // FOCUS_DATA_DATASET_H_

#include "data/block_store.h"

#include <array>
#include <fstream>
#include <istream>
#include <ostream>

namespace focus::data {
namespace {

constexpr uint32_t kFileMagic = 0x4B4C4246;  // "FBLK" little-endian
constexpr uint32_t kDirMagic = 0x52494446;   // "FDIR"
constexpr uint32_t kEndMagic = 0x444E4546;   // "FEND"
constexpr uint32_t kVersion = 1;

constexpr int64_t kHeaderBytes = 16;
constexpr int64_t kFooterBytes = 16;
constexpr int64_t kDirEntryBytes = 24;  // u64 size, u64 meta, u32 crc, u32 pad
// Sanity caps: hostile directories may claim anything; these bound what a
// loader will even attempt to allocate or iterate.
constexpr uint64_t kMaxBlockBytes = uint64_t{1} << 31;
constexpr uint64_t kMaxBlocks = uint64_t{1} << 32;
constexpr uint64_t kMaxFileMeta = 64;
constexpr int64_t kMaxDirBytes = int64_t{1} << 30;

void AppendLe32(std::string& out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void AppendLe64(std::string& out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint32_t ReadLe32(std::string_view bytes, size_t pos) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<uint8_t>(bytes[pos + i]))
             << (8 * i);
  }
  return value;
}

uint64_t ReadLe64(std::string_view bytes, size_t pos) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<uint8_t>(bytes[pos + i]))
             << (8 * i);
  }
  return value;
}

bool Fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0xEDB88320u : 0u);
      }
      t[i] = crc;
    }
    return t;
  }();
  uint32_t crc = ~seed;
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table[(crc ^ bytes[i]) & 0xff];
  }
  return ~crc;
}

void AppendVarint(std::string& out, uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

bool ReadVarint(std::string_view bytes, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= bytes.size()) return false;
    const auto byte = static_cast<uint8_t>(bytes[(*pos)++]);
    const uint64_t group = byte & 0x7f;
    // The 10th byte may only carry the top bit of a 64-bit value.
    if (shift == 63 && group > 1) return false;
    result |= group << shift;
    if ((byte & 0x80) == 0) {
      // Canonical form: the final group of a multi-byte varint is nonzero.
      if (shift > 0 && group == 0) return false;
      *value = result;
      return true;
    }
  }
  return false;  // unterminated after 10 bytes
}

BlockFileWriter::BlockFileWriter(std::ostream& out, uint32_t kind) : out_(out) {
  std::string header;
  AppendLe32(header, kFileMagic);
  AppendLe32(header, kVersion);
  AppendLe32(header, kind);
  AppendLe32(header, 0);
  out_.write(header.data(), static_cast<std::streamsize>(header.size()));
  bytes_written_ = kHeaderBytes;
}

void BlockFileWriter::AppendBlock(std::string_view payload, uint64_t meta) {
  FOCUS_CHECK(!finished_) << "AppendBlock after Finish";
  FOCUS_CHECK(!payload.empty()) << "empty block payload";
  FOCUS_CHECK_LT(payload.size(), kMaxBlockBytes);
  out_.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  sizes_.push_back(payload.size());
  metas_.push_back(meta);
  crcs_.push_back(Crc32(payload.data(), payload.size()));
  bytes_written_ += static_cast<int64_t>(payload.size());
}

void BlockFileWriter::Finish(std::span<const uint64_t> file_meta) {
  FOCUS_CHECK(!finished_) << "double Finish";
  FOCUS_CHECK_LE(file_meta.size(), kMaxFileMeta);
  finished_ = true;
  const auto dir_offset = static_cast<uint64_t>(bytes_written_);
  std::string dir;
  AppendLe32(dir, kDirMagic);
  AppendLe32(dir, static_cast<uint32_t>(file_meta.size()));
  for (uint64_t meta : file_meta) AppendLe64(dir, meta);
  AppendLe64(dir, static_cast<uint64_t>(sizes_.size()));
  for (size_t i = 0; i < sizes_.size(); ++i) {
    AppendLe64(dir, sizes_[i]);
    AppendLe64(dir, metas_[i]);
    AppendLe32(dir, crcs_[i]);
    AppendLe32(dir, 0);
  }
  std::string footer;
  AppendLe64(footer, dir_offset);
  AppendLe32(footer, Crc32(dir.data(), dir.size()));
  AppendLe32(footer, kEndMagic);
  out_.write(dir.data(), static_cast<std::streamsize>(dir.size()));
  out_.write(footer.data(), static_cast<std::streamsize>(footer.size()));
  bytes_written_ += static_cast<int64_t>(dir.size() + footer.size());
  out_.flush();
}

std::unique_ptr<BlockFileReader> BlockFileReader::Open(
    std::unique_ptr<std::istream> in, uint32_t expected_kind,
    std::string* error) {
  auto fail = [&](const std::string& message) -> std::unique_ptr<BlockFileReader> {
    if (error != nullptr) *error = message;
    return nullptr;
  };
  if (in == nullptr || !*in) return fail("block file: unreadable stream");

  in->seekg(0, std::ios::end);
  if (!*in) return fail("block file: stream not seekable");
  const int64_t file_size = static_cast<int64_t>(in->tellg());
  // Smallest well-formed file: header + empty-meta zero-block directory +
  // footer.
  const int64_t kMinDirBytes = 16;
  if (file_size < kHeaderBytes + kMinDirBytes + kFooterBytes) {
    return fail("block file: truncated (smaller than header + footer)");
  }

  auto read_at = [&](int64_t offset, int64_t size, std::string* out) -> bool {
    out->resize(static_cast<size_t>(size));
    in->clear();
    in->seekg(offset, std::ios::beg);
    in->read(out->data(), size);
    return static_cast<bool>(*in) && in->gcount() == size;
  };

  std::string header;
  if (!read_at(0, kHeaderBytes, &header)) {
    return fail("block file: header read failed");
  }
  if (ReadLe32(header, 0) != kFileMagic) return fail("block file: bad magic");
  if (ReadLe32(header, 4) != kVersion) {
    return fail("block file: unsupported version");
  }
  const uint32_t kind = ReadLe32(header, 8);
  if (kind != expected_kind) return fail("block file: wrong payload kind");
  if (ReadLe32(header, 12) != 0) return fail("block file: nonzero reserved");

  std::string footer;
  if (!read_at(file_size - kFooterBytes, kFooterBytes, &footer)) {
    return fail("block file: footer read failed");
  }
  if (ReadLe32(footer, 12) != kEndMagic) {
    return fail("block file: bad end magic");
  }
  const auto dir_offset = static_cast<int64_t>(ReadLe64(footer, 0));
  const uint32_t dir_crc = ReadLe32(footer, 8);
  if (dir_offset < kHeaderBytes ||
      dir_offset + kMinDirBytes > file_size - kFooterBytes) {
    return fail("block file: directory offset out of range");
  }
  const int64_t dir_bytes = file_size - kFooterBytes - dir_offset;
  if (dir_bytes > kMaxDirBytes) return fail("block file: oversized directory");

  std::string dir;
  if (!read_at(dir_offset, dir_bytes, &dir)) {
    return fail("block file: directory read failed");
  }
  if (Crc32(dir.data(), dir.size()) != dir_crc) {
    return fail("block file: directory checksum mismatch");
  }
  if (ReadLe32(dir, 0) != kDirMagic) {
    return fail("block file: bad directory magic");
  }
  const uint64_t num_file_meta = ReadLe32(dir, 4);
  if (num_file_meta > kMaxFileMeta) {
    return fail("block file: too many file meta words");
  }
  size_t pos = 8;
  if (pos + 8 * num_file_meta + 8 > static_cast<size_t>(dir_bytes)) {
    return fail("block file: directory truncated");
  }
  std::vector<uint64_t> file_meta;
  file_meta.reserve(num_file_meta);
  for (uint64_t i = 0; i < num_file_meta; ++i) {
    file_meta.push_back(ReadLe64(dir, pos));
    pos += 8;
  }
  const uint64_t num_blocks = ReadLe64(dir, pos);
  pos += 8;
  if (num_blocks > kMaxBlocks) return fail("block file: too many blocks");
  if (static_cast<uint64_t>(dir_bytes) !=
      pos + num_blocks * kDirEntryBytes) {
    return fail("block file: directory size mismatch");
  }

  auto reader = std::unique_ptr<BlockFileReader>(new BlockFileReader());
  reader->kind_ = kind;
  reader->file_meta_ = std::move(file_meta);
  reader->sizes_.reserve(num_blocks);
  reader->metas_.reserve(num_blocks);
  reader->crcs_.reserve(num_blocks);
  reader->offsets_.reserve(num_blocks + 1);
  reader->offsets_.push_back(kHeaderBytes);
  uint64_t total = static_cast<uint64_t>(kHeaderBytes);
  for (uint64_t b = 0; b < num_blocks; ++b) {
    const uint64_t size = ReadLe64(dir, pos);
    const uint64_t meta = ReadLe64(dir, pos + 8);
    const uint32_t crc = ReadLe32(dir, pos + 16);
    const uint32_t pad = ReadLe32(dir, pos + 20);
    pos += kDirEntryBytes;
    if (size == 0) return fail("block file: empty block");
    if (size >= kMaxBlockBytes) return fail("block file: oversized block");
    if (pad != 0) return fail("block file: nonzero directory padding");
    total += size;
    if (total > static_cast<uint64_t>(dir_offset)) {
      return fail("block file: blocks overrun directory");
    }
    reader->sizes_.push_back(size);
    reader->metas_.push_back(meta);
    reader->crcs_.push_back(crc);
    reader->offsets_.push_back(static_cast<int64_t>(total));
  }
  if (total != static_cast<uint64_t>(dir_offset)) {
    return fail("block file: gap between blocks and directory");
  }
  reader->in_ = std::move(in);
  return reader;
}

bool BlockFileReader::ReadBlock(int64_t block, std::string* payload,
                                std::string* error) {
  FOCUS_CHECK_GE(block, 0);
  FOCUS_CHECK_LT(block, num_blocks());
  const int64_t size = static_cast<int64_t>(sizes_[block]);
  payload->resize(static_cast<size_t>(size));
  {
    common::MutexLock lock(&io_mu_);
    in_->clear();
    in_->seekg(offsets_[block], std::ios::beg);
    in_->read(payload->data(), size);
    if (!*in_ || in_->gcount() != size) {
      return Fail(error, "block file: block read failed");
    }
  }
  if (Crc32(payload->data(), payload->size()) != crcs_[block]) {
    return Fail(error, "block file: block checksum mismatch");
  }
  return true;
}

std::unique_ptr<std::ostream> OpenBlockFileForWrite(const std::string& path) {
  auto out = std::make_unique<std::ofstream>(
      path, std::ios::binary | std::ios::trunc);
  if (!out->is_open()) return nullptr;
  return out;
}

std::unique_ptr<std::istream> OpenBlockFileForRead(const std::string& path) {
  auto in = std::make_unique<std::ifstream>(path, std::ios::binary);
  if (!in->is_open()) return nullptr;
  return in;
}

}  // namespace focus::data

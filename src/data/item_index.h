#ifndef FOCUS_DATA_ITEM_INDEX_H_
#define FOCUS_DATA_ITEM_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <span>

#include "common/check.h"
#include "data/roaring_index.h"
#include "data/vertical_index.h"

namespace focus::data {

// Which vertical index implementation backs a counting path — the knob
// surfaced by serve::ModelCache and the benches.
enum class IndexBackend {
  kFlat,     // data::VerticalIndex: flat 64-bit TID bitmaps
  kRoaring,  // data::RoaringIndex: array/bitmap/run hybrid containers
};

inline const char* IndexBackendName(IndexBackend backend) {
  return backend == IndexBackend::kFlat ? "flat" : "roaring";
}

// Non-owning reference to EITHER vertical index, exposing the small
// counting concept every consumer (SupportCounter, Apriori, LitsDeviation,
// core::Monitor, serve::ModelCache) actually needs: num_items /
// num_transactions / ItemCount / CountIntersection / CountDifference /
// MemoryBytes. Both backends are bit-identical for these queries (the
// kernel-oracle law enforces it), so callers taking an ItemIndexRef are
// backend-agnostic by construction.
//
// Implicitly constructible from either index (and from pointers, which
// may be null), so existing `f(index)` call sites keep compiling
// unchanged. An empty ref means "no index — use the horizontal path";
// callers must test has_value() before counting through it.
class ItemIndexRef {
 public:
  ItemIndexRef() = default;
  ItemIndexRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  // NOLINTNEXTLINE(google-explicit-constructor)
  ItemIndexRef(const VerticalIndex& index) : flat_(&index) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  ItemIndexRef(const RoaringIndex& index) : roaring_(&index) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  ItemIndexRef(const VerticalIndex* index) : flat_(index) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  ItemIndexRef(const RoaringIndex* index) : roaring_(index) {}

  bool has_value() const { return flat_ != nullptr || roaring_ != nullptr; }
  explicit operator bool() const { return has_value(); }

  IndexBackend backend() const {
    return flat_ != nullptr ? IndexBackend::kFlat : IndexBackend::kRoaring;
  }

  int32_t num_items() const {
    return flat_ != nullptr ? flat_->num_items() : Roaring().num_items();
  }

  int64_t num_transactions() const {
    return flat_ != nullptr ? flat_->num_transactions()
                            : Roaring().num_transactions();
  }

  int64_t ItemCount(int32_t item) const {
    return flat_ != nullptr ? flat_->ItemCount(item)
                            : Roaring().ItemCount(item);
  }

  int64_t CountIntersection(std::span<const int32_t> items) const {
    return flat_ != nullptr ? flat_->CountIntersection(items)
                            : Roaring().CountIntersection(items);
  }

  // Transactions holding all of `items` but not `excluded` (AND-NOT).
  int64_t CountDifference(std::span<const int32_t> items,
                          int32_t excluded) const {
    return flat_ != nullptr ? flat_->CountDifference(items, excluded)
                            : Roaring().CountDifference(items, excluded);
  }

  int64_t MemoryBytes() const {
    return flat_ != nullptr ? flat_->MemoryBytes() : Roaring().MemoryBytes();
  }

 private:
  const RoaringIndex& Roaring() const {
    FOCUS_CHECK(roaring_ != nullptr) << "counting through an empty index ref";
    return *roaring_;
  }

  const VerticalIndex* flat_ = nullptr;
  const RoaringIndex* roaring_ = nullptr;
};

}  // namespace focus::data

#endif  // FOCUS_DATA_ITEM_INDEX_H_

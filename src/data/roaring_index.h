#ifndef FOCUS_DATA_ROARING_INDEX_H_
#define FOCUS_DATA_ROARING_INDEX_H_

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "data/transaction_db.h"
#include "data/txn_source.h"

namespace focus::data {

// Build-time knobs for streaming RoaringIndex construction. The spill path
// bounds the build's working set: staged (item, TID) partition runs go to a
// scratch block file during the scan and containers finalize one item-range
// partition at a time, instead of holding every partition's staging and
// every open chunk live at once. The spilled build produces an index that
// is operator==-identical to the direct build (each item's per-chunk low
// sequence is the same either way) — the laws tests pin it.
struct RoaringBuildOptions {
  enum class Spill {
    kNever,   // direct in-memory staging (the default)
    kAuto,    // spill when a block-backed source looks bigger than budget
    kAlways,  // always spill (tests; requires scratch_path)
  };
  Spill spill = Spill::kNever;
  // kAuto threshold: estimated staged-occurrence footprint above which the
  // build spills. Compared against ~2 bytes per occurrence, approximated
  // from the source's on-disk payload size.
  int64_t spill_budget_bytes = int64_t{256} << 20;
  // Scratch block file path for spilled partition runs; created, then
  // deleted when the build finishes. Must be non-empty to spill.
  std::string scratch_path;
  int64_t scratch_block_size = int64_t{1} << 20;
};

// Compressed vertical index: the Roaring-style array/bitmap/run hybrid.
//
// The flat data::VerticalIndex spends ceil(n/64)*8 bytes per item no
// matter how rare the item is — 119 MiB for 1000 items x 1M transactions
// even though most of a retail catalog appears in a few percent of
// baskets. RoaringIndex splits each item's TID set into 65536-TID chunks
// and stores every non-empty chunk in the cheapest of three encodings:
//
//   * array  — sorted uint16 lows; 2 bytes/TID, for <= 4096 TIDs/chunk
//   * bitmap — 1024 uint64 words (8 KiB flat), once a chunk holds > 4096
//   * run    — (start, length-1) pairs, when the TIDs are contiguous
//              stretches (4 bytes/run)
//
// Promotion picks the smallest encoding at build time, so cost scales
// with occurrences, not with |D|: sparse items pay ~2 bytes per
// occurrence and dense items cap at 8 KiB per chunk. Counting stays
// word-parallel where it matters — chunk intersections between bitmap
// containers run through the same data::simd AND+popcount kernels as the
// flat index — and is BIT-IDENTICAL to both the horizontal scan and the
// flat vertical index (integer counts of the same sets), which
// tests/laws/laws_kernel_oracle_test.cc enforces across every kernel,
// dispatch level, and pool size.
//
// Build is a SINGLE pass over the database: occurrences are staged
// through a splitter-tree radix partitioner (data/splitter_tree.h) into
// item-range buckets so container finalization touches one small item
// range at a time, and per-item counts accumulate during that same pass.
class RoaringIndex {
 public:
  static constexpr int kChunkBits = 16;
  static constexpr int64_t kChunkSize = int64_t{1} << kChunkBits;  // 65536
  static constexpr int64_t kBitmapWords = kChunkSize / 64;         // 1024
  // A chunk with more TIDs than this is promoted from array to bitmap
  // (the break-even point: 4096 * 2 bytes == the 8 KiB bitmap).
  static constexpr int32_t kArrayMaxCardinality = 4096;

  RoaringIndex() = default;
  // One scan of `db` (TransactionDb's sorted-unique invariant required,
  // as for VerticalIndex).
  explicit RoaringIndex(const TransactionDb& db);
  // One scan of either backend; block-backed sources stream with
  // read-ahead. With options.spill engaged, staged partition runs go
  // through a scratch block file (see RoaringBuildOptions) — the result is
  // operator==-identical either way.
  explicit RoaringIndex(TxnSourceRef source,
                        const RoaringBuildOptions& options = {});

  int32_t num_items() const { return static_cast<int32_t>(items_.size()); }
  int64_t num_transactions() const { return num_transactions_; }

  // Absolute occurrence count of a single item (accumulated at build).
  int64_t ItemCount(int32_t item) const { return items_[item].count; }

  // Absolute occurrence count of the itemset `items` (ascending distinct
  // ids in [0, num_items)), bit-identical to the horizontal scan and the
  // flat vertical index. The empty itemset holds in every transaction.
  int64_t CountIntersection(std::span<const int32_t> items) const;

  // Two-item intersect count; ORDER-INDEPENDENT by construction (the
  // container-algebra commutativity law in tests/laws/ checks it), and
  // the k == 2 fast path of CountIntersection.
  int64_t CountPairIntersection(int32_t a, int32_t b) const;

  // Transactions containing every item of `items` but NOT `excluded` —
  // the AND-NOT deviation kernel (regions present in one model's support
  // and absent from the other's). Equals
  // CountIntersection(items) - CountIntersection(items + excluded).
  int64_t CountDifference(std::span<const int32_t> items,
                          int32_t excluded) const;

  // The item's TID set, materialized ascending — the reference view the
  // differential fuzzer and the container-algebra laws compare against.
  std::vector<uint32_t> ItemTids(int32_t item) const;

  // Approximate heap footprint (payloads + container/bookkeeping
  // structures), for the capacity planning the flat index's MemoryBytes
  // feeds today.
  int64_t MemoryBytes() const;

  struct ContainerCounts {
    int64_t arrays = 0;
    int64_t bitmaps = 0;
    int64_t runs = 0;
  };
  ContainerCounts CountContainers() const;

  // Snapshot-spool persistence: a little-endian binary image of every
  // container. Save-load-save is a byte-level fixed point (LoadFrom
  // accepts only the canonical form SaveTo emits), which
  // fuzz/fuzz_roaring.cc pins.
  void SaveTo(std::ostream& out) const;
  static std::optional<RoaringIndex> LoadFrom(std::istream& in,
                                              std::string* error);

  bool operator==(const RoaringIndex& other) const = default;

 private:
  enum class ContainerType : uint8_t { kArray = 0, kBitmap = 1, kRun = 2 };

  struct Container {
    uint16_t key = 0;  // chunk index: TIDs [key << 16, (key + 1) << 16)
    ContainerType type = ContainerType::kArray;
    int32_t cardinality = 0;
    // array: sorted lows. run: (start, length-1) pairs, ascending with
    // at least one absent TID between runs (canonical form).
    std::vector<uint16_t> values;
    std::vector<uint64_t> words;  // bitmap payload (kBitmapWords words)

    bool operator==(const Container& other) const = default;
  };

  struct Item {
    std::vector<Container> containers;  // ascending by key
    int64_t count = 0;

    bool operator==(const Item& other) const = default;
  };

  // Encodes `lows` (ascending uint16 lows of chunk `key`) as the cheapest
  // container and appends it to `item`.
  static void AppendContainer(Item& item, int32_t key,
                              std::span<const uint16_t> lows);

  // Single-pass splitter-tree build, staging in memory.
  void BuildStreaming(const TxnSourceRef& source);
  // Two-phase build: scan spills delta-encoded partition runs to a
  // scratch block file, then containers finalize partition by partition.
  void BuildSpilled(const TxnSourceRef& source,
                    const RoaringBuildOptions& options);

  // Chunk-level counting over k >= 2 containers of one chunk, plus an
  // optional excluded container (AND-NOT).
  static int64_t ChunkIntersectCount(
      std::span<const Container* const> containers, const Container* excluded);
  static bool ContainerContains(const Container& container, uint16_t low);
  // ContainerContains for an ASCENDING probe sequence: `pos` is a cursor
  // the caller zeroes per chunk; array/run lookups advance it monotonically
  // instead of re-searching, so probing a whole chunk is O(card), not
  // O(card log card).
  static bool ContainsFrom(const Container& container, uint16_t low,
                           size_t& pos);
  static void ExpandToBitmap(const Container& container, uint64_t* words);
  static void ExpandToArray(const Container& container,
                            std::vector<uint16_t>& lows);
  static int64_t PairChunkCount(const Container& a, const Container& b);

  // Walks the items' container lists in key order and calls
  // ChunkIntersectCount on every chunk where all of `items` have one.
  int64_t CountOverCommonChunks(std::span<const int32_t> items,
                                const int32_t* excluded) const;

  int64_t num_transactions_ = 0;
  std::vector<Item> items_;
};

}  // namespace focus::data

#endif  // FOCUS_DATA_ROARING_INDEX_H_

#include "data/schema.h"

#include "common/check.h"

namespace focus::data {

Schema::Schema(std::vector<Attribute> attributes, int num_classes)
    : attributes_(std::move(attributes)), num_classes_(num_classes) {
  FOCUS_CHECK_GE(num_classes_, 0);
  for (const Attribute& attr : attributes_) {
    if (attr.type == AttributeType::kCategorical) {
      FOCUS_CHECK_GE(attr.cardinality, 1) << "attribute " << attr.name;
      FOCUS_CHECK_LE(attr.cardinality, 64) << "attribute " << attr.name;
    } else {
      FOCUS_CHECK_LE(attr.min_value, attr.max_value) << "attribute " << attr.name;
    }
  }
}

Attribute Schema::Numeric(std::string name, double min_value, double max_value) {
  Attribute attr;
  attr.name = std::move(name);
  attr.type = AttributeType::kNumeric;
  attr.min_value = min_value;
  attr.max_value = max_value;
  return attr;
}

Attribute Schema::Categorical(std::string name, int cardinality) {
  Attribute attr;
  attr.name = std::move(name);
  attr.type = AttributeType::kCategorical;
  attr.cardinality = cardinality;
  return attr;
}

bool Schema::operator==(const Schema& other) const {
  if (num_classes_ != other.num_classes_) return false;
  if (attributes_.size() != other.attributes_.size()) return false;
  for (size_t i = 0; i < attributes_.size(); ++i) {
    const Attribute& a = attributes_[i];
    const Attribute& b = other.attributes_[i];
    if (a.name != b.name || a.type != b.type) return false;
    if (a.type == AttributeType::kCategorical) {
      if (a.cardinality != b.cardinality) return false;
    } else {
      if (a.min_value != b.min_value || a.max_value != b.max_value) return false;
    }
  }
  return true;
}

}  // namespace focus::data

#ifndef FOCUS_DATA_SPLITTER_TREE_H_
#define FOCUS_DATA_SPLITTER_TREE_H_

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "common/check.h"

namespace focus::data {

// Branch-predictable bucket classifier: a perfect binary tree of splitter
// keys laid out in breadth-first order (index 1 is the root, children of i
// are 2i and 2i+1), the classic sample-sort "tree builder" idiom. The
// descent is a fixed number of data-independent steps
//
//   i = 2*i + (key >= tree[i])
//
// so routing a stream of keys into buckets never mispredicts on the key
// values — this is what the single-pass radix-partitioned RoaringIndex
// build uses to stage (item, tid) occurrences into item-range partitions.
class SplitterTree {
 public:
  // `splitters` must be ascending; Classify returns the number of
  // splitters <= key, i.e. a bucket in [0, splitters.size()].
  explicit SplitterTree(std::span<const int32_t> splitters) {
    num_splitters_ = static_cast<int32_t>(splitters.size());
    levels_ = 0;
    int32_t capacity = 1;  // (2^levels) - 1 splitter slots
    while (capacity - 1 < num_splitters_) {
      capacity *= 2;
      ++levels_;
    }
    // Pad to a perfect tree with +inf sentinels: keys never land right of
    // a sentinel, so padded buckets stay empty.
    tree_.assign(static_cast<size_t>(capacity),
                 std::numeric_limits<int32_t>::max());
    FillSubtree(splitters, /*tree_index=*/1, /*lo=*/0,
                /*hi=*/capacity - 1);
  }

  int32_t num_buckets() const { return num_splitters_ + 1; }

  int32_t Classify(int32_t key) const {
    int32_t i = 1;
    for (int level = 0; level < levels_; ++level) {
      i = 2 * i + static_cast<int32_t>(key >= tree_[static_cast<size_t>(i)]);
    }
    return i - static_cast<int32_t>(tree_.size());
  }

 private:
  // Places the median of the (virtual, sentinel-padded) splitter range at
  // `tree_index`, then recurses — an in-order walk that lands splitter j
  // exactly left of leaf j. `lo`/`hi` index the padded splitter sequence.
  void FillSubtree(std::span<const int32_t> splitters, int32_t tree_index,
                   int32_t lo, int32_t hi) {
    if (lo >= hi) return;
    const int32_t mid = lo + (hi - lo) / 2;
    if (mid < num_splitters_) {
      tree_[static_cast<size_t>(tree_index)] =
          splitters[static_cast<size_t>(mid)];
    }
    FillSubtree(splitters, 2 * tree_index, lo, mid);
    FillSubtree(splitters, 2 * tree_index + 1, mid + 1, hi);
  }

  int32_t num_splitters_ = 0;
  int levels_ = 0;
  std::vector<int32_t> tree_;
};

}  // namespace focus::data

#endif  // FOCUS_DATA_SPLITTER_TREE_H_

#ifndef FOCUS_DATA_TRANSACTION_DB_H_
#define FOCUS_DATA_TRANSACTION_DB_H_

#include <cstdint>
#include <span>
#include <vector>

namespace focus::data {

// A market-basket database: a bag of transactions, each a sorted set of
// distinct item ids in [0, num_items). Backing storage is a single flat
// array with offsets so scans are cache-friendly.
//
// INVARIANT (sorted-unique): every stored transaction is strictly
// ascending — no duplicate items. AddTransaction is the only mutation
// path that adds items and it sorts, dedupes, and range-checks its
// input, so the invariant holds for every database reachable through
// this API (loaders and generators all build via AddTransaction).
// Counting kernels rely on it: SupportCounter's horizontal probe loop
// would double-count a candidate whose anchor item repeated, and
// VerticalIndex's bitmaps would silently collapse duplicates, breaking
// the bit-identical horizontal == vertical contract.
class TransactionDb {
 public:
  explicit TransactionDb(int32_t num_items = 0) : num_items_(num_items) {
    offsets_.push_back(0);
  }

  int32_t num_items() const { return num_items_; }
  int64_t num_transactions() const {
    return static_cast<int64_t>(offsets_.size()) - 1;
  }

  // Items of transaction `t`, sorted ascending, no duplicates.
  std::span<const int32_t> Transaction(int64_t t) const {
    return {items_.data() + offsets_[t],
            static_cast<size_t>(offsets_[t + 1] - offsets_[t])};
  }

  // Appends a transaction. `items` need not be sorted; duplicates are
  // removed. Item ids must be in [0, num_items).
  void AddTransaction(std::span<const int32_t> items);

  // Appends all transactions of `other` (same item universe).
  void Append(const TransactionDb& other);

  void Reserve(int64_t transactions, int64_t total_items);

 private:
  int32_t num_items_;
  std::vector<int32_t> items_;
  std::vector<int64_t> offsets_;
};

}  // namespace focus::data

#endif  // FOCUS_DATA_TRANSACTION_DB_H_

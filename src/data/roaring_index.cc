#include "data/roaring_index.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <istream>
#include <memory>
#include <ostream>
#include <utility>

#include "common/check.h"
#include "data/block_store.h"
#include "data/simd_kernels.h"
#include "data/splitter_tree.h"

namespace focus::data {
namespace {

constexpr uint32_t kMagic = 0x58495246;  // "FRIX" little-endian
constexpr uint32_t kVersion = 1;
constexpr int32_t kMaxItems = 1 << 20;
constexpr int64_t kMaxTransactions = int64_t{1} << 40;
// A run container beats the 8 KiB bitmap only below this many runs
// (4 bytes/run * 2048 == 8192).
constexpr int64_t kRunVsBitmapMax = 2048;
// Above these cardinalities, value-by-value container intersection loses
// to scattering into an 8 KiB scratch bitmap and using bit tests / the
// simd fold. Perf-only thresholds: every path returns the same integers.
constexpr size_t kMergeVsBitmapProbeMax = 512;
constexpr int64_t kProbeVsMaterializeMax = 256;

// Reused per-thread buffers for chunk-level work, so the hot counting
// path never allocates. Thread-local because CountAbsoluteParallel probes
// one index from every pool thread.
struct ChunkScratch {
  std::vector<uint16_t> lows;
  std::vector<uint64_t> acc;
  std::vector<uint64_t> tmp;
  std::vector<const uint64_t*> ptrs;
  std::vector<size_t> pos;
};

ChunkScratch& Scratch() {
  static thread_local ChunkScratch scratch;
  return scratch;
}

void SetBitRange(uint64_t* words, int32_t start, int32_t end) {
  const int32_t first_word = start >> 6;
  const int32_t last_word = end >> 6;
  const uint64_t first_mask = ~uint64_t{0} << (start & 63);
  const uint64_t last_mask = ~uint64_t{0} >> (63 - (end & 63));
  if (first_word == last_word) {
    words[first_word] |= first_mask & last_mask;
    return;
  }
  words[first_word] |= first_mask;
  for (int32_t w = first_word + 1; w < last_word; ++w) words[w] = ~uint64_t{0};
  words[last_word] |= last_mask;
}

int64_t BitmapRangePopcount(const uint64_t* words, int32_t start, int32_t end) {
  const int32_t first_word = start >> 6;
  const int32_t last_word = end >> 6;
  const uint64_t first_mask = ~uint64_t{0} << (start & 63);
  const uint64_t last_mask = ~uint64_t{0} >> (63 - (end & 63));
  if (first_word == last_word) {
    return std::popcount(words[first_word] & first_mask & last_mask);
  }
  int64_t count = std::popcount(words[first_word] & first_mask);
  for (int32_t w = first_word + 1; w < last_word; ++w) {
    count += std::popcount(words[w]);
  }
  return count + std::popcount(words[last_word] & last_mask);
}

// Number of maximal runs in a bitmap: set bits whose predecessor bit is
// clear, carrying the MSB across word boundaries.
int64_t BitmapRunCount(const uint64_t* words, int64_t n) {
  int64_t runs = 0;
  uint64_t carry = 0;  // MSB of the previous word, shifted into bit 0
  for (int64_t w = 0; w < n; ++w) {
    const uint64_t word = words[w];
    runs += std::popcount(word & ~((word << 1) | carry));
    carry = word >> 63;
  }
  return runs;
}

void WriteLe(std::ostream& out, uint64_t value, int bytes) {
  char buffer[8];
  for (int i = 0; i < bytes; ++i) {
    buffer[i] = static_cast<char>(value >> (8 * i));
  }
  out.write(buffer, bytes);
}

bool ReadLe(std::istream& in, int bytes, uint64_t* value) {
  unsigned char buffer[8];
  if (!in.read(reinterpret_cast<char*>(buffer), bytes)) return false;
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(buffer[i]) << (8 * i);
  }
  *value = v;
  return true;
}

// Always true, so reject sites read `if (bad) { if (Fail(...)) return ... }`.
bool Fail(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return true;
}

}  // namespace

void RoaringIndex::AppendContainer(Item& item, int32_t key,
                                   std::span<const uint16_t> lows) {
  const int32_t cardinality = static_cast<int32_t>(lows.size());
  int64_t runs = 1;
  for (size_t i = 1; i < lows.size(); ++i) {
    runs += static_cast<int64_t>(lows[i] != lows[i - 1] + 1);
  }
  Container container;
  container.key = static_cast<uint16_t>(key);
  container.cardinality = cardinality;
  // Pick the smallest encoding: run (4 bytes/run) vs array (2 bytes/TID)
  // when the chunk is array-eligible, run vs the flat 8 KiB bitmap
  // otherwise. Ties keep the simpler array/bitmap form.
  const bool run_wins = cardinality <= kArrayMaxCardinality
                            ? 2 * runs < cardinality
                            : runs < kRunVsBitmapMax;
  if (run_wins) {
    container.type = ContainerType::kRun;
    container.values.reserve(static_cast<size_t>(2 * runs));
    uint16_t start = lows[0];
    uint16_t prev = lows[0];
    for (size_t i = 1; i < lows.size(); ++i) {
      if (lows[i] != prev + 1) {
        container.values.push_back(start);
        container.values.push_back(static_cast<uint16_t>(prev - start));
        start = lows[i];
      }
      prev = lows[i];
    }
    container.values.push_back(start);
    container.values.push_back(static_cast<uint16_t>(prev - start));
  } else if (cardinality <= kArrayMaxCardinality) {
    container.type = ContainerType::kArray;
    container.values.assign(lows.begin(), lows.end());
  } else {
    container.type = ContainerType::kBitmap;
    container.words.assign(static_cast<size_t>(kBitmapWords), 0);
    for (uint16_t low : lows) {
      container.words[low >> 6] |= uint64_t{1} << (low & 63);
    }
  }
  item.count += cardinality;
  item.containers.push_back(std::move(container));
}

RoaringIndex::RoaringIndex(const TransactionDb& db)
    : RoaringIndex(TxnSourceRef(db)) {}

RoaringIndex::RoaringIndex(TxnSourceRef source,
                           const RoaringBuildOptions& options)
    : num_transactions_(source.num_transactions()),
      items_(static_cast<size_t>(source.num_items())) {
  if (source.num_items() == 0) return;
  bool spill = false;
  switch (options.spill) {
    case RoaringBuildOptions::Spill::kNever:
      break;
    case RoaringBuildOptions::Spill::kAlways:
      spill = true;
      break;
    case RoaringBuildOptions::Spill::kAuto:
      // ~2 bytes of staged footprint per occurrence, and the canonical
      // txn codec spends 1-2 bytes per occurrence on disk, so twice the
      // payload size approximates the direct build's working set.
      spill = source.backend() == TxnBackend::kBlock &&
              !options.scratch_path.empty() &&
              source.block()->TotalPayloadBytes() * 2 >
                  options.spill_budget_bytes;
      break;
  }
  if (spill) {
    FOCUS_CHECK(!options.scratch_path.empty())
        << "RoaringIndex spill build requires a scratch_path";
    BuildSpilled(source, options);
  } else {
    BuildStreaming(source);
  }
}

void RoaringIndex::BuildStreaming(const TxnSourceRef& source) {
  const auto num_items = static_cast<int32_t>(items_.size());

  // Per-item chunk under construction. The scan visits TIDs in ascending
  // order, so once an occurrence lands past an item's open chunk that
  // chunk is complete and can be encoded immediately — containers
  // finalize DURING the single pass, and per-item counts accumulate in
  // AppendContainer as part of it.
  struct OpenChunk {
    int32_t key = -1;
    std::vector<uint16_t> lows;
  };
  std::vector<OpenChunk> open(static_cast<size_t>(num_items));

  // Route occurrences through a splitter tree into item-range partitions
  // and flush a partition's staging buffer when it fills: each flush then
  // touches only one contiguous slice of `open`, instead of striding the
  // whole item table on every transaction.
  const int32_t partitions = std::clamp(num_items / 64, 1, 64);
  std::vector<int32_t> splitters;
  splitters.reserve(static_cast<size_t>(partitions - 1));
  for (int32_t p = 1; p < partitions; ++p) {
    splitters.push_back(p * num_items / partitions);
  }
  const SplitterTree tree(splitters);

  constexpr size_t kStageCapacity = 4096;
  std::vector<std::vector<std::pair<int32_t, uint32_t>>> stage(
      static_cast<size_t>(partitions));
  for (auto& buffer : stage) buffer.reserve(kStageCapacity);

  const auto flush = [&](int32_t partition) {
    for (const auto& [item, tid] : stage[static_cast<size_t>(partition)]) {
      OpenChunk& chunk = open[static_cast<size_t>(item)];
      const int32_t key = static_cast<int32_t>(tid >> kChunkBits);
      if (key != chunk.key) {
        if (!chunk.lows.empty()) {
          AppendContainer(items_[static_cast<size_t>(item)], chunk.key,
                          chunk.lows);
          chunk.lows.clear();
        }
        chunk.key = key;
      }
      chunk.lows.push_back(static_cast<uint16_t>(tid & (kChunkSize - 1)));
    }
    stage[static_cast<size_t>(partition)].clear();
  };

  source.ForEachTransaction([&](int64_t t, std::span<const int32_t> txn) {
    for (int32_t item : txn) {
      const int32_t partition = tree.Classify(item);
      auto& buffer = stage[static_cast<size_t>(partition)];
      buffer.emplace_back(item, static_cast<uint32_t>(t));
      if (buffer.size() == kStageCapacity) flush(partition);
    }
  });
  for (int32_t partition = 0; partition < partitions; ++partition) {
    flush(partition);
  }
  for (int32_t item = 0; item < num_items; ++item) {
    OpenChunk& chunk = open[static_cast<size_t>(item)];
    if (!chunk.lows.empty()) {
      AppendContainer(items_[static_cast<size_t>(item)], chunk.key,
                      chunk.lows);
    }
  }
}

void RoaringIndex::BuildSpilled(const TxnSourceRef& source,
                                const RoaringBuildOptions& options) {
  const auto num_items = static_cast<int32_t>(items_.size());
  const int32_t partitions = std::clamp(num_items / 64, 1, 64);
  std::vector<int32_t> bounds;
  bounds.reserve(static_cast<size_t>(partitions) + 1);
  bounds.push_back(0);
  for (int32_t p = 1; p < partitions; ++p) {
    bounds.push_back(p * num_items / partitions);
  }
  bounds.push_back(num_items);
  const std::vector<int32_t> splitters(bounds.begin() + 1, bounds.end() - 1);
  const SplitterTree tree(splitters);

  // Phase 1 — scan: every occurrence is routed to its item-range
  // partition and appended to that partition's spill run as
  // (varint item-offset, varint TID-delta). TIDs ascend globally, so each
  // partition's concatenated runs form one non-decreasing TID stream; the
  // delta chain crosses spill-block boundaries within a partition.
  {
    std::unique_ptr<std::ostream> out =
        OpenBlockFileForWrite(options.scratch_path);
    FOCUS_CHECK(out != nullptr)
        << "cannot create spill scratch " << options.scratch_path;
    BlockFileWriter writer(*out, kBlockKindScratch);
    std::vector<std::string> run(static_cast<size_t>(partitions));
    std::vector<uint32_t> last_tid(static_cast<size_t>(partitions), 0);
    const auto flush_run = [&](int32_t p) {
      writer.AppendBlock(run[static_cast<size_t>(p)],
                         static_cast<uint64_t>(p));
      run[static_cast<size_t>(p)].clear();
    };
    source.ForEachTransaction([&](int64_t t, std::span<const int32_t> txn) {
      for (int32_t item : txn) {
        const int32_t p = tree.Classify(item);
        std::string& buffer = run[static_cast<size_t>(p)];
        AppendVarint(buffer, static_cast<uint64_t>(item - bounds[p]));
        AppendVarint(buffer, static_cast<uint64_t>(t) -
                                 last_tid[static_cast<size_t>(p)]);
        last_tid[static_cast<size_t>(p)] = static_cast<uint32_t>(t);
        if (static_cast<int64_t>(buffer.size()) >=
            options.scratch_block_size) {
          flush_run(p);
        }
      }
    });
    for (int32_t p = 0; p < partitions; ++p) {
      if (!run[static_cast<size_t>(p)].empty()) flush_run(p);
    }
    writer.Finish(std::span<const uint64_t>());
  }

  // Phase 2 — finalize partition by partition: only one partition's open
  // chunks are live at a time, so the working set above the final index
  // is one item-range wide no matter how large the dataset is.
  std::string error;
  std::unique_ptr<std::istream> in =
      OpenBlockFileForRead(options.scratch_path);
  FOCUS_CHECK(in != nullptr) << "cannot reopen spill scratch";
  std::unique_ptr<BlockFileReader> reader =
      BlockFileReader::Open(std::move(in), kBlockKindScratch, &error);
  FOCUS_CHECK(reader != nullptr) << error;
  std::vector<std::vector<int64_t>> blocks_of(
      static_cast<size_t>(partitions));
  for (int64_t b = 0; b < reader->num_blocks(); ++b) {
    const uint64_t p = reader->block_meta(b);
    FOCUS_CHECK_LT(p, static_cast<uint64_t>(partitions));
    blocks_of[static_cast<size_t>(p)].push_back(b);
  }
  struct OpenChunk {
    int32_t key = -1;
    std::vector<uint16_t> lows;
  };
  std::string payload;
  for (int32_t p = 0; p < partitions; ++p) {
    std::vector<OpenChunk> open(
        static_cast<size_t>(bounds[p + 1] - bounds[p]));
    uint32_t tid = 0;
    for (int64_t b : blocks_of[static_cast<size_t>(p)]) {
      FOCUS_CHECK(reader->ReadBlock(b, &payload, &error)) << error;
      size_t pos = 0;
      while (pos < payload.size()) {
        uint64_t item_offset = 0;
        uint64_t delta = 0;
        FOCUS_CHECK(ReadVarint(payload, &pos, &item_offset));
        FOCUS_CHECK(ReadVarint(payload, &pos, &delta));
        tid += static_cast<uint32_t>(delta);
        const int32_t item = bounds[p] + static_cast<int32_t>(item_offset);
        OpenChunk& chunk = open[static_cast<size_t>(item_offset)];
        const int32_t key = static_cast<int32_t>(tid >> kChunkBits);
        if (key != chunk.key) {
          if (!chunk.lows.empty()) {
            AppendContainer(items_[static_cast<size_t>(item)], chunk.key,
                            chunk.lows);
            chunk.lows.clear();
          }
          chunk.key = key;
        }
        chunk.lows.push_back(static_cast<uint16_t>(tid & (kChunkSize - 1)));
      }
    }
    for (size_t i = 0; i < open.size(); ++i) {
      if (!open[i].lows.empty()) {
        AppendContainer(items_[static_cast<size_t>(bounds[p]) + i],
                        open[i].key, open[i].lows);
      }
    }
  }
  reader.reset();
  std::remove(options.scratch_path.c_str());
}

bool RoaringIndex::ContainerContains(const Container& container, uint16_t low) {
  switch (container.type) {
    case ContainerType::kArray:
      return std::binary_search(container.values.begin(),
                                container.values.end(), low);
    case ContainerType::kBitmap:
      return (container.words[low >> 6] >> (low & 63)) & 1;
    case ContainerType::kRun: {
      // Last run whose start is <= low, then check its end.
      size_t lo = 0;
      size_t hi = container.values.size() / 2;
      while (lo < hi) {
        const size_t mid = lo + (hi - lo) / 2;
        if (container.values[2 * mid] <= low) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo == 0) return false;
      const uint16_t start = container.values[2 * (lo - 1)];
      const uint16_t length_minus_1 = container.values[2 * (lo - 1) + 1];
      return low <= static_cast<uint32_t>(start) + length_minus_1;
    }
  }
  return false;
}

bool RoaringIndex::ContainsFrom(const Container& container, uint16_t low,
                                size_t& pos) {
  switch (container.type) {
    case ContainerType::kArray:
      while (pos < container.values.size() && container.values[pos] < low) {
        ++pos;
      }
      return pos < container.values.size() && container.values[pos] == low;
    case ContainerType::kBitmap:
      return (container.words[low >> 6] >> (low & 63)) & 1;
    case ContainerType::kRun:
      while (pos + 1 < container.values.size() &&
             static_cast<uint32_t>(container.values[pos]) +
                     container.values[pos + 1] <
                 low) {
        pos += 2;
      }
      return pos + 1 < container.values.size() &&
             container.values[pos] <= low;
  }
  return false;
}

void RoaringIndex::ExpandToBitmap(const Container& container, uint64_t* words) {
  switch (container.type) {
    case ContainerType::kBitmap:
      std::copy(container.words.begin(), container.words.end(), words);
      return;
    case ContainerType::kArray:
      std::fill(words, words + kBitmapWords, 0);
      for (uint16_t low : container.values) {
        words[low >> 6] |= uint64_t{1} << (low & 63);
      }
      return;
    case ContainerType::kRun:
      std::fill(words, words + kBitmapWords, 0);
      for (size_t r = 0; r + 1 < container.values.size(); r += 2) {
        const int32_t start = container.values[r];
        SetBitRange(words, start, start + container.values[r + 1]);
      }
      return;
  }
}

void RoaringIndex::ExpandToArray(const Container& container,
                                 std::vector<uint16_t>& lows) {
  lows.reserve(lows.size() + static_cast<size_t>(container.cardinality));
  switch (container.type) {
    case ContainerType::kArray:
      lows.insert(lows.end(), container.values.begin(),
                  container.values.end());
      return;
    case ContainerType::kBitmap:
      for (int64_t w = 0; w < kBitmapWords; ++w) {
        uint64_t word = container.words[static_cast<size_t>(w)];
        while (word != 0) {
          lows.push_back(
              static_cast<uint16_t>(w * 64 + std::countr_zero(word)));
          word &= word - 1;
        }
      }
      return;
    case ContainerType::kRun:
      for (size_t r = 0; r + 1 < container.values.size(); r += 2) {
        const uint32_t start = container.values[r];
        const uint32_t end = start + container.values[r + 1];
        for (uint32_t low = start; low <= end; ++low) {
          lows.push_back(static_cast<uint16_t>(low));
        }
      }
      return;
  }
}

int64_t RoaringIndex::PairChunkCount(const Container& a, const Container& b) {
  // Normalize so the dispatch matrix below only names each unordered type
  // pair once — which also makes the pair count order-independent by
  // construction.
  const Container* x = &a;
  const Container* y = &b;
  if (static_cast<int>(x->type) > static_cast<int>(y->type)) std::swap(x, y);
  if (x->type == ContainerType::kArray) {
    if (y->type == ContainerType::kArray) {
      if (std::min(x->values.size(), y->values.size()) >
          kMergeVsBitmapProbeMax) {
        // Two big arrays: a value-by-value merge is loop-carried and
        // mispredict-bound, so spend O(card_x) scattering x into a scratch
        // bitmap and probe y with O(1) bit tests instead.
        ChunkScratch& scratch = Scratch();
        scratch.tmp.assign(static_cast<size_t>(kBitmapWords), 0);
        for (uint16_t low : x->values) {
          scratch.tmp[low >> 6] |= uint64_t{1} << (low & 63);
        }
        int64_t count = 0;
        for (uint16_t low : y->values) {
          count += (scratch.tmp[low >> 6] >> (low & 63)) & 1;
        }
        return count;
      }
      // Small arrays: sorted two-pointer merge, branchless — near-equal
      // cardinalities make the three-way branch unpredictable.
      int64_t count = 0;
      size_t i = 0;
      size_t j = 0;
      const size_t nx = x->values.size();
      const size_t ny = y->values.size();
      while (i < nx && j < ny) {
        const uint16_t vx = x->values[i];
        const uint16_t vy = y->values[j];
        count += (vx == vy);
        i += (vx <= vy);
        j += (vy <= vx);
      }
      return count;
    }
    // Array probes bitmap bits / run ranges.
    if (y->type == ContainerType::kBitmap) {
      int64_t count = 0;
      for (uint16_t low : x->values) {
        count += (y->words[low >> 6] >> (low & 63)) & 1;
      }
      return count;
    }
    // Array vs run: advance the run cursor alongside the sorted values.
    int64_t count = 0;
    size_t r = 0;
    for (uint16_t low : x->values) {
      while (r + 1 < y->values.size() &&
             static_cast<uint32_t>(y->values[r]) + y->values[r + 1] < low) {
        r += 2;
      }
      if (r + 1 >= y->values.size()) break;
      count += static_cast<int64_t>(y->values[r] <= low);
    }
    return count;
  }
  if (x->type == ContainerType::kBitmap) {
    if (y->type == ContainerType::kBitmap) {
      return simd::AndPopcountWords(x->words.data(), y->words.data(),
                                    kBitmapWords);
    }
    // Bitmap vs run: masked popcount per run range.
    int64_t count = 0;
    for (size_t r = 0; r + 1 < y->values.size(); r += 2) {
      const int32_t start = y->values[r];
      count += BitmapRangePopcount(x->words.data(), start,
                                   start + y->values[r + 1]);
    }
    return count;
  }
  // Run vs run: overlap lengths of the two ascending interval lists.
  int64_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i + 1 < x->values.size() && j + 1 < y->values.size()) {
    const int32_t start_a = x->values[i];
    const int32_t end_a = start_a + x->values[i + 1];
    const int32_t start_b = y->values[j];
    const int32_t end_b = start_b + y->values[j + 1];
    const int32_t overlap =
        std::min(end_a, end_b) - std::max(start_a, start_b) + 1;
    if (overlap > 0) count += overlap;
    if (end_a < end_b) {
      i += 2;
    } else {
      j += 2;
    }
  }
  return count;
}

int64_t RoaringIndex::ChunkIntersectCount(
    std::span<const Container* const> containers, const Container* excluded) {
  if (containers.size() == 1 && excluded == nullptr) {
    return containers[0]->cardinality;
  }
  if (containers.size() == 2 && excluded == nullptr) {
    return PairChunkCount(*containers[0], *containers[1]);
  }
  const Container* smallest = containers[0];
  bool all_bitmap = excluded == nullptr ||
                    excluded->type == ContainerType::kBitmap;
  for (const Container* container : containers) {
    if (container->cardinality < smallest->cardinality) smallest = container;
    all_bitmap = all_bitmap && container->type == ContainerType::kBitmap;
  }
  ChunkScratch& scratch = Scratch();
  if (all_bitmap) {
    // Every member is a bitmap: the fused k-way kernel the flat index
    // uses — one read-only pass, no scratch stores.
    scratch.ptrs.clear();
    for (const Container* container : containers) {
      scratch.ptrs.push_back(container->words.data());
    }
    return simd::IntersectPopcountWords(
        scratch.ptrs.data(), static_cast<int>(scratch.ptrs.size()),
        excluded == nullptr ? nullptr : excluded->words.data(), kBitmapWords);
  }
  if (smallest->cardinality <= kProbeVsMaterializeMax) {
    // Truly sparse chunk: probe the smallest container's TIDs into the
    // rest. Probes ascend, so each non-bitmap member gets a monotone
    // cursor and the whole chunk costs O(sum of cardinalities).
    std::span<const uint16_t> lows;
    if (smallest->type == ContainerType::kArray) {
      lows = smallest->values;
    } else {
      scratch.lows.clear();
      ExpandToArray(*smallest, scratch.lows);
      lows = scratch.lows;
    }
    scratch.pos.assign(containers.size() + 1, 0);
    int64_t count = 0;
    for (uint16_t low : lows) {
      bool in_all = true;
      for (size_t m = 0; m < containers.size(); ++m) {
        if (containers[m] == smallest) continue;
        if (!ContainsFrom(*containers[m], low, scratch.pos[m])) {
          in_all = false;
          break;
        }
      }
      if (in_all && (excluded == nullptr ||
                     !ContainsFrom(*excluded, low,
                                   scratch.pos[containers.size()]))) {
        ++count;
      }
    }
    return count;
  }
  // Mixed/dense chunk: expand members to 8 KiB bitmaps and fold through
  // the dispatched simd kernels exactly like the flat index. Expansion is
  // O(cardinality) per member, cheaper than value-wise intersection once
  // cardinalities pass kProbeVsMaterializeMax.
  scratch.acc.resize(static_cast<size_t>(kBitmapWords));
  scratch.tmp.resize(static_cast<size_t>(kBitmapWords));
  ExpandToBitmap(*containers[0], scratch.acc.data());
  for (size_t m = 1; m < containers.size(); ++m) {
    if (containers[m]->type == ContainerType::kBitmap) {
      simd::AndWordsInPlace(scratch.acc.data(), containers[m]->words.data(),
                            kBitmapWords);
    } else {
      ExpandToBitmap(*containers[m], scratch.tmp.data());
      simd::AndWordsInPlace(scratch.acc.data(), scratch.tmp.data(),
                            kBitmapWords);
    }
  }
  if (excluded == nullptr) {
    return simd::PopcountWords(scratch.acc.data(), kBitmapWords);
  }
  if (excluded->type == ContainerType::kBitmap) {
    return simd::AndNotPopcountWords(scratch.acc.data(),
                                     excluded->words.data(), kBitmapWords);
  }
  ExpandToBitmap(*excluded, scratch.tmp.data());
  return simd::AndNotPopcountWords(scratch.acc.data(), scratch.tmp.data(),
                                   kBitmapWords);
}

int64_t RoaringIndex::CountOverCommonChunks(std::span<const int32_t> items,
                                            const int32_t* excluded) const {
  // Drive the chunk walk from the member with the fewest containers; the
  // other cursors only ever move forward.
  size_t driver = 0;
  for (size_t m = 1; m < items.size(); ++m) {
    if (items_[static_cast<size_t>(items[m])].containers.size() <
        items_[static_cast<size_t>(items[driver])].containers.size()) {
      driver = m;
    }
  }
  const std::vector<Container>* excluded_containers =
      excluded == nullptr
          ? nullptr
          : &items_[static_cast<size_t>(*excluded)].containers;
  std::vector<const Container*> chunk(items.size());
  std::vector<size_t> cursor(items.size(), 0);
  size_t excluded_cursor = 0;
  int64_t total = 0;
  for (const Container& driver_container :
       items_[static_cast<size_t>(items[driver])].containers) {
    const uint16_t key = driver_container.key;
    bool in_all = true;
    for (size_t m = 0; m < items.size(); ++m) {
      if (m == driver) {
        chunk[m] = &driver_container;
        continue;
      }
      const std::vector<Container>& containers =
          items_[static_cast<size_t>(items[m])].containers;
      size_t& pos = cursor[m];
      while (pos < containers.size() && containers[pos].key < key) ++pos;
      if (pos == containers.size() || containers[pos].key != key) {
        in_all = false;
        break;
      }
      chunk[m] = &containers[pos];
    }
    if (!in_all) continue;
    const Container* excluded_container = nullptr;
    if (excluded_containers != nullptr) {
      while (excluded_cursor < excluded_containers->size() &&
             (*excluded_containers)[excluded_cursor].key < key) {
        ++excluded_cursor;
      }
      if (excluded_cursor < excluded_containers->size() &&
          (*excluded_containers)[excluded_cursor].key == key) {
        excluded_container = &(*excluded_containers)[excluded_cursor];
      }
    }
    total += ChunkIntersectCount(chunk, excluded_container);
  }
  return total;
}

int64_t RoaringIndex::CountIntersection(std::span<const int32_t> items) const {
  if (items.empty()) return num_transactions_;
  if (items.size() == 1) return items_[static_cast<size_t>(items[0])].count;
  return CountOverCommonChunks(items, nullptr);
}

int64_t RoaringIndex::CountPairIntersection(int32_t a, int32_t b) const {
  const int32_t pair[2] = {a, b};
  return CountOverCommonChunks(pair, nullptr);
}

int64_t RoaringIndex::CountDifference(std::span<const int32_t> items,
                                      int32_t excluded) const {
  if (items.empty()) {
    return num_transactions_ - items_[static_cast<size_t>(excluded)].count;
  }
  return CountOverCommonChunks(items, &excluded);
}

std::vector<uint32_t> RoaringIndex::ItemTids(int32_t item) const {
  std::vector<uint32_t> tids;
  tids.reserve(static_cast<size_t>(items_[static_cast<size_t>(item)].count));
  std::vector<uint16_t> lows;
  for (const Container& container :
       items_[static_cast<size_t>(item)].containers) {
    lows.clear();
    ExpandToArray(container, lows);
    const uint32_t base = static_cast<uint32_t>(container.key) << kChunkBits;
    for (uint16_t low : lows) tids.push_back(base | low);
  }
  return tids;
}

int64_t RoaringIndex::MemoryBytes() const {
  int64_t bytes = static_cast<int64_t>(sizeof(RoaringIndex)) +
                  static_cast<int64_t>(items_.capacity() * sizeof(Item));
  for (const Item& item : items_) {
    bytes +=
        static_cast<int64_t>(item.containers.capacity() * sizeof(Container));
    for (const Container& container : item.containers) {
      bytes += static_cast<int64_t>(container.values.capacity()) * 2 +
               static_cast<int64_t>(container.words.capacity()) * 8;
    }
  }
  return bytes;
}

RoaringIndex::ContainerCounts RoaringIndex::CountContainers() const {
  ContainerCounts counts;
  for (const Item& item : items_) {
    for (const Container& container : item.containers) {
      switch (container.type) {
        case ContainerType::kArray:
          ++counts.arrays;
          break;
        case ContainerType::kBitmap:
          ++counts.bitmaps;
          break;
        case ContainerType::kRun:
          ++counts.runs;
          break;
      }
    }
  }
  return counts;
}

void RoaringIndex::SaveTo(std::ostream& out) const {
  WriteLe(out, kMagic, 4);
  WriteLe(out, kVersion, 4);
  WriteLe(out, static_cast<uint32_t>(items_.size()), 4);
  WriteLe(out, static_cast<uint64_t>(num_transactions_), 8);
  for (const Item& item : items_) {
    WriteLe(out, static_cast<uint32_t>(item.containers.size()), 4);
    for (const Container& container : item.containers) {
      WriteLe(out, container.key, 2);
      WriteLe(out, static_cast<uint8_t>(container.type), 1);
      WriteLe(out, static_cast<uint32_t>(container.cardinality), 4);
      switch (container.type) {
        case ContainerType::kArray:
          for (uint16_t low : container.values) WriteLe(out, low, 2);
          break;
        case ContainerType::kBitmap:
          for (uint64_t word : container.words) WriteLe(out, word, 8);
          break;
        case ContainerType::kRun:
          WriteLe(out, static_cast<uint32_t>(container.values.size() / 2), 4);
          for (uint16_t value : container.values) WriteLe(out, value, 2);
          break;
      }
    }
  }
}

std::optional<RoaringIndex> RoaringIndex::LoadFrom(std::istream& in,
                                                   std::string* error) {
  // Hostile-input discipline: every length is bounded before use, every
  // ordering invariant the counting kernels rely on is re-checked, and
  // only the canonical encoding SaveTo emits is accepted — which is what
  // makes save(load(bytes)) a byte-level fixed point.
  uint64_t magic = 0;
  uint64_t version = 0;
  uint64_t raw_items = 0;
  uint64_t raw_transactions = 0;
  if (!ReadLe(in, 4, &magic) || magic != kMagic) {
    if (Fail(error, "bad magic")) return std::nullopt;
  }
  if (!ReadLe(in, 4, &version) || version != kVersion) {
    if (Fail(error, "unsupported version")) return std::nullopt;
  }
  if (!ReadLe(in, 4, &raw_items) || raw_items > kMaxItems) {
    if (Fail(error, "bad item count")) return std::nullopt;
  }
  if (!ReadLe(in, 8, &raw_transactions) ||
      raw_transactions > static_cast<uint64_t>(kMaxTransactions)) {
    if (Fail(error, "bad transaction count")) return std::nullopt;
  }
  RoaringIndex index;
  index.num_transactions_ = static_cast<int64_t>(raw_transactions);
  index.items_.resize(raw_items);
  const uint64_t max_chunks =
      (raw_transactions + kChunkSize - 1) / static_cast<uint64_t>(kChunkSize);
  for (Item& item : index.items_) {
    uint64_t num_containers = 0;
    if (!ReadLe(in, 4, &num_containers) || num_containers > max_chunks) {
      if (Fail(error, "bad container count")) return std::nullopt;
    }
    item.containers.reserve(num_containers);
    int64_t previous_key = -1;
    for (uint64_t c = 0; c < num_containers; ++c) {
      uint64_t key = 0;
      uint64_t type = 0;
      uint64_t cardinality = 0;
      if (!ReadLe(in, 2, &key) || static_cast<int64_t>(key) <= previous_key ||
          key >= max_chunks) {
        if (Fail(error, "container keys not ascending")) return std::nullopt;
      }
      previous_key = static_cast<int64_t>(key);
      if (!ReadLe(in, 1, &type) || type > 2) {
        if (Fail(error, "bad container type")) return std::nullopt;
      }
      if (!ReadLe(in, 4, &cardinality) || cardinality == 0 ||
          cardinality > static_cast<uint64_t>(kChunkSize)) {
        if (Fail(error, "bad cardinality")) return std::nullopt;
      }
      Container container;
      container.key = static_cast<uint16_t>(key);
      container.type = static_cast<ContainerType>(type);
      container.cardinality = static_cast<int32_t>(cardinality);
      int64_t runs = 0;
      int64_t max_low = -1;
      switch (container.type) {
        case ContainerType::kArray: {
          if (cardinality > static_cast<uint64_t>(kArrayMaxCardinality)) {
            if (Fail(error, "array container too large")) return std::nullopt;
          }
          container.values.reserve(cardinality);
          // previous = -2 so the first value always opens a run.
          int64_t previous = -2;
          runs = 0;
          for (uint64_t i = 0; i < cardinality; ++i) {
            uint64_t low = 0;
            if (!ReadLe(in, 2, &low) ||
                static_cast<int64_t>(low) <= previous) {
              if (Fail(error, "array values not ascending")) {
                return std::nullopt;
              }
            }
            runs += static_cast<int64_t>(static_cast<int64_t>(low) !=
                                         previous + 1);
            previous = static_cast<int64_t>(low);
            container.values.push_back(static_cast<uint16_t>(low));
          }
          max_low = previous;
          if (2 * runs < static_cast<int64_t>(cardinality)) {
            if (Fail(error, "non-canonical array (run form is smaller)")) {
              return std::nullopt;
            }
          }
          break;
        }
        case ContainerType::kBitmap: {
          if (cardinality <= static_cast<uint64_t>(kArrayMaxCardinality)) {
            if (Fail(error, "non-canonical bitmap (array-sized)")) {
              return std::nullopt;
            }
          }
          container.words.resize(static_cast<size_t>(kBitmapWords));
          for (int64_t w = 0; w < kBitmapWords; ++w) {
            uint64_t word = 0;
            if (!ReadLe(in, 8, &word)) {
              if (Fail(error, "truncated bitmap")) return std::nullopt;
            }
            container.words[static_cast<size_t>(w)] = word;
          }
          if (simd::PopcountWords(container.words.data(), kBitmapWords) !=
              static_cast<int64_t>(cardinality)) {
            if (Fail(error, "bitmap cardinality mismatch")) {
              return std::nullopt;
            }
          }
          runs = BitmapRunCount(container.words.data(), kBitmapWords);
          if (runs < kRunVsBitmapMax) {
            if (Fail(error, "non-canonical bitmap (run form is smaller)")) {
              return std::nullopt;
            }
          }
          for (int64_t w = kBitmapWords - 1; w >= 0; --w) {
            const uint64_t word = container.words[static_cast<size_t>(w)];
            if (word != 0) {
              max_low = w * 64 + (63 - std::countl_zero(word));
              break;
            }
          }
          break;
        }
        case ContainerType::kRun: {
          uint64_t num_runs = 0;
          if (!ReadLe(in, 4, &num_runs) || num_runs == 0 ||
              num_runs > static_cast<uint64_t>(kChunkSize) / 2) {
            if (Fail(error, "bad run count")) return std::nullopt;
          }
          container.values.reserve(2 * num_runs);
          int64_t previous_end = -2;
          int64_t total = 0;
          for (uint64_t r = 0; r < num_runs; ++r) {
            uint64_t start = 0;
            uint64_t length_minus_1 = 0;
            if (!ReadLe(in, 2, &start) || !ReadLe(in, 2, &length_minus_1)) {
              if (Fail(error, "truncated run")) return std::nullopt;
            }
            // Canonical runs are ascending with a gap (adjacent runs
            // would have been merged at build time).
            if (static_cast<int64_t>(start) < previous_end + 2) {
              if (Fail(error, "runs overlap or touch")) return std::nullopt;
            }
            const int64_t end =
                static_cast<int64_t>(start + length_minus_1);
            if (end >= kChunkSize) {
              if (Fail(error, "run past chunk end")) return std::nullopt;
            }
            previous_end = end;
            total += static_cast<int64_t>(length_minus_1) + 1;
            container.values.push_back(static_cast<uint16_t>(start));
            container.values.push_back(
                static_cast<uint16_t>(length_minus_1));
          }
          max_low = previous_end;
          if (total != static_cast<int64_t>(cardinality)) {
            if (Fail(error, "run cardinality mismatch")) return std::nullopt;
          }
          runs = static_cast<int64_t>(num_runs);
          const bool run_wins =
              static_cast<int64_t>(cardinality) <= kArrayMaxCardinality
                  ? 2 * runs < static_cast<int64_t>(cardinality)
                  : runs < kRunVsBitmapMax;
          if (!run_wins) {
            if (Fail(error, "non-canonical run container")) {
              return std::nullopt;
            }
          }
          break;
        }
      }
      const int64_t max_tid =
          (static_cast<int64_t>(key) << kChunkBits) + max_low;
      if (max_tid >= index.num_transactions_) {
        if (Fail(error, "TID past num_transactions")) return std::nullopt;
      }
      item.count += container.cardinality;
      item.containers.push_back(std::move(container));
    }
  }
  if (in.peek() != std::istream::traits_type::eof()) {
    if (Fail(error, "trailing bytes")) return std::nullopt;
  }
  return index;
}

}  // namespace focus::data

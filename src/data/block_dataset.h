#ifndef FOCUS_DATA_BLOCK_DATASET_H_
#define FOCUS_DATA_BLOCK_DATASET_H_

#include <cstdint>
#include <future>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "data/block_store.h"
#include "data/dataset.h"
#include "data/schema.h"

namespace focus::data {

// Out-of-core Dataset over the block_store.h codec (kind = dataset): block 0
// carries the Schema, every later block a run of rows. Mirrors
// BlockTransactionDb — bounded decoded-block cache, async read-ahead, full
// validation at Open, save -> load -> save byte fixed point. Decoded blocks
// are small Datasets, so the decision-tree and clustering kernels run
// unchanged over block views.
//
// Row codec (canonical): per row, varint(label) then num_attributes raw
// little-endian 64-bit double bit patterns (bit-preserving, so any float
// value — including NaN payloads — round-trips exactly). Block meta = rows
// in the block; file meta = {num_rows}.

class BlockDatasetWriter {
 public:
  BlockDatasetWriter(std::ostream& out, const Schema& schema,
                     int64_t block_size = BlockStoreOptions{}.block_size);

  // `values.size()` must equal schema.num_attributes(); `label` in
  // [0, num_classes) (0 for unlabeled schemas), as for Dataset::AddRow.
  void Add(std::span<const double> values, int label);
  void Finish();

  int64_t num_rows() const { return num_rows_; }

 private:
  void FlushBlock();

  BlockFileWriter writer_;
  const Schema schema_;
  const int64_t block_size_;
  std::string buffer_;
  int64_t buffer_rows_ = 0;
  int64_t num_rows_ = 0;
  bool finished_ = false;
};

class BlockDataset {
 public:
  // Full-validation open (schema + every row block). Null + `*error` on
  // any corruption.
  static std::unique_ptr<BlockDataset> Open(std::unique_ptr<std::istream> in,
                                            const BlockStoreOptions& options,
                                            std::string* error);
  static std::unique_ptr<BlockDataset> OpenFile(const std::string& path,
                                                const BlockStoreOptions& options,
                                                std::string* error);

  ~BlockDataset();

  BlockDataset(const BlockDataset&) = delete;
  BlockDataset& operator=(const BlockDataset&) = delete;

  const Schema& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  // Row blocks only (the schema block is internal).
  int64_t num_blocks() const { return reader_->num_blocks() - 1; }
  const BlockStoreOptions& options() const { return options_; }

  int64_t BlockFirstRow(int64_t block) const { return block_first_row_[block]; }
  int64_t BlockNumRows(int64_t block) const {
    return block_first_row_[block + 1] - block_first_row_[block];
  }

  // Pinned decoded row block; inline decode on a miss (never waits on a
  // prefetch — safe from pool tasks).
  std::shared_ptr<const Dataset> Block(int64_t block) const;

  // Async decode into the cache; no-op without options().pool.
  void Prefetch(int64_t block) const;

  // fn(first_row, const Dataset& block), with read-ahead.
  template <typename Fn>
  void ForEachBlock(Fn&& fn) const {
    const int64_t n = num_blocks();
    for (int64_t b = 0; b < n; ++b) {
      for (int64_t a = b + 1; a < n && a <= b + options_.readahead_blocks;
           ++a) {
        Prefetch(a);
      }
      const std::shared_ptr<const Dataset> block = Block(b);
      fn(BlockFirstRow(b), *block);
    }
  }

  // Re-encodes schema + row blocks preserving boundaries: byte fixed point.
  void SaveTo(std::ostream& out) const;

  int64_t cache_hits() const { return cache_.hits(); }
  int64_t cache_misses() const { return cache_.misses(); }
  int64_t cache_evictions() const { return cache_.evictions(); }

 private:
  BlockDataset(std::unique_ptr<BlockFileReader> reader,
               const BlockStoreOptions& options, Schema schema,
               int64_t num_rows, std::vector<int64_t> block_first_row)
      : reader_(std::move(reader)),
        options_(options),
        schema_(std::move(schema)),
        num_rows_(num_rows),
        block_first_row_(std::move(block_first_row)),
        cache_(options.cache_budget_bytes) {}

  std::shared_ptr<const Dataset> FetchBlock(int64_t block) const;

  std::unique_ptr<BlockFileReader> reader_;
  const BlockStoreOptions options_;
  const Schema schema_;
  const int64_t num_rows_;
  std::vector<int64_t> block_first_row_;  // num_blocks + 1 entries

  mutable BlockCache<Dataset> cache_;
  mutable common::Mutex mu_;
  mutable std::unordered_set<int64_t> in_flight_ GUARDED_BY(mu_);
  mutable std::vector<std::future<void>> pending_ GUARDED_BY(mu_);
};

// Schema block codec, exposed for the fuzzer and tests.
void EncodeSchemaBlock(const Schema& schema, std::string& out);
bool DecodeSchemaBlock(std::string_view payload, Schema* out,
                       std::string* error);
// Row block codec. `out` must be empty with the right schema.
bool DecodeDatasetBlock(std::string_view payload, const Schema& schema,
                        Dataset* out, std::string* error);

}  // namespace focus::data

#endif  // FOCUS_DATA_BLOCK_DATASET_H_

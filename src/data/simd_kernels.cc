#include "data/simd_kernels.h"

#include <atomic>
#include <bit>
#include <cstdio>

#include "common/check.h"
#include "common/env.h"

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define FOCUS_SIMD_X86 1
#include <immintrin.h>
#else
#define FOCUS_SIMD_X86 0
#endif

namespace focus::data::simd {
namespace {

// Testing override; -1 = none. Relaxed is enough: the sweep tests set it
// from one thread and kernels only read it.
std::atomic<int> g_level_override{-1};

int64_t IntersectPopcountScalar(const uint64_t* const* ptrs, int k,
                                const uint64_t* exclude, int64_t n) {
  int64_t count = 0;
  for (int64_t i = 0; i < n; ++i) {
    uint64_t word = ptrs[0][i];
    for (int m = 1; m < k; ++m) word &= ptrs[m][i];
    if (exclude != nullptr) word &= ~exclude[i];
    count += std::popcount(word);
  }
  return count;
}

void AndWordsInPlaceScalar(uint64_t* dst, const uint64_t* src, int64_t n) {
  for (int64_t i = 0; i < n; ++i) dst[i] &= src[i];
}

#if FOCUS_SIMD_X86

// Mula's vpshufb popcount: per-byte counts from a nibble LUT, summed into
// per-64-bit-lane totals by SAD against zero. Exact, so every level
// returns the same integers as the scalar loop.
__attribute__((target("avx2"))) inline __m256i Popcount256(__m256i v) {
  const __m256i lut = _mm256_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4,
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4);
  const __m256i low_mask = _mm256_set1_epi8(0x0f);
  const __m256i lo = _mm256_and_si256(v, low_mask);
  const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(v, 4), low_mask);
  const __m256i counts = _mm256_add_epi8(_mm256_shuffle_epi8(lut, lo),
                                         _mm256_shuffle_epi8(lut, hi));
  return _mm256_sad_epu8(counts, _mm256_setzero_si256());
}

__attribute__((target("avx2"))) int64_t IntersectPopcountAvx2(
    const uint64_t* const* ptrs, int k, const uint64_t* exclude, int64_t n) {
  __m256i totals = _mm256_setzero_si256();
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i acc = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(ptrs[0] + i));
    for (int m = 1; m < k; ++m) {
      acc = _mm256_and_si256(acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(
                                      ptrs[m] + i)));
    }
    if (exclude != nullptr) {
      acc = _mm256_andnot_si256(
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(exclude + i)),
          acc);
    }
    totals = _mm256_add_epi64(totals, Popcount256(acc));
  }
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), totals);
  int64_t count = static_cast<int64_t>(lanes[0] + lanes[1] + lanes[2] + lanes[3]);
  for (; i < n; ++i) {
    uint64_t word = ptrs[0][i];
    for (int m = 1; m < k; ++m) word &= ptrs[m][i];
    if (exclude != nullptr) word &= ~exclude[i];
    count += std::popcount(word);
  }
  return count;
}

__attribute__((target("avx2"))) void AndWordsInPlaceAvx2(uint64_t* dst,
                                                         const uint64_t* src,
                                                         int64_t n) {
  int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_and_si256(a, b));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

// AVX-512BW has vpshufb over 512-bit lanes, so the same LUT popcount
// covers 8 words per step without needing AVX512-VPOPCNTDQ.
__attribute__((target("avx512f,avx512bw"))) inline __m512i Popcount512(
    __m512i v) {
  const __m512i lut = _mm512_broadcast_i32x4(_mm_setr_epi8(
      0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4));
  const __m512i low_mask = _mm512_set1_epi8(0x0f);
  const __m512i lo = _mm512_and_si512(v, low_mask);
  const __m512i hi = _mm512_and_si512(_mm512_srli_epi16(v, 4), low_mask);
  const __m512i counts = _mm512_add_epi8(_mm512_shuffle_epi8(lut, lo),
                                         _mm512_shuffle_epi8(lut, hi));
  return _mm512_sad_epu8(counts, _mm512_setzero_si512());
}

__attribute__((target("avx512f,avx512bw"))) int64_t IntersectPopcountAvx512(
    const uint64_t* const* ptrs, int k, const uint64_t* exclude, int64_t n) {
  __m512i totals = _mm512_setzero_si512();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m512i acc = _mm512_loadu_si512(ptrs[0] + i);
    for (int m = 1; m < k; ++m) {
      acc = _mm512_and_si512(acc, _mm512_loadu_si512(ptrs[m] + i));
    }
    if (exclude != nullptr) {
      acc = _mm512_andnot_si512(_mm512_loadu_si512(exclude + i), acc);
    }
    totals = _mm512_add_epi64(totals, Popcount512(acc));
  }
  int64_t count = static_cast<int64_t>(_mm512_reduce_add_epi64(totals));
  for (; i < n; ++i) {
    uint64_t word = ptrs[0][i];
    for (int m = 1; m < k; ++m) word &= ptrs[m][i];
    if (exclude != nullptr) word &= ~exclude[i];
    count += std::popcount(word);
  }
  return count;
}

__attribute__((target("avx512f,avx512bw"))) void AndWordsInPlaceAvx512(
    uint64_t* dst, const uint64_t* src, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i a = _mm512_loadu_si512(dst + i);
    const __m512i b = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_and_si512(a, b));
  }
  for (; i < n; ++i) dst[i] &= src[i];
}

#endif  // FOCUS_SIMD_X86

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kAvx512:
      return "avx512";
  }
  return "unknown";
}

std::optional<Level> ParseLevel(const std::string& name) {
  if (name == "scalar") return Level::kScalar;
  if (name == "avx2") return Level::kAvx2;
  if (name == "avx512") return Level::kAvx512;
  return std::nullopt;
}

bool LevelSupported(Level level) {
  if (level == Level::kScalar) return true;
#if FOCUS_SIMD_X86
  if (level == Level::kAvx2) return __builtin_cpu_supports("avx2") != 0;
  return __builtin_cpu_supports("avx512f") != 0 &&
         __builtin_cpu_supports("avx512bw") != 0;
#else
  return false;
#endif
}

Level DetectLevel() {
  static const Level detected = [] {
    Level best = Level::kScalar;
    if (LevelSupported(Level::kAvx2)) best = Level::kAvx2;
    if (LevelSupported(Level::kAvx512)) best = Level::kAvx512;
    const std::string requested = common::GetEnvString("FOCUS_SIMD", "");
    if (!requested.empty()) {
      const std::optional<Level> parsed = ParseLevel(requested);
      if (!parsed.has_value()) {
        std::fprintf(stderr,
                     "FOCUS_SIMD=%s is not scalar|avx2|avx512; using %s\n",
                     requested.c_str(), LevelName(best));
      } else if (static_cast<int>(*parsed) > static_cast<int>(best)) {
        std::fprintf(stderr,
                     "FOCUS_SIMD=%s unsupported on this CPU; clamping to %s\n",
                     requested.c_str(), LevelName(best));
      } else {
        best = *parsed;
      }
    }
    return best;
  }();
  return detected;
}

Level CurrentLevel() {
  const int override_level = g_level_override.load(std::memory_order_relaxed);
  if (override_level >= 0) return static_cast<Level>(override_level);
  return DetectLevel();
}

ScopedLevelForTesting::ScopedLevelForTesting(Level level)
    : previous_(g_level_override.load(std::memory_order_relaxed)) {
  FOCUS_CHECK(LevelSupported(level))
      << LevelName(level) << " kernels are not runnable on this CPU";
  g_level_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

ScopedLevelForTesting::~ScopedLevelForTesting() {
  g_level_override.store(previous_, std::memory_order_relaxed);
}

int64_t IntersectPopcountWords(const uint64_t* const* ptrs, int k,
                               const uint64_t* exclude, int64_t n) {
#if FOCUS_SIMD_X86
  switch (CurrentLevel()) {
    case Level::kAvx512:
      return IntersectPopcountAvx512(ptrs, k, exclude, n);
    case Level::kAvx2:
      return IntersectPopcountAvx2(ptrs, k, exclude, n);
    case Level::kScalar:
      break;
  }
#endif
  return IntersectPopcountScalar(ptrs, k, exclude, n);
}

int64_t PopcountWords(const uint64_t* words, int64_t n) {
  return IntersectPopcountWords(&words, 1, nullptr, n);
}

int64_t AndPopcountWords(const uint64_t* a, const uint64_t* b, int64_t n) {
  const uint64_t* ptrs[2] = {a, b};
  return IntersectPopcountWords(ptrs, 2, nullptr, n);
}

int64_t AndNotPopcountWords(const uint64_t* a, const uint64_t* b, int64_t n) {
  return IntersectPopcountWords(&a, 1, b, n);
}

void AndWordsInPlace(uint64_t* dst, const uint64_t* src, int64_t n) {
#if FOCUS_SIMD_X86
  switch (CurrentLevel()) {
    case Level::kAvx512:
      return AndWordsInPlaceAvx512(dst, src, n);
    case Level::kAvx2:
      return AndWordsInPlaceAvx2(dst, src, n);
    case Level::kScalar:
      break;
  }
#endif
  AndWordsInPlaceScalar(dst, src, n);
}

}  // namespace focus::data::simd

#include "data/block_txn_db.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <istream>
#include <ostream>

#include "common/thread_pool.h"

namespace focus::data {
namespace {

// Same universe caps as RoaringIndex: hostile headers may claim anything.
constexpr int64_t kMaxItems = int64_t{1} << 20;
constexpr int64_t kMaxTransactions = int64_t{1} << 40;

bool Fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

}  // namespace

void EncodeTransaction(std::span<const int32_t> items, std::string& out) {
  AppendVarint(out, items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    if (i == 0) {
      AppendVarint(out, static_cast<uint64_t>(items[0]));
    } else {
      AppendVarint(out, static_cast<uint64_t>(items[i] - items[i - 1]));
    }
  }
}

bool DecodeTransactionBlock(std::string_view payload, int32_t num_items,
                            TransactionDb* out, std::string* error) {
  size_t pos = 0;
  std::vector<int32_t> items;
  while (pos < payload.size()) {
    uint64_t count = 0;
    if (!ReadVarint(payload, &pos, &count)) {
      return Fail(error, "txn block: bad transaction length varint");
    }
    if (count > static_cast<uint64_t>(num_items)) {
      // Sorted-unique transactions cannot hold more distinct items than
      // the universe.
      return Fail(error, "txn block: transaction longer than item universe");
    }
    items.clear();
    int64_t item = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t word = 0;
      if (!ReadVarint(payload, &pos, &word)) {
        return Fail(error, "txn block: bad item varint");
      }
      if (i == 0) {
        item = static_cast<int64_t>(word);
      } else {
        // Strictly ascending: every gap is >= 1. A zero gap is a duplicate
        // item, which the canonical form forbids.
        if (word == 0) return Fail(error, "txn block: duplicate item");
        item += static_cast<int64_t>(word);
      }
      if (item >= num_items) return Fail(error, "txn block: item out of range");
      items.push_back(static_cast<int32_t>(item));
    }
    out->AddTransaction(items);
  }
  return true;
}

BlockTransactionDbWriter::BlockTransactionDbWriter(std::ostream& out,
                                                   int32_t num_items,
                                                   int64_t block_size)
    : writer_(out, kBlockKindTransactions),
      num_items_(num_items),
      block_size_(block_size) {
  FOCUS_CHECK_GE(num_items, 0);
  FOCUS_CHECK_LE(num_items, kMaxItems);
  FOCUS_CHECK_GT(block_size, 0);
}

void BlockTransactionDbWriter::Add(std::span<const int32_t> items) {
  FOCUS_CHECK(!finished_) << "Add after Finish";
  scratch_.assign(items.begin(), items.end());
  std::sort(scratch_.begin(), scratch_.end());
  scratch_.erase(std::unique(scratch_.begin(), scratch_.end()),
                 scratch_.end());
  for (int32_t item : scratch_) {
    FOCUS_CHECK_GE(item, 0);
    FOCUS_CHECK_LT(item, num_items_);
  }
  encoded_.clear();
  EncodeTransaction(scratch_, encoded_);
  if (!buffer_.empty() &&
      buffer_.size() + encoded_.size() > static_cast<size_t>(block_size_)) {
    FlushBlock();
  }
  buffer_ += encoded_;
  ++buffer_transactions_;
  ++num_transactions_;
}

void BlockTransactionDbWriter::FlushBlock() {
  writer_.AppendBlock(buffer_, static_cast<uint64_t>(buffer_transactions_));
  buffer_.clear();
  buffer_transactions_ = 0;
}

void BlockTransactionDbWriter::Finish() {
  FOCUS_CHECK(!finished_) << "double Finish";
  finished_ = true;
  if (!buffer_.empty()) FlushBlock();
  const std::array<uint64_t, 2> meta = {
      static_cast<uint64_t>(num_items_),
      static_cast<uint64_t>(num_transactions_)};
  writer_.Finish(meta);
}

std::unique_ptr<BlockTransactionDb> BlockTransactionDb::Open(
    std::unique_ptr<std::istream> in, const BlockStoreOptions& options,
    std::string* error) {
  auto fail = [&](const std::string& why) -> std::unique_ptr<BlockTransactionDb> {
    if (error != nullptr) *error = why;
    return nullptr;
  };
  std::unique_ptr<BlockFileReader> reader =
      BlockFileReader::Open(std::move(in), kBlockKindTransactions, error);
  if (reader == nullptr) return nullptr;

  const std::span<const uint64_t> meta = reader->file_meta();
  if (meta.size() != 2) return fail("txn block file: bad file meta arity");
  if (meta[0] > static_cast<uint64_t>(kMaxItems)) {
    return fail("txn block file: item universe too large");
  }
  if (meta[1] >= static_cast<uint64_t>(kMaxTransactions)) {
    return fail("txn block file: too many transactions");
  }
  const auto num_items = static_cast<int32_t>(meta[0]);
  const auto num_transactions = static_cast<int64_t>(meta[1]);

  // One streaming validation pass: every checksum and every byte of every
  // payload is checked against the canonical codec, in bounded memory.
  // After this, fetch-time failures cannot happen on an unchanged file.
  std::vector<int64_t> block_first_txn;
  block_first_txn.reserve(reader->num_blocks() + 1);
  block_first_txn.push_back(0);
  int64_t total = 0;
  std::string payload;
  for (int64_t b = 0; b < reader->num_blocks(); ++b) {
    std::string why;
    if (!reader->ReadBlock(b, &payload, &why)) return fail(why);
    TransactionDb decoded(num_items);
    if (!DecodeTransactionBlock(payload, num_items, &decoded, &why)) {
      return fail(why);
    }
    if (static_cast<uint64_t>(decoded.num_transactions()) !=
        reader->block_meta(b)) {
      return fail("txn block file: block meta txn count mismatch");
    }
    total += decoded.num_transactions();
    block_first_txn.push_back(total);
  }
  if (total != num_transactions) {
    return fail("txn block file: transaction total mismatch");
  }

  return std::unique_ptr<BlockTransactionDb>(new BlockTransactionDb(
      std::move(reader), options, num_items, num_transactions,
      std::move(block_first_txn)));
}

std::unique_ptr<BlockTransactionDb> BlockTransactionDb::OpenFile(
    const std::string& path, const BlockStoreOptions& options,
    std::string* error) {
  std::unique_ptr<std::istream> in = OpenBlockFileForRead(path);
  if (in == nullptr) {
    if (error != nullptr) *error = "txn block file: cannot open " + path;
    return nullptr;
  }
  return Open(std::move(in), options, error);
}

BlockTransactionDb::~BlockTransactionDb() {
  std::vector<std::future<void>> pending;
  {
    common::MutexLock lock(&mu_);
    pending = std::move(pending_);
  }
  for (std::future<void>& f : pending) f.wait();
}

std::shared_ptr<const TransactionDb> BlockTransactionDb::FetchBlock(
    int64_t block) const {
  std::string payload;
  std::string why;
  FOCUS_CHECK(reader_->ReadBlock(block, &payload, &why)) << why;
  auto decoded = std::make_shared<TransactionDb>(num_items_);
  FOCUS_CHECK(DecodeTransactionBlock(payload, num_items_, decoded.get(), &why))
      << why;
  // Flat-array footprint of the decoded view; close enough for budgeting.
  int64_t total_items = 0;
  for (int64_t t = 0; t < decoded->num_transactions(); ++t) {
    total_items += static_cast<int64_t>(decoded->Transaction(t).size());
  }
  const int64_t bytes =
      total_items * 4 + (decoded->num_transactions() + 1) * 8 + 64;
  cache_.Put(block, decoded, bytes);
  return decoded;
}

std::shared_ptr<const TransactionDb> BlockTransactionDb::Block(
    int64_t block) const {
  FOCUS_CHECK_GE(block, 0);
  FOCUS_CHECK_LT(block, num_blocks());
  if (std::shared_ptr<const TransactionDb> cached = cache_.Get(block)) {
    return cached;
  }
  return FetchBlock(block);
}

void BlockTransactionDb::Prefetch(int64_t block) const {
  if (options_.pool == nullptr) return;
  FOCUS_CHECK_GE(block, 0);
  FOCUS_CHECK_LT(block, num_blocks());
  common::MutexLock lock(&mu_);
  // Reap finished prefetches so the pending list stays small on long scans.
  std::erase_if(pending_, [](std::future<void>& f) {
    return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  });
  if (in_flight_.count(block) != 0) return;
  in_flight_.insert(block);
  pending_.push_back(options_.pool->Submit([this, block] {
    if (cache_.Get(block) == nullptr) FetchBlock(block);
    common::MutexLock inner(&mu_);
    in_flight_.erase(block);
  }));
}

void BlockTransactionDb::SaveTo(std::ostream& out) const {
  BlockFileWriter writer(out, kBlockKindTransactions);
  std::string payload;
  ForEachBlock([&](int64_t, const TransactionDb& block) {
    payload.clear();
    for (int64_t t = 0; t < block.num_transactions(); ++t) {
      EncodeTransaction(block.Transaction(t), payload);
    }
    writer.AppendBlock(payload,
                       static_cast<uint64_t>(block.num_transactions()));
  });
  const std::array<uint64_t, 2> meta = {
      static_cast<uint64_t>(num_items_),
      static_cast<uint64_t>(num_transactions_)};
  writer.Finish(meta);
}

}  // namespace focus::data

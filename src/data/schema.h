#ifndef FOCUS_DATA_SCHEMA_H_
#define FOCUS_DATA_SCHEMA_H_

#include <cstdint>
#include <string>
#include <vector>

namespace focus::data {

// Kind of a (non-class) attribute in the attribute space A(I) of the paper
// (Definition 3.1).
enum class AttributeType {
  kNumeric,      // continuous; values are doubles
  kCategorical,  // finite domain; values are integer codes in [0, cardinality)
};

// One attribute A_i with its domain D_i.
struct Attribute {
  std::string name;
  AttributeType type = AttributeType::kNumeric;
  // For kCategorical: number of distinct codes (must be in [1, 64] so
  // category subsets fit in a uint64_t mask). Ignored for kNumeric.
  int cardinality = 0;
  // For kNumeric: the (inclusive) domain bounds, used to seed the root
  // region of decision-tree models and clustering grids.
  double min_value = 0.0;
  double max_value = 1.0;
};

// The attribute space A(I): an ordered list of attributes plus the number
// of class labels (for classification datasets; 0 for unlabeled data).
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<Attribute> attributes, int num_classes);

  int num_attributes() const { return static_cast<int>(attributes_.size()); }
  int num_classes() const { return num_classes_; }
  const Attribute& attribute(int i) const { return attributes_[i]; }
  const std::vector<Attribute>& attributes() const { return attributes_; }

  // Convenience factories.
  static Attribute Numeric(std::string name, double min_value, double max_value);
  static Attribute Categorical(std::string name, int cardinality);

  bool operator==(const Schema& other) const;

 private:
  std::vector<Attribute> attributes_;
  int num_classes_ = 0;
};

}  // namespace focus::data

#endif  // FOCUS_DATA_SCHEMA_H_

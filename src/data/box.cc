#include "data/box.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace focus::data {

Box Box::Full(const Schema& schema) {
  Box box;
  box.bounds_.resize(schema.num_attributes());
  for (int a = 0; a < schema.num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(a);
    if (attr.type == AttributeType::kCategorical) {
      box.bounds_[a].mask = attr.cardinality >= 64
                                ? ~0ULL
                                : ((1ULL << attr.cardinality) - 1);
    }
  }
  return box;
}

bool Box::Contains(const Schema& schema, std::span<const double> row) const {
  FOCUS_CHECK_EQ(static_cast<int>(row.size()), num_attributes());
  for (int a = 0; a < num_attributes(); ++a) {
    const AttributeBound& b = bounds_[a];
    if (schema.attribute(a).type == AttributeType::kNumeric) {
      if (row[a] < b.lo || row[a] >= b.hi) return false;
    } else {
      const int code = static_cast<int>(row[a]);
      if ((b.mask & (1ULL << code)) == 0) return false;
    }
  }
  return true;
}

Box Box::Intersect(const Box& other) const {
  FOCUS_CHECK_EQ(num_attributes(), other.num_attributes());
  Box result = *this;
  for (int a = 0; a < num_attributes(); ++a) {
    result.bounds_[a].lo = std::max(bounds_[a].lo, other.bounds_[a].lo);
    result.bounds_[a].hi = std::min(bounds_[a].hi, other.bounds_[a].hi);
    result.bounds_[a].mask = bounds_[a].mask & other.bounds_[a].mask;
  }
  return result;
}

bool Box::IsEmpty(const Schema& schema) const {
  for (int a = 0; a < num_attributes(); ++a) {
    if (schema.attribute(a).type == AttributeType::kNumeric) {
      if (bounds_[a].lo >= bounds_[a].hi) return true;
    } else {
      uint64_t domain = schema.attribute(a).cardinality >= 64
                            ? ~0ULL
                            : ((1ULL << schema.attribute(a).cardinality) - 1);
      if ((bounds_[a].mask & domain) == 0) return true;
    }
  }
  return false;
}

bool Box::Covers(const Schema& schema, const Box& other) const {
  FOCUS_CHECK_EQ(num_attributes(), other.num_attributes());
  if (other.IsEmpty(schema)) return true;
  for (int a = 0; a < num_attributes(); ++a) {
    if (schema.attribute(a).type == AttributeType::kNumeric) {
      if (other.bounds_[a].lo < bounds_[a].lo ||
          other.bounds_[a].hi > bounds_[a].hi) {
        return false;
      }
    } else {
      if ((other.bounds_[a].mask & ~bounds_[a].mask) != 0) return false;
    }
  }
  return true;
}

void Box::ClampNumeric(int attr, double lo, double hi) {
  bounds_[attr].lo = std::max(bounds_[attr].lo, lo);
  bounds_[attr].hi = std::min(bounds_[attr].hi, hi);
}

void Box::ClampCategorical(int attr, uint64_t mask) {
  bounds_[attr].mask &= mask;
}

std::string Box::ToString(const Schema& schema) const {
  std::ostringstream out;
  bool first = true;
  for (int a = 0; a < num_attributes(); ++a) {
    const Attribute& attr = schema.attribute(a);
    const AttributeBound& b = bounds_[a];
    if (attr.type == AttributeType::kNumeric) {
      if (std::isinf(b.lo) && std::isinf(b.hi)) continue;
      if (!first) out << " & ";
      first = false;
      out << attr.name << " in [" << b.lo << "," << b.hi << ")";
    } else {
      const uint64_t domain = attr.cardinality >= 64
                                  ? ~0ULL
                                  : ((1ULL << attr.cardinality) - 1);
      if ((b.mask & domain) == domain) continue;
      if (!first) out << " & ";
      first = false;
      out << attr.name << " in {";
      bool first_code = true;
      for (int c = 0; c < attr.cardinality; ++c) {
        if (b.mask & (1ULL << c)) {
          if (!first_code) out << ',';
          first_code = false;
          out << c;
        }
      }
      out << '}';
    }
  }
  if (first) out << "<all>";
  return out.str();
}

bool Box::operator==(const Box& other) const {
  if (num_attributes() != other.num_attributes()) return false;
  for (int a = 0; a < num_attributes(); ++a) {
    if (bounds_[a].lo != other.bounds_[a].lo ||
        bounds_[a].hi != other.bounds_[a].hi ||
        bounds_[a].mask != other.bounds_[a].mask) {
      return false;
    }
  }
  return true;
}

}  // namespace focus::data

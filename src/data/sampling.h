#ifndef FOCUS_DATA_SAMPLING_H_
#define FOCUS_DATA_SAMPLING_H_

#include <cstdint>
#include <random>
#include <vector>

#include "data/dataset.h"
#include "data/transaction_db.h"
#include "data/txn_source.h"

namespace focus::data {

// Random-sampling primitives used by the sample-size study (Section 6 of
// the paper) and by the bootstrap qualification procedure (Section 3.4).
// All functions are deterministic given the std::mt19937_64 state.

// Returns floor(fraction * n) distinct row indices, uniformly without
// replacement (partial Fisher–Yates).
std::vector<int64_t> SampleIndicesWithoutReplacement(int64_t n, double fraction,
                                                     std::mt19937_64& rng);

// Returns `count` row indices uniformly with replacement.
std::vector<int64_t> SampleIndicesWithReplacement(int64_t n, int64_t count,
                                                  std::mt19937_64& rng);

// Materializes the rows named by `indices`.
Dataset TakeRows(const Dataset& dataset, const std::vector<int64_t>& indices);
TransactionDb TakeTransactions(const TransactionDb& db,
                               const std::vector<int64_t>& indices);

// Same extraction over either transaction backend. Block-backed sources
// are visited in ascending transaction order (each needed block decodes
// once) but the result places transactions at their `indices` positions,
// so the output is byte-identical to the in-memory overload.
TransactionDb TakeTransactions(TxnSourceRef source,
                               const std::vector<int64_t>& indices);

// Extraction from the LOGICAL concatenation a ++ b without materializing
// the pool: `indices` range over [0, |a| + |b|), with index i < |a| naming
// a's transaction i and i >= |a| naming b's transaction i - |a|. Equal to
// TakeTransactions(pool, indices) for pool = a ++ b — the bootstrap
// significance path resamples through this so a block-backed operand never
// has to be appended into an in-memory pool.
TransactionDb TakeTransactionsPooled(TxnSourceRef a, TxnSourceRef b,
                                     const std::vector<int64_t>& indices);

// Simple-random-sample helpers (without replacement).
Dataset SampleDataset(const Dataset& dataset, double fraction,
                      std::mt19937_64& rng);
TransactionDb SampleTransactions(const TransactionDb& db, double fraction,
                                 std::mt19937_64& rng);

}  // namespace focus::data

#endif  // FOCUS_DATA_SAMPLING_H_

#include "data/sampling.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace focus::data {

std::vector<int64_t> SampleIndicesWithoutReplacement(int64_t n, double fraction,
                                                     std::mt19937_64& rng) {
  FOCUS_CHECK_GE(fraction, 0.0);
  FOCUS_CHECK_LE(fraction, 1.0);
  const int64_t k = static_cast<int64_t>(fraction * static_cast<double>(n));
  std::vector<int64_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  // Partial Fisher–Yates: after i swaps, pool[0..i) is a uniform sample.
  for (int64_t i = 0; i < k; ++i) {
    std::uniform_int_distribution<int64_t> pick(i, n - 1);
    std::swap(pool[i], pool[pick(rng)]);
  }
  pool.resize(k);
  return pool;
}

std::vector<int64_t> SampleIndicesWithReplacement(int64_t n, int64_t count,
                                                  std::mt19937_64& rng) {
  FOCUS_CHECK_GT(n, 0);
  std::uniform_int_distribution<int64_t> pick(0, n - 1);
  std::vector<int64_t> indices(count);
  for (int64_t i = 0; i < count; ++i) indices[i] = pick(rng);
  return indices;
}

Dataset TakeRows(const Dataset& dataset, const std::vector<int64_t>& indices) {
  Dataset out(dataset.schema());
  out.Reserve(static_cast<int64_t>(indices.size()));
  for (int64_t row : indices) {
    out.AddRow(dataset.Row(row), dataset.Label(row));
  }
  return out;
}

TransactionDb TakeTransactions(const TransactionDb& db,
                               const std::vector<int64_t>& indices) {
  TransactionDb out(db.num_items());
  for (int64_t t : indices) {
    out.AddTransaction(db.Transaction(t));
  }
  return out;
}

Dataset SampleDataset(const Dataset& dataset, double fraction,
                      std::mt19937_64& rng) {
  return TakeRows(dataset, SampleIndicesWithoutReplacement(dataset.num_rows(),
                                                           fraction, rng));
}

TransactionDb SampleTransactions(const TransactionDb& db, double fraction,
                                 std::mt19937_64& rng) {
  return TakeTransactions(
      db, SampleIndicesWithoutReplacement(db.num_transactions(), fraction, rng));
}

}  // namespace focus::data

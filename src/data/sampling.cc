#include "data/sampling.h"

#include <algorithm>
#include <memory>
#include <numeric>
#include <utility>

#include "common/check.h"

namespace focus::data {
namespace {

// Copies source transaction `txn` into rows[slot] for every (txn, slot)
// pair, visiting pairs in ascending transaction order so a block-backed
// source decodes each needed block exactly once. `txn_slots` is reordered.
void GatherRows(TxnSourceRef source,
                std::vector<std::pair<int64_t, int64_t>>& txn_slots,
                std::vector<std::vector<int32_t>>& rows) {
  std::sort(txn_slots.begin(), txn_slots.end());
  if (source.memory() != nullptr) {
    for (const auto& [txn, slot] : txn_slots) {
      const auto items = source.memory()->Transaction(txn);
      rows[slot].assign(items.begin(), items.end());
    }
    return;
  }
  const BlockTransactionDb& db = *source.block();
  int64_t current_block = -1;
  std::shared_ptr<const TransactionDb> pin;
  for (const auto& [txn, slot] : txn_slots) {
    const int64_t block = db.BlockContaining(txn);
    if (block != current_block) {
      pin = db.Block(block);
      current_block = block;
    }
    const auto items = pin->Transaction(txn - db.BlockFirstTransaction(block));
    rows[slot].assign(items.begin(), items.end());
  }
}

}  // namespace

std::vector<int64_t> SampleIndicesWithoutReplacement(int64_t n, double fraction,
                                                     std::mt19937_64& rng) {
  FOCUS_CHECK_GE(fraction, 0.0);
  FOCUS_CHECK_LE(fraction, 1.0);
  const int64_t k = static_cast<int64_t>(fraction * static_cast<double>(n));
  std::vector<int64_t> pool(n);
  std::iota(pool.begin(), pool.end(), 0);
  // Partial Fisher–Yates: after i swaps, pool[0..i) is a uniform sample.
  for (int64_t i = 0; i < k; ++i) {
    std::uniform_int_distribution<int64_t> pick(i, n - 1);
    std::swap(pool[i], pool[pick(rng)]);
  }
  pool.resize(k);
  return pool;
}

std::vector<int64_t> SampleIndicesWithReplacement(int64_t n, int64_t count,
                                                  std::mt19937_64& rng) {
  FOCUS_CHECK_GT(n, 0);
  std::uniform_int_distribution<int64_t> pick(0, n - 1);
  std::vector<int64_t> indices(count);
  for (int64_t i = 0; i < count; ++i) indices[i] = pick(rng);
  return indices;
}

Dataset TakeRows(const Dataset& dataset, const std::vector<int64_t>& indices) {
  Dataset out(dataset.schema());
  out.Reserve(static_cast<int64_t>(indices.size()));
  for (int64_t row : indices) {
    out.AddRow(dataset.Row(row), dataset.Label(row));
  }
  return out;
}

TransactionDb TakeTransactions(const TransactionDb& db,
                               const std::vector<int64_t>& indices) {
  TransactionDb out(db.num_items());
  for (int64_t t : indices) {
    out.AddTransaction(db.Transaction(t));
  }
  return out;
}

TransactionDb TakeTransactions(TxnSourceRef source,
                               const std::vector<int64_t>& indices) {
  if (source.memory() != nullptr) {
    return TakeTransactions(*source.memory(), indices);
  }
  std::vector<std::pair<int64_t, int64_t>> txn_slots;
  txn_slots.reserve(indices.size());
  for (size_t i = 0; i < indices.size(); ++i) {
    txn_slots.emplace_back(indices[i], static_cast<int64_t>(i));
  }
  std::vector<std::vector<int32_t>> rows(indices.size());
  GatherRows(source, txn_slots, rows);
  TransactionDb out(source.num_items());
  for (const std::vector<int32_t>& row : rows) out.AddTransaction(row);
  return out;
}

TransactionDb TakeTransactionsPooled(TxnSourceRef a, TxnSourceRef b,
                                     const std::vector<int64_t>& indices) {
  FOCUS_CHECK_EQ(a.num_items(), b.num_items());
  const int64_t na = a.num_transactions();
  std::vector<std::pair<int64_t, int64_t>> a_slots;
  std::vector<std::pair<int64_t, int64_t>> b_slots;
  for (size_t i = 0; i < indices.size(); ++i) {
    const int64_t t = indices[i];
    if (t < na) {
      a_slots.emplace_back(t, static_cast<int64_t>(i));
    } else {
      b_slots.emplace_back(t - na, static_cast<int64_t>(i));
    }
  }
  std::vector<std::vector<int32_t>> rows(indices.size());
  GatherRows(a, a_slots, rows);
  GatherRows(b, b_slots, rows);
  TransactionDb out(a.num_items());
  for (const std::vector<int32_t>& row : rows) out.AddTransaction(row);
  return out;
}

Dataset SampleDataset(const Dataset& dataset, double fraction,
                      std::mt19937_64& rng) {
  return TakeRows(dataset, SampleIndicesWithoutReplacement(dataset.num_rows(),
                                                           fraction, rng));
}

TransactionDb SampleTransactions(const TransactionDb& db, double fraction,
                                 std::mt19937_64& rng) {
  return TakeTransactions(
      db, SampleIndicesWithoutReplacement(db.num_transactions(), fraction, rng));
}

}  // namespace focus::data

#ifndef FOCUS_DATA_SIMD_KERNELS_H_
#define FOCUS_DATA_SIMD_KERNELS_H_

#include <cstdint>
#include <optional>
#include <string>

namespace focus::data::simd {

// Word-level counting kernels behind the vertical indexes: AND+popcount
// (support of an itemset), AND-NOT+popcount (deviation paths: transactions
// in one region but not another), and plain AND/popcount over 64-bit word
// streams. Every kernel exists at three instruction levels selected by a
// one-time runtime dispatcher, and ALL levels are bit-identical by
// construction — they compute the same integer popcount of the same words,
// so the horizontal == vertical == roaring differential laws hold at every
// level. tests/laws/laws_kernel_oracle_test.cc sweeps the full
// (kernel x level x pool) grid to keep that true.
enum class Level : int {
  kScalar = 0,  // std::popcount loop; the portable baseline
  kAvx2 = 1,    // 256-bit AND + vpshufb nibble-LUT popcount (Mula)
  kAvx512 = 2,  // 512-bit AND + the same LUT popcount via AVX-512BW
};

// "scalar" / "avx2" / "avx512".
const char* LevelName(Level level);
std::optional<Level> ParseLevel(const std::string& name);

// True iff the running CPU can execute `level`'s kernels. kScalar is
// always supported; AVX-512 requires F+BW.
bool LevelSupported(Level level);

// The level kernels run at, decided once per process: the best
// CPU-supported level, lowered by FOCUS_SIMD=scalar|avx2|avx512 when the
// environment variable is set (an override the hardware cannot honor is
// clamped down to the best supported level). See docs/TESTING.md.
Level DetectLevel();

// Dispatch point used by the kernels on every call: the scoped testing
// override when one is active, otherwise the cached DetectLevel().
Level CurrentLevel();

// Forces a dispatch level for the current process while in scope — how the
// kernel-oracle tests sweep scalar/avx2/avx512 in one binary without
// re-execing under different FOCUS_SIMD values. The level must be
// supported on this machine (checked). Not for concurrent use from
// multiple threads (tests only).
class ScopedLevelForTesting {
 public:
  explicit ScopedLevelForTesting(Level level);
  ~ScopedLevelForTesting();
  ScopedLevelForTesting(const ScopedLevelForTesting&) = delete;
  ScopedLevelForTesting& operator=(const ScopedLevelForTesting&) = delete;

 private:
  int previous_;
};

// popcount(words[0..n)).
int64_t PopcountWords(const uint64_t* words, int64_t n);

// popcount(a & b) over n words.
int64_t AndPopcountWords(const uint64_t* a, const uint64_t* b, int64_t n);

// popcount(a & ~b) over n words — the deviation-path kernel: transactions
// holding region A but not region B.
int64_t AndNotPopcountWords(const uint64_t* a, const uint64_t* b, int64_t n);

// popcount(ptrs[0] & ... & ptrs[k-1] [& ~exclude]) over n words; k >= 1,
// `exclude` may be null. The k streams advance together so they stay
// cache-resident for any practical itemset size.
int64_t IntersectPopcountWords(const uint64_t* const* ptrs, int k,
                               const uint64_t* exclude, int64_t n);

// dst[i] &= src[i] for n words (the roaring bitmap-chunk fold).
void AndWordsInPlace(uint64_t* dst, const uint64_t* src, int64_t n);

}  // namespace focus::data::simd

#endif  // FOCUS_DATA_SIMD_KERNELS_H_

#ifndef FOCUS_DATA_BOX_H_
#define FOCUS_DATA_BOX_H_

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "data/schema.h"

namespace focus::data {

// Constraint on one attribute inside a Box region.
struct AttributeBound {
  // Numeric attributes: the half-open interval [lo, hi).
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  // Categorical attributes: the set of admitted codes as a bitmask.
  uint64_t mask = ~0ULL;
};

// An axis-aligned region of the attribute space A(I): the conjunction of
// one bound per attribute (Definition 3.1's P_sigma for the rectangular
// predicates produced by decision trees, grid clusters, and user focus
// regions). A decision-tree leaf corresponds to one Box per class label
// (§2.1); the class dimension is tracked separately by the model types.
class Box {
 public:
  Box() = default;

  // The unconstrained region over `schema`.
  static Box Full(const Schema& schema);

  int num_attributes() const { return static_cast<int>(bounds_.size()); }
  const AttributeBound& bound(int attr) const { return bounds_[attr]; }
  AttributeBound& mutable_bound(int attr) { return bounds_[attr]; }

  // Membership predicate P_sigma(t).
  bool Contains(const Schema& schema, std::span<const double> row) const;

  // Geometric intersection. Result may be empty.
  Box Intersect(const Box& other) const;

  // True iff no tuple can satisfy the predicate (some numeric interval
  // has lo >= hi, or some categorical mask is 0).
  bool IsEmpty(const Schema& schema) const;

  // Containment of regions: every point of `other` lies in this box.
  bool Covers(const Schema& schema, const Box& other) const;

  // Restricts attribute `attr` (numeric) to [lo, hi) intersected with the
  // current bound.
  void ClampNumeric(int attr, double lo, double hi);

  // Restricts attribute `attr` (categorical) to `mask` ∩ current mask.
  void ClampCategorical(int attr, uint64_t mask);

  // Human-readable predicate, e.g. "age in [30,60) & elevel in {0,1}".
  std::string ToString(const Schema& schema) const;

  bool operator==(const Box& other) const;

 private:
  std::vector<AttributeBound> bounds_;
};

}  // namespace focus::data

#endif  // FOCUS_DATA_BOX_H_

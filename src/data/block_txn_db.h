#ifndef FOCUS_DATA_BLOCK_TXN_DB_H_
#define FOCUS_DATA_BLOCK_TXN_DB_H_

#include <algorithm>
#include <cstdint>
#include <future>
#include <iosfwd>
#include <memory>
#include <span>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "data/block_store.h"
#include "data/transaction_db.h"

namespace focus::data {

// ---------------------------------------------------------------------------
// Out-of-core TransactionDb: the paper's 1M.20L.1K Quest datasets no longer
// fit the "materialize everything" row store, so BlockTransactionDbWriter
// streams transactions into fixed-size blocks (block_store.h codec, kind =
// transactions) and BlockTransactionDb serves them back block-at-a-time
// through a bounded LRU cache with async read-ahead. Each decoded block IS a
// small TransactionDb, so every existing kernel (SupportCounter::CountRange,
// VerticalIndex's build loop, ...) runs unchanged over block views — and
// because all of them compute integer counts over a bag of transactions,
// block-streamed results are bit-identical to the in-memory path, which
// tests/laws/laws_block_store_test.cc pins EXPECT_EQ-exact.
//
// Block payload codec (canonical; loaders reject anything else):
//   per transaction: varint(k) then, for k > 0, varint(items[0]) followed by
//   k-1 varint gaps (strictly positive — the sorted-unique invariant of
//   TransactionDb, enforced at decode). Per-block directory meta = number of
//   transactions in the block; file meta = {num_items, num_transactions}.
// ---------------------------------------------------------------------------

// Streams transactions into the block codec. Append-only, not thread-safe.
// Mirrors TransactionDb::AddTransaction semantics exactly (sorts, dedupes,
// range-checks), so writing a stream of transactions through either path
// yields the same logical database.
class BlockTransactionDbWriter {
 public:
  BlockTransactionDbWriter(std::ostream& out, int32_t num_items,
                           int64_t block_size = BlockStoreOptions{}.block_size);

  void Add(std::span<const int32_t> items);
  // Flushes the partial block and writes directory + footer.
  void Finish();

  int32_t num_items() const { return num_items_; }
  int64_t num_transactions() const { return num_transactions_; }

 private:
  void FlushBlock();

  BlockFileWriter writer_;
  const int32_t num_items_;
  const int64_t block_size_;
  std::string buffer_;
  std::string encoded_;  // per-Add scratch, reused across calls
  int64_t buffer_transactions_ = 0;
  int64_t num_transactions_ = 0;
  std::vector<int32_t> scratch_;
  bool finished_ = false;
};

// Read side: validates the whole file once at Open (structure + every block
// checksum + canonical payload decode, streamed in bounded memory), then
// serves pinned decoded blocks through the cache. Thread-safe; parallel
// counting shards fetch blocks concurrently.
class BlockTransactionDb {
 public:
  // Full-validation open. Null + `*error` on any corruption, so later
  // accessors never have to surface decode errors (a post-open mismatch
  // means the file changed underneath us and is a FOCUS_CHECK).
  static std::unique_ptr<BlockTransactionDb> Open(
      std::unique_ptr<std::istream> in, const BlockStoreOptions& options,
      std::string* error);
  static std::unique_ptr<BlockTransactionDb> OpenFile(
      const std::string& path, const BlockStoreOptions& options,
      std::string* error);

  ~BlockTransactionDb();

  BlockTransactionDb(const BlockTransactionDb&) = delete;
  BlockTransactionDb& operator=(const BlockTransactionDb&) = delete;

  int32_t num_items() const { return num_items_; }
  int64_t num_transactions() const { return num_transactions_; }
  int64_t num_blocks() const { return reader_->num_blocks(); }
  // Encoded payload bytes on disk (spill/size heuristics).
  int64_t TotalPayloadBytes() const { return reader_->total_payload_bytes(); }
  const BlockStoreOptions& options() const { return options_; }

  // Global index of the first transaction in `block`.
  int64_t BlockFirstTransaction(int64_t block) const {
    return block_first_txn_[block];
  }
  int64_t BlockNumTransactions(int64_t block) const {
    return block_first_txn_[block + 1] - block_first_txn_[block];
  }
  // Index of the block holding global transaction `txn` — the random-access
  // entry point bootstrap resampling uses (sampling.cc sorts its index
  // draws so each needed block decodes once).
  int64_t BlockContaining(int64_t txn) const {
    FOCUS_CHECK_GE(txn, 0);
    FOCUS_CHECK_LT(txn, num_transactions_);
    const auto it = std::upper_bound(block_first_txn_.begin(),
                                     block_first_txn_.end(), txn);
    return (it - block_first_txn_.begin()) - 1;
  }

  // The decoded block, pinned by the returned shared_ptr (cache eviction
  // never invalidates it). Cache miss decodes inline on the calling thread
  // — never waits on an in-flight prefetch, so it is safe to call from
  // inside pool tasks (no nested-wait deadlock); a rare duplicate decode
  // under that race is benign.
  std::shared_ptr<const TransactionDb> Block(int64_t block) const;

  // Schedules an async decode of `block` into the cache on options().pool
  // (no-op without a pool, or when the block is cached / already in
  // flight). The destructor drains in-flight prefetches.
  void Prefetch(int64_t block) const;

  // Sequential block scan with read-ahead: fn(first_txn, const
  // TransactionDb& block). With a pool, up to options().readahead_blocks
  // blocks decode ahead of the consumer (double-buffered at 2).
  template <typename Fn>
  void ForEachBlock(Fn&& fn) const {
    const int64_t n = num_blocks();
    for (int64_t b = 0; b < n; ++b) {
      for (int64_t a = b + 1; a < n && a <= b + options_.readahead_blocks;
           ++a) {
        Prefetch(a);
      }
      const std::shared_ptr<const TransactionDb> block = Block(b);
      fn(BlockFirstTransaction(b), *block);
    }
  }

  // fn(global_transaction_index, std::span<const int32_t> items).
  template <typename Fn>
  void ForEachTransaction(Fn&& fn) const {
    ForEachBlock([&](int64_t first_txn, const TransactionDb& block) {
      const int64_t n = block.num_transactions();
      for (int64_t t = 0; t < n; ++t) {
        fn(first_txn + t, block.Transaction(t));
      }
    });
  }

  // Re-encodes every block (through the cache) into `out`, preserving the
  // loaded block boundaries: save -> load -> save is a byte fixed point.
  void SaveTo(std::ostream& out) const;

  // Cache observability for the eviction/pinning tests.
  int64_t cache_hits() const { return cache_.hits(); }
  int64_t cache_misses() const { return cache_.misses(); }
  int64_t cache_evictions() const { return cache_.evictions(); }

 private:
  BlockTransactionDb(std::unique_ptr<BlockFileReader> reader,
                     const BlockStoreOptions& options, int32_t num_items,
                     int64_t num_transactions,
                     std::vector<int64_t> block_first_txn)
      : reader_(std::move(reader)),
        options_(options),
        num_items_(num_items),
        num_transactions_(num_transactions),
        block_first_txn_(std::move(block_first_txn)),
        cache_(options.cache_budget_bytes) {}

  // Reads + decodes `block` and publishes it to the cache. Requires the
  // open-time validation to have passed; any failure here is fatal.
  std::shared_ptr<const TransactionDb> FetchBlock(int64_t block) const;

  std::unique_ptr<BlockFileReader> reader_;
  const BlockStoreOptions options_;
  const int32_t num_items_;
  const int64_t num_transactions_;
  std::vector<int64_t> block_first_txn_;  // num_blocks + 1 entries

  mutable BlockCache<TransactionDb> cache_;
  mutable common::Mutex mu_;
  mutable std::unordered_set<int64_t> in_flight_ GUARDED_BY(mu_);
  mutable std::vector<std::future<void>> pending_ GUARDED_BY(mu_);
};

// Decodes one canonical transaction-block payload into `out` (which must be
// empty, constructed with the right num_items). Exposed for the fuzzer.
bool DecodeTransactionBlock(std::string_view payload, int32_t num_items,
                            TransactionDb* out, std::string* error);
// Appends the canonical encoding of one (sorted-unique) transaction.
void EncodeTransaction(std::span<const int32_t> items, std::string& out);

}  // namespace focus::data

#endif  // FOCUS_DATA_BLOCK_TXN_DB_H_

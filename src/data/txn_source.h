#ifndef FOCUS_DATA_TXN_SOURCE_H_
#define FOCUS_DATA_TXN_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/check.h"
#include "data/block_txn_db.h"
#include "data/transaction_db.h"

namespace focus::data {

// Which transaction-store backend feeds a scan — the ingest-side analogue
// of IndexBackend.
enum class TxnBackend {
  kMemory,  // data::TransactionDb: fully materialized flat row store
  kBlock,   // data::BlockTransactionDb: out-of-core fixed-size blocks
};

inline const char* TxnBackendName(TxnBackend backend) {
  return backend == TxnBackend::kMemory ? "memory" : "block";
}

// Non-owning reference to EITHER transaction store, mirroring ItemIndexRef:
// implicitly constructible from both backends (and from pointers, which may
// be null), so `f(db)` call sites keep compiling unchanged. Consumers
// (VerticalIndex/RoaringIndex builds, SupportCounter, Apriori,
// core::Monitor) iterate per-block TransactionDb views; for the in-memory
// backend the whole database is block 0, at zero copies. Every kernel
// computes integer counts over a bag of transactions, so results are
// BIT-IDENTICAL across backends, block sizes, and block-aligned parallel
// shardings — tests/laws/laws_block_store_test.cc pins it EXPECT_EQ-exact.
class TxnSourceRef {
 public:
  // A pinned per-block view: `db` stays valid while `pin` is held (the pin
  // is empty for the in-memory backend, whose view is the source itself).
  struct BlockView {
    std::shared_ptr<const TransactionDb> pin;
    const TransactionDb* db = nullptr;
    int64_t first_transaction = 0;
  };

  TxnSourceRef() = default;
  TxnSourceRef(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  // NOLINTNEXTLINE(google-explicit-constructor)
  TxnSourceRef(const TransactionDb& db) : memory_(&db) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  TxnSourceRef(const BlockTransactionDb& db) : block_(&db) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  TxnSourceRef(const TransactionDb* db) : memory_(db) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  TxnSourceRef(const BlockTransactionDb* db) : block_(db) {}

  bool has_value() const { return memory_ != nullptr || block_ != nullptr; }
  explicit operator bool() const { return has_value(); }

  TxnBackend backend() const {
    return memory_ != nullptr ? TxnBackend::kMemory : TxnBackend::kBlock;
  }

  int32_t num_items() const {
    return memory_ != nullptr ? memory_->num_items() : Block().num_items();
  }

  int64_t num_transactions() const {
    return memory_ != nullptr ? memory_->num_transactions()
                              : Block().num_transactions();
  }

  int64_t num_blocks() const {
    return memory_ != nullptr ? 1 : Block().num_blocks();
  }

  int64_t BlockFirstTransaction(int64_t block) const {
    if (memory_ != nullptr) {
      FOCUS_CHECK_EQ(block, 0);
      return 0;
    }
    return Block().BlockFirstTransaction(block);
  }

  BlockView GetBlock(int64_t block) const {
    if (memory_ != nullptr) {
      FOCUS_CHECK_EQ(block, 0);
      return BlockView{nullptr, memory_, 0};
    }
    BlockView view;
    view.pin = Block().Block(block);
    view.db = view.pin.get();
    view.first_transaction = Block().BlockFirstTransaction(block);
    return view;
  }

  // fn(first_transaction, const TransactionDb& block). Sequential, with
  // async read-ahead on the block backend.
  template <typename Fn>
  void ForEachBlock(Fn&& fn) const {
    if (memory_ != nullptr) {
      fn(int64_t{0}, *memory_);
      return;
    }
    Block().ForEachBlock(fn);
  }

  // fn(global_transaction_index, std::span<const int32_t> items).
  template <typename Fn>
  void ForEachTransaction(Fn&& fn) const {
    ForEachBlock([&](int64_t first_txn, const TransactionDb& block) {
      const int64_t n = block.num_transactions();
      for (int64_t t = 0; t < n; ++t) {
        fn(first_txn + t, block.Transaction(t));
      }
    });
  }

  // The in-memory database, or null when block-backed (callers that have a
  // materialized fast path test this).
  const TransactionDb* memory() const { return memory_; }
  const BlockTransactionDb* block() const { return block_; }

 private:
  const BlockTransactionDb& Block() const {
    FOCUS_CHECK(block_ != nullptr) << "scanning an empty txn source ref";
    return *block_;
  }

  const TransactionDb* memory_ = nullptr;
  const BlockTransactionDb* block_ = nullptr;
};

}  // namespace focus::data

#endif  // FOCUS_DATA_TXN_SOURCE_H_

#ifndef FOCUS_DATA_BLOCK_STORE_H_
#define FOCUS_DATA_BLOCK_STORE_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace focus::common {
class ThreadPool;
}  // namespace focus::common

namespace focus::data {

// ---------------------------------------------------------------------------
// Block file substrate: the shared on-disk layer under BlockTransactionDb,
// BlockDataset, and the RoaringIndex spill path. docs/OUT_OF_CORE.md has the
// full format table; the shape is
//
//   [FileHeader 16B][payload blocks, back to back][Directory][Footer 16B]
//
// with per-block sizes, CRC-32 checksums, and a 64-bit meta word carried in
// the trailing directory, and a footer that locates (and checksums) the
// directory. Writers are append-only — no seek-back patching — so the same
// codec streams to an std::ofstream and to the std::ostringstream the tests
// and fuzzers use. Loaders accept ONLY the canonical form writers emit
// (minimal varints, exact sizes, zero padding, matching checksums), which is
// what makes save -> load -> save a byte-level fixed point —
// fuzz/fuzz_block_store.cc pins that property against hostile images.
// ---------------------------------------------------------------------------

// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320). `seed` chains
// incremental computation: Crc32(b, Crc32(a)) == Crc32(a + b).
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

// Canonical LEB128 varints: little-endian base-128, minimal length (a
// multi-byte encoding whose final group is zero is rejected on read).
void AppendVarint(std::string& out, uint64_t value);
// Reads one varint at `*pos`, advancing it. Returns false on truncation,
// overflow, or a non-minimal encoding.
bool ReadVarint(std::string_view bytes, size_t* pos, uint64_t* value);

// Payload kinds (FileHeader.kind). Loaders check the kind byte before
// touching any payload, so a transaction file handed to BlockDataset fails
// with a clean error instead of a misdecode.
inline constexpr uint32_t kBlockKindTransactions = 1;
inline constexpr uint32_t kBlockKindDataset = 2;
inline constexpr uint32_t kBlockKindScratch = 3;

// Tuning knobs shared by the block-backed containers. docs/OUT_OF_CORE.md
// discusses how they bound peak RSS.
struct BlockStoreOptions {
  // Nominal payload bytes per block: a block is closed once appending the
  // next record would push it past this (a single record larger than the
  // block size gets a block of its own).
  int64_t block_size = int64_t{1} << 20;
  // Decoded-block cache budget. Eviction is LRU; blocks a caller still
  // holds a shared_ptr to stay alive regardless (pinning), the cache just
  // stops accounting for them.
  int64_t cache_budget_bytes = int64_t{32} << 20;
  // Blocks scheduled ahead of a sequential scan (double buffering at 1;
  // the default keeps one decoding while one is consumed).
  int readahead_blocks = 2;
  // Pool that runs the async read-ahead. Null disables read-ahead; scans
  // then decode inline.
  common::ThreadPool* pool = nullptr;
};

// Append-only writer for the container formats above. Not thread-safe; one
// writer per stream.
class BlockFileWriter {
 public:
  // `out` must be a binary stream. Writes the file header immediately.
  BlockFileWriter(std::ostream& out, uint32_t kind);

  // Appends one payload block (non-empty) with its 64-bit meta word.
  void AppendBlock(std::string_view payload, uint64_t meta);

  // Writes the directory + footer. `file_meta` is the container-level meta
  // vector (e.g. {num_items, num_transactions}). No further appends.
  void Finish(std::span<const uint64_t> file_meta);

  int64_t num_blocks() const { return static_cast<int64_t>(sizes_.size()); }
  int64_t bytes_written() const { return bytes_written_; }

 private:
  std::ostream& out_;
  std::vector<uint64_t> sizes_;
  std::vector<uint64_t> metas_;
  std::vector<uint32_t> crcs_;
  int64_t bytes_written_ = 0;
  bool finished_ = false;
};

// Structure-validated view of a block file: owns the stream, holds the
// decoded directory, and serves raw payloads by block index. Thread-safe
// reads (the underlying stream is seek+read under a mutex). Payload CRCs
// are verified on every read.
class BlockFileReader {
 public:
  // Validates header, directory, and footer (sizes, magics, checksums,
  // byte-exact file length). Null + `*error` on any deviation. Does NOT
  // read payload blocks; container loaders stream those once and validate
  // their own codec.
  static std::unique_ptr<BlockFileReader> Open(
      std::unique_ptr<std::istream> in, uint32_t expected_kind,
      std::string* error);

  uint32_t kind() const { return kind_; }
  std::span<const uint64_t> file_meta() const { return file_meta_; }
  int64_t num_blocks() const { return static_cast<int64_t>(sizes_.size()); }
  int64_t block_size_bytes(int64_t block) const {
    return static_cast<int64_t>(sizes_[block]);
  }
  // Sum of all payload sizes — the on-disk footprint minus framing, used
  // by spill heuristics to estimate decoded working sets.
  int64_t total_payload_bytes() const {
    return offsets_.empty() ? 0 : offsets_.back() - offsets_.front();
  }
  uint64_t block_meta(int64_t block) const { return metas_[block]; }

  // Reads block `block` into `payload` and verifies its CRC. False +
  // `*error` on IO failure or checksum mismatch.
  bool ReadBlock(int64_t block, std::string* payload, std::string* error);

 private:
  BlockFileReader() = default;

  std::unique_ptr<std::istream> in_;
  common::Mutex io_mu_;  // serializes seek+read pairs on in_
  uint32_t kind_ = 0;
  std::vector<uint64_t> file_meta_;
  std::vector<uint64_t> sizes_;
  std::vector<uint64_t> metas_;
  std::vector<uint32_t> crcs_;
  std::vector<int64_t> offsets_;  // absolute payload offsets, sizes_+1 long
};

// Bounded LRU cache of decoded blocks, keyed by block index. Thread-safe.
// Eviction only drops the cache's reference: callers holding the returned
// shared_ptr pin the block for as long as they need it.
template <typename T>
class BlockCache {
 public:
  explicit BlockCache(int64_t budget_bytes) : budget_bytes_(budget_bytes) {}

  std::shared_ptr<const T> Get(int64_t block) {
    common::MutexLock lock(&mu_);
    auto it = entries_.find(block);
    if (it == entries_.end()) {
      ++misses_;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    ++hits_;
    return it->second.value;
  }

  void Put(int64_t block, std::shared_ptr<const T> value, int64_t bytes) {
    common::MutexLock lock(&mu_);
    auto it = entries_.find(block);
    if (it != entries_.end()) {
      // A concurrent fetch already published this block; keep the resident
      // copy so existing pins and the cache agree on one object.
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      return;
    }
    lru_.push_front(block);
    entries_[block] = Entry{std::move(value), bytes, lru_.begin()};
    used_bytes_ += bytes;
    while (used_bytes_ > budget_bytes_ && lru_.size() > 1) {
      const int64_t victim = lru_.back();
      lru_.pop_back();
      auto victim_it = entries_.find(victim);
      used_bytes_ -= victim_it->second.bytes;
      entries_.erase(victim_it);
      ++evictions_;
    }
  }

  int64_t hits() const {
    common::MutexLock lock(&mu_);
    return hits_;
  }
  int64_t misses() const {
    common::MutexLock lock(&mu_);
    return misses_;
  }
  int64_t evictions() const {
    common::MutexLock lock(&mu_);
    return evictions_;
  }
  int64_t used_bytes() const {
    common::MutexLock lock(&mu_);
    return used_bytes_;
  }

 private:
  struct Entry {
    std::shared_ptr<const T> value;
    int64_t bytes = 0;
    std::list<int64_t>::iterator lru_pos;
  };

  mutable common::Mutex mu_;
  const int64_t budget_bytes_;
  std::unordered_map<int64_t, Entry> entries_ GUARDED_BY(mu_);
  std::list<int64_t> lru_ GUARDED_BY(mu_);  // front = most recent
  int64_t used_bytes_ GUARDED_BY(mu_) = 0;
  int64_t hits_ GUARDED_BY(mu_) = 0;
  int64_t misses_ GUARDED_BY(mu_) = 0;
  int64_t evictions_ GUARDED_BY(mu_) = 0;
};

// Opens `path` as a binary stream for the writers above. Null on failure.
std::unique_ptr<std::ostream> OpenBlockFileForWrite(const std::string& path);
// Opens `path` as a binary stream for BlockFileReader. Null on failure.
std::unique_ptr<std::istream> OpenBlockFileForRead(const std::string& path);

}  // namespace focus::data

#endif  // FOCUS_DATA_BLOCK_STORE_H_

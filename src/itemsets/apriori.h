#ifndef FOCUS_ITEMSETS_APRIORI_H_
#define FOCUS_ITEMSETS_APRIORI_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/item_index.h"
#include "data/transaction_db.h"
#include "data/txn_source.h"
#include "itemsets/itemset.h"

namespace focus::lits {

// A lits-model (§2.2, §4.1): the set of frequent itemsets L^ms_D together
// with their supports. Structural component = the itemsets; measure
// component = the supports. This is the 2-component decomposition the
// FOCUS framework operates on.
class LitsModel {
 public:
  LitsModel() = default;
  LitsModel(double min_support, int64_t num_transactions, int32_t num_items);

  double min_support() const { return min_support_; }
  int64_t num_transactions() const { return num_transactions_; }
  int32_t num_items() const { return num_items_; }

  int64_t size() const { return static_cast<int64_t>(supports_.size()); }

  // Adds a frequent itemset with its relative support.
  void Add(Itemset itemset, double support);

  // Support of `itemset`, or `fallback` if it is not in the model.
  double SupportOr(const Itemset& itemset, double fallback) const;

  bool Contains(const Itemset& itemset) const;

  // The structural component Γ(M) in a deterministic (sorted) order.
  std::vector<Itemset> StructuralComponent() const;

  const std::unordered_map<Itemset, double, ItemsetHash>& supports() const {
    return supports_;
  }

 private:
  double min_support_ = 0.0;
  int64_t num_transactions_ = 0;
  int32_t num_items_ = 0;
  std::unordered_map<Itemset, double, ItemsetHash> supports_;
};

struct AprioriOptions {
  double min_support = 0.01;
  // Upper bound on frequent-itemset size; 0 means unbounded.
  int max_itemset_size = 0;
  // Floor on the absolute occurrence count an itemset needs, regardless
  // of min_support. Protects degenerate small databases (e.g. a 1%-of-D
  // sample in the Section 6 study, where min_support * |S| < 1 would make
  // every subset of every transaction "frequent" — a combinatorial
  // explosion the paper's 1M-transaction datasets never hit).
  int64_t min_absolute_count = 2;
};

// Classic Apriori (Agrawal & Srikant [5]): level-wise candidate
// generation with subset pruning, one counting scan per level.
//
// When `index` is non-empty it must be a vertical index (flat
// data::VerticalIndex or compressed data::RoaringIndex) built from `db`;
// every counting pass (the L1 item scan and each level's candidate scan)
// then runs against the per-item TID sets instead of re-scanning the raw
// transactions. Counts are identical integers either way, so the mined
// model is bit-identical to the horizontal one — the index only changes
// how fast the same supports are obtained, and it amortizes its single
// build scan across all levels (and across every other counting consumer
// of the same database).
LitsModel Apriori(const data::TransactionDb& db, const AprioriOptions& options,
                  data::ItemIndexRef index = {});

// The same miner over either transaction backend: block-backed sources
// stream each counting pass block by block in bounded memory (with the
// usual read-ahead), and the mined model is bit-identical to the in-memory
// run — every pass computes the same integer counts. With a prebuilt
// `index`, the raw transactions are only consulted for the database
// dimensions, so a 1M-transaction mine never materializes the database.
LitsModel Apriori(data::TxnSourceRef source, const AprioriOptions& options,
                  data::ItemIndexRef index = {});

// Reference miner for tests: enumerates and counts every itemset up to
// `max_size` by brute force. Exponential; only for tiny databases.
LitsModel BruteForceFrequentItemsets(const data::TransactionDb& db,
                                     double min_support, int max_size);

}  // namespace focus::lits

#endif  // FOCUS_ITEMSETS_APRIORI_H_

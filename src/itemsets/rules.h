#ifndef FOCUS_ITEMSETS_RULES_H_
#define FOCUS_ITEMSETS_RULES_H_

#include <string>
#include <vector>

#include "itemsets/apriori.h"
#include "itemsets/itemset.h"

namespace focus::lits {

// Association rules A => C derived from a lits-model (the second phase of
// Agrawal-Srikant [5]): for every frequent itemset X and non-empty proper
// subset A, confidence(A => X\A) = sup(X) / sup(A). All supports come
// from the model itself — anti-monotonicity guarantees every subset of a
// frequent itemset is in the model.
struct AssociationRule {
  Itemset antecedent;
  Itemset consequent;
  double support = 0.0;     // sup(A ∪ C)
  double confidence = 0.0;  // sup(A ∪ C) / sup(A)
  double lift = 0.0;        // confidence / sup(C)

  std::string ToString() const;
  // Rules are identified by their (antecedent, consequent) pair.
  bool SameRegionAs(const AssociationRule& other) const;
};

struct RuleOptions {
  double min_confidence = 0.5;
  // Itemsets larger than this are skipped (2^size subset enumeration).
  int max_itemset_size = 12;
};

// All rules meeting the confidence threshold, sorted by descending
// confidence then descending support (deterministic).
std::vector<AssociationRule> GenerateRules(const LitsModel& model,
                                           const RuleOptions& options);

// FOCUS over rule sets: a rule is a region identified by its
// (antecedent, consequent) pair whose measure is its CONFIDENCE under a
// model. The GCR of two rule sets is their union; a rule absent from a
// model gets the confidence its itemsets imply there (0 when the
// underlying itemsets fell below the support threshold). With f_a/g_sum
// this quantifies how much the implication structure — not just the
// supports — changed between two datasets.
double RuleDeviation(const std::vector<AssociationRule>& rules1,
                     const LitsModel& m1,
                     const std::vector<AssociationRule>& rules2,
                     const LitsModel& m2);

// Confidence of an arbitrary rule under a model; 0 when the union or the
// antecedent is not frequent in the model.
double ConfidenceUnder(const LitsModel& model, const Itemset& antecedent,
                       const Itemset& consequent);

}  // namespace focus::lits

#endif  // FOCUS_ITEMSETS_RULES_H_

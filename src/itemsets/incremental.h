#ifndef FOCUS_ITEMSETS_INCREMENTAL_H_
#define FOCUS_ITEMSETS_INCREMENTAL_H_

#include <cstdint>
#include <unordered_map>

#include "data/transaction_db.h"
#include "itemsets/apriori.h"
#include "itemsets/itemset.h"

namespace focus::lits {

// Incremental maintenance of a lits-model as the database grows by
// appended blocks — the FUP idea of Cheung et al. (ICDE'96), one of the
// incremental-maintenance works the paper's motivation builds on
// ("successive database snapshots overlap considerably").
//
// Invariant maintained after every Append: model() is EXACTLY the model
// Apriori would mine from the full database (tests assert equality).
//
// Per Append the work is:
//   1. one scan of the BLOCK to update the counts of tracked itemsets;
//   2. mining the BLOCK alone for "winner" candidates — an itemset that
//      was not frequent before can only become frequent overall if its
//      block count is at least (threshold_new - threshold_old + 1), so
//      mining the small block at that absolute floor yields a complete
//      candidate set (the classic FUP pruning);
//   3. one scan of the grown database restricted to the (usually few)
//      new candidates, to obtain their exact accumulated counts.
// No full re-MINING of the accumulated database ever happens;
// old_database_scans() reports how many candidate-count scans (step 3)
// were needed — 0 for appends that produce no new winner candidates.
class IncrementalMiner {
 public:
  IncrementalMiner(const data::TransactionDb& initial,
                   const AprioriOptions& options);

  // Appends `block` (same item universe) and updates the model.
  void Append(const data::TransactionDb& block);

  // The maintained model over everything appended so far.
  const LitsModel& model() const { return model_; }

  // The accumulated database (kept for GCR extension / deviation use).
  const data::TransactionDb& database() const { return database_; }

  int64_t old_database_scans() const { return old_database_scans_; }

 private:
  int64_t CurrentThreshold() const;
  void RebuildModel();

  AprioriOptions options_;
  data::TransactionDb database_;
  // Absolute occurrence counts of all currently frequent itemsets.
  std::unordered_map<Itemset, int64_t, ItemsetHash> counts_;
  LitsModel model_;
  int64_t old_database_scans_ = 0;
};

}  // namespace focus::lits

#endif  // FOCUS_ITEMSETS_INCREMENTAL_H_

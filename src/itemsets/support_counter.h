#ifndef FOCUS_ITEMSETS_SUPPORT_COUNTER_H_
#define FOCUS_ITEMSETS_SUPPORT_COUNTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/thread_pool.h"
#include "data/transaction_db.h"
#include "data/item_index.h"
#include "data/txn_source.h"
#include "itemsets/itemset.h"

namespace focus::lits {

// Counts the supports of an arbitrary collection of itemsets in ONE scan
// of the database — the primitive needed both by Apriori's counting passes
// and by the extension of a lits-model to a GCR (§3.3.1 of the paper:
// "both the datasets need to be scanned once").
//
// Two counting strategies, guaranteed bit-identical (integer counts):
//
//   * Horizontal: candidates are bucketed by their smallest item; a scan
//     marks the items of each transaction in a presence bitmap and probes
//     only the buckets of items that occur in the transaction.
//   * Vertical: a prebuilt index — the flat data::VerticalIndex or the
//     compressed data::RoaringIndex, taken through data::ItemIndexRef —
//     supplies per-item TID sets; each itemset's count is the popcount of
//     the AND of its members' bitmaps. The index is built in one scan and
//     amortized across every counting pass over the same database.
class SupportCounter {
 public:
  SupportCounter(std::span<const Itemset> itemsets, int32_t num_items);

  // Absolute occurrence counts, aligned with the constructor's itemsets.
  std::vector<int64_t> CountAbsolute(const data::TransactionDb& db) const;

  // Parallel CountAbsolute: shards the transaction scan across `pool`'s
  // workers into per-shard count vectors (each worker keeps its own
  // presence bitmap) and sums them in shard order. Counts are integers and
  // shard boundaries depend only on (|D|, pool size), so the result is
  // bit-identical to CountAbsolute.
  std::vector<int64_t> CountAbsoluteParallel(const data::TransactionDb& db,
                                             common::ThreadPool& pool) const;

  // Vertical counting path over a prebuilt index (flat or roaring) of the
  // same database: bit-identical to CountAbsolute(db) for an index built
  // from db, at every simd dispatch level.
  std::vector<int64_t> CountAbsolute(data::ItemIndexRef index) const;

  // Vertical counting parallelized over ITEMSETS (not transactions): each
  // itemset's AND+popcount chain is independent, so shards write disjoint
  // count slots and no merge is needed — trivially bit-identical to the
  // serial vertical path for every pool size.
  std::vector<int64_t> CountAbsoluteParallel(data::ItemIndexRef index,
                                             common::ThreadPool& pool) const;

  // Block-streaming horizontal counting over either transaction backend:
  // each decoded block IS a TransactionDb, so the same CountRange kernel
  // runs block by block and per-block counts sum — bit-identical to the
  // in-memory scan for every block size.
  std::vector<int64_t> CountAbsolute(data::TxnSourceRef source) const;

  // Parallel over BLOCK-ALIGNED shards on the block backend (per-shard
  // count vectors summed in shard order, like the transaction-sharded
  // path, which the in-memory backend falls back to). Shard boundaries
  // depend only on (num_blocks, pool size), so this too is bit-identical
  // to CountAbsolute(source).
  std::vector<int64_t> CountAbsoluteParallel(data::TxnSourceRef source,
                                             common::ThreadPool& pool) const;

  // Relative supports (counts / |D|).
  std::vector<double> CountRelative(const data::TransactionDb& db) const;
  std::vector<double> CountRelativeParallel(const data::TransactionDb& db,
                                            common::ThreadPool& pool) const;
  std::vector<double> CountRelative(data::ItemIndexRef index) const;
  std::vector<double> CountRelativeParallel(data::ItemIndexRef index,
                                            common::ThreadPool& pool) const;
  std::vector<double> CountRelative(data::TxnSourceRef source) const;
  std::vector<double> CountRelativeParallel(data::TxnSourceRef source,
                                            common::ThreadPool& pool) const;

 private:
  // Accumulates counts over transactions [begin, end) into `counts`.
  void CountRange(const data::TransactionDb& db, int64_t begin, int64_t end,
                  std::vector<int64_t>& counts) const;

  // Fills `counts` for itemsets [begin, end) from the vertical index.
  void CountVerticalRange(data::ItemIndexRef index, int64_t begin,
                          int64_t end, std::vector<int64_t>& counts) const;

  int32_t num_items_;
  std::vector<const Itemset*> itemsets_;
  // buckets_[item] lists indices of itemsets whose smallest item == item.
  std::vector<std::vector<int32_t>> buckets_;
  // Indices of empty itemsets (support 1 by definition).
  std::vector<int32_t> empty_itemsets_;
};

// One-call convenience wrapper.
std::vector<double> CountSupports(const data::TransactionDb& db,
                                  std::span<const Itemset> itemsets);

}  // namespace focus::lits

#endif  // FOCUS_ITEMSETS_SUPPORT_COUNTER_H_

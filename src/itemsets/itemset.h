#ifndef FOCUS_ITEMSETS_ITEMSET_H_
#define FOCUS_ITEMSETS_ITEMSET_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace focus::lits {

// An itemset X ⊆ I: a sorted vector of distinct item ids. In the FOCUS
// framework an itemset identifies a region of the attribute space (the
// transactions containing X) whose measure is the support of X (§2.2).
class Itemset {
 public:
  Itemset() = default;
  // `items` need not be sorted; duplicates are removed.
  explicit Itemset(std::vector<int32_t> items);
  Itemset(std::initializer_list<int32_t> items);

  int size() const { return static_cast<int>(items_.size()); }
  bool empty() const { return items_.empty(); }
  const std::vector<int32_t>& items() const { return items_; }
  int32_t item(int i) const { return items_[i]; }

  // True iff every item of this set appears in `sorted_items` (ascending).
  bool IsSubsetOfSorted(std::span<const int32_t> sorted_items) const;

  // True iff every item of `other` is in this itemset.
  bool Contains(const Itemset& other) const;

  // Set union (used for region algebra over itemset collections).
  Itemset Union(const Itemset& other) const;

  // True iff all items are < `num_items` — i.e. drawn from the universe.
  bool WithinUniverse(int32_t num_items) const;

  // The itemset with item `i` removed (precondition: present).
  Itemset Without(int32_t item) const;

  std::string ToString() const;

  bool operator==(const Itemset& other) const { return items_ == other.items_; }
  bool operator<(const Itemset& other) const;  // size-then-lexicographic

 private:
  std::vector<int32_t> items_;
};

struct ItemsetHash {
  size_t operator()(const Itemset& itemset) const;
};

}  // namespace focus::lits

#endif  // FOCUS_ITEMSETS_ITEMSET_H_

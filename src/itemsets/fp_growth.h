#ifndef FOCUS_ITEMSETS_FP_GROWTH_H_
#define FOCUS_ITEMSETS_FP_GROWTH_H_

#include "data/transaction_db.h"
#include "itemsets/apriori.h"

namespace focus::lits {

// FP-Growth (Han, Pei & Yin, SIGMOD 2000): frequent-itemset mining
// without candidate generation. Transactions are compressed into a
// prefix tree (FP-tree) ordered by descending item frequency; frequent
// itemsets are enumerated by recursively building conditional trees.
//
// Produces exactly the same LitsModel as Apriori (tests assert this);
// included as the production-grade miner for dense databases where
// Apriori's candidate sets explode. AprioriOptions is reused so the
// two miners are drop-in interchangeable:
//   * min_support / min_absolute_count — same count threshold semantics
//   * max_itemset_size                 — bounds the recursion depth
LitsModel FpGrowth(const data::TransactionDb& db, const AprioriOptions& options);

}  // namespace focus::lits

#endif  // FOCUS_ITEMSETS_FP_GROWTH_H_

#include "itemsets/incremental.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "itemsets/support_counter.h"

namespace focus::lits {

IncrementalMiner::IncrementalMiner(const data::TransactionDb& initial,
                                   const AprioriOptions& options)
    : options_(options), database_(initial) {
  const LitsModel seed = Apriori(database_, options_);
  const double n = static_cast<double>(database_.num_transactions());
  for (const auto& [itemset, support] : seed.supports()) {
    counts_[itemset] = static_cast<int64_t>(std::llround(support * n));
  }
  RebuildModel();
}

int64_t IncrementalMiner::CurrentThreshold() const {
  const double n = static_cast<double>(database_.num_transactions());
  return std::max<int64_t>(
      options_.min_absolute_count,
      static_cast<int64_t>(std::ceil(options_.min_support * n - 1e-9)));
}

void IncrementalMiner::Append(const data::TransactionDb& block) {
  FOCUS_CHECK_EQ(block.num_items(), database_.num_items());
  FOCUS_CHECK_GT(block.num_transactions(), 0);
  const int64_t old_threshold = CurrentThreshold();

  // (1) Update tracked counts with one scan of the block.
  std::vector<Itemset> tracked;
  tracked.reserve(counts_.size());
  for (const auto& [itemset, count] : counts_) tracked.push_back(itemset);
  // counts_ iterates in hash order; sort so every scan batch (and any
  // instrumentation keyed on it) sees the same canonical order.
  std::sort(tracked.begin(), tracked.end());
  if (!tracked.empty()) {
    const SupportCounter counter(tracked, block.num_items());
    const std::vector<int64_t> block_counts = counter.CountAbsolute(block);
    for (size_t i = 0; i < tracked.size(); ++i) {
      counts_[tracked[i]] += block_counts[i];
    }
  }

  database_.Append(block);
  const int64_t new_threshold = CurrentThreshold();

  // (2) Winner candidates: itemsets not tracked before can only be
  // frequent now if their block count reaches this floor.
  const int64_t winner_floor =
      std::max<int64_t>(1, new_threshold - (old_threshold - 1));
  AprioriOptions block_mining = options_;
  block_mining.min_support = 1e-12;  // threshold driven by the floor below
  block_mining.min_absolute_count = winner_floor;
  const LitsModel block_model = Apriori(block, block_mining);

  std::vector<Itemset> candidates;
  for (const auto& [itemset, support] : block_model.supports()) {
    if (counts_.count(itemset)) continue;  // already tracked
    candidates.push_back(itemset);
  }
  std::sort(candidates.begin(), candidates.end());  // canonical scan order

  // (3) Exact accumulated counts for the candidates: one scan of the
  // grown database, only when there are candidates at all.
  if (!candidates.empty()) {
    const SupportCounter counter(candidates, database_.num_items());
    const std::vector<int64_t> totals = counter.CountAbsolute(database_);
    ++old_database_scans_;
    for (size_t i = 0; i < candidates.size(); ++i) {
      if (totals[i] >= new_threshold) {
        counts_[candidates[i]] = totals[i];
      }
    }
  }

  // Drop losers (frequent before, below the new threshold now). NOTE:
  // anti-monotonicity keeps the tracked set downward closed — a subset
  // always has a count >= its superset's, so it can only be dropped if
  // the superset is dropped too.
  for (auto it = counts_.begin(); it != counts_.end();) {
    if (it->second < new_threshold) {
      it = counts_.erase(it);
    } else {
      ++it;
    }
  }
  RebuildModel();
}

void IncrementalMiner::RebuildModel() {
  model_ = LitsModel(options_.min_support, database_.num_transactions(),
                     database_.num_items());
  const double n = static_cast<double>(database_.num_transactions());
  for (const auto& [itemset, count] : counts_) {
    model_.Add(itemset, static_cast<double>(count) / n);
  }
}

}  // namespace focus::lits

#include "itemsets/itemset.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace focus::lits {

Itemset::Itemset(std::vector<int32_t> items) : items_(std::move(items)) {
  std::sort(items_.begin(), items_.end());
  items_.erase(std::unique(items_.begin(), items_.end()), items_.end());
}

Itemset::Itemset(std::initializer_list<int32_t> items)
    : Itemset(std::vector<int32_t>(items)) {}

bool Itemset::IsSubsetOfSorted(std::span<const int32_t> sorted_items) const {
  size_t j = 0;
  for (int32_t needed : items_) {
    while (j < sorted_items.size() && sorted_items[j] < needed) ++j;
    if (j == sorted_items.size() || sorted_items[j] != needed) return false;
    ++j;
  }
  return true;
}

bool Itemset::Contains(const Itemset& other) const {
  return other.IsSubsetOfSorted(items_);
}

Itemset Itemset::Union(const Itemset& other) const {
  std::vector<int32_t> merged;
  merged.reserve(items_.size() + other.items_.size());
  std::set_union(items_.begin(), items_.end(), other.items_.begin(),
                 other.items_.end(), std::back_inserter(merged));
  Itemset result;
  result.items_ = std::move(merged);
  return result;
}

bool Itemset::WithinUniverse(int32_t num_items) const {
  for (int32_t item : items_) {
    if (item < 0 || item >= num_items) return false;
  }
  return true;
}

Itemset Itemset::Without(int32_t item) const {
  Itemset result = *this;
  auto it = std::find(result.items_.begin(), result.items_.end(), item);
  FOCUS_CHECK(it != result.items_.end());
  result.items_.erase(it);
  return result;
}

std::string Itemset::ToString() const {
  std::ostringstream out;
  out << '{';
  for (size_t i = 0; i < items_.size(); ++i) {
    if (i > 0) out << ',';
    out << items_[i];
  }
  out << '}';
  return out.str();
}

bool Itemset::operator<(const Itemset& other) const {
  if (items_.size() != other.items_.size()) {
    return items_.size() < other.items_.size();
  }
  return items_ < other.items_;
}

size_t ItemsetHash::operator()(const Itemset& itemset) const {
  // FNV-1a over the item ids.
  uint64_t h = 1469598103934665603ULL;
  for (int32_t item : itemset.items()) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(item));
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h);
}

}  // namespace focus::lits

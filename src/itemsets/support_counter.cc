#include "itemsets/support_counter.h"

#include "common/check.h"

namespace focus::lits {

SupportCounter::SupportCounter(std::span<const Itemset> itemsets,
                               int32_t num_items)
    : num_items_(num_items), buckets_(num_items) {
  itemsets_.reserve(itemsets.size());
  for (size_t i = 0; i < itemsets.size(); ++i) {
    const Itemset& itemset = itemsets[i];
    FOCUS_CHECK(itemset.WithinUniverse(num_items))
        << "itemset " << itemset.ToString() << " outside universe of "
        << num_items << " items";
    itemsets_.push_back(&itemset);
    if (itemset.empty()) {
      empty_itemsets_.push_back(static_cast<int32_t>(i));
    } else {
      buckets_[itemset.item(0)].push_back(static_cast<int32_t>(i));
    }
  }
}

void SupportCounter::CountRange(const data::TransactionDb& db, int64_t begin,
                                int64_t end,
                                std::vector<int64_t>& counts) const {
  // The empty itemset holds in every transaction of the range.
  for (int32_t i : empty_itemsets_) counts[i] += end - begin;

  std::vector<uint8_t> present(num_items_, 0);
  for (int64_t t = begin; t < end; ++t) {
    const auto txn = db.Transaction(t);
    for (int32_t item : txn) present[item] = 1;
    int32_t previous_item = -1;
    for (int32_t item : txn) {
      // TransactionDb guarantees sorted-unique transactions, but a
      // repeated item here would probe its bucket twice and double-count
      // every candidate anchored at it — guard rather than trust callers
      // that bypass AddTransaction's dedup (none exist today).
      if (item == previous_item) continue;
      previous_item = item;
      for (int32_t candidate_index : buckets_[item]) {
        const Itemset& candidate = *itemsets_[candidate_index];
        bool all_present = true;
        for (int32_t member : candidate.items()) {
          if (!present[member]) {
            all_present = false;
            break;
          }
        }
        if (all_present) ++counts[candidate_index];
      }
    }
    for (int32_t item : txn) present[item] = 0;
  }
}

std::vector<int64_t> SupportCounter::CountAbsolute(
    const data::TransactionDb& db) const {
  FOCUS_CHECK_EQ(db.num_items(), num_items_);
  std::vector<int64_t> counts(itemsets_.size(), 0);
  CountRange(db, 0, db.num_transactions(), counts);
  return counts;
}

std::vector<int64_t> SupportCounter::CountAbsoluteParallel(
    const data::TransactionDb& db, common::ThreadPool& pool) const {
  FOCUS_CHECK_EQ(db.num_items(), num_items_);
  const int num_shards = pool.num_threads();
  std::vector<std::vector<int64_t>> shard_counts(
      num_shards, std::vector<int64_t>(itemsets_.size(), 0));
  pool.ParallelFor(0, db.num_transactions(), num_shards,
                   [&](int shard, int64_t begin, int64_t end) {
                     CountRange(db, begin, end, shard_counts[shard]);
                   });
  std::vector<int64_t> counts(itemsets_.size(), 0);
  for (const std::vector<int64_t>& shard : shard_counts) {
    for (size_t i = 0; i < counts.size(); ++i) counts[i] += shard[i];
  }
  return counts;
}

void SupportCounter::CountVerticalRange(data::ItemIndexRef index,
                                        int64_t begin, int64_t end,
                                        std::vector<int64_t>& counts) const {
  for (int64_t i = begin; i < end; ++i) {
    counts[i] = index.CountIntersection(itemsets_[i]->items());
  }
}

std::vector<int64_t> SupportCounter::CountAbsolute(
    data::ItemIndexRef index) const {
  FOCUS_CHECK_EQ(index.num_items(), num_items_);
  std::vector<int64_t> counts(itemsets_.size(), 0);
  CountVerticalRange(index, 0, static_cast<int64_t>(itemsets_.size()), counts);
  return counts;
}

std::vector<int64_t> SupportCounter::CountAbsoluteParallel(
    data::ItemIndexRef index, common::ThreadPool& pool) const {
  FOCUS_CHECK_EQ(index.num_items(), num_items_);
  std::vector<int64_t> counts(itemsets_.size(), 0);
  // Shards write disjoint slots of `counts`; each slot's value depends
  // only on the index, so this equals the serial vertical path exactly.
  pool.ParallelFor(0, static_cast<int64_t>(itemsets_.size()),
                   pool.num_threads(),
                   [&](int /*shard*/, int64_t begin, int64_t end) {
                     CountVerticalRange(index, begin, end, counts);
                   });
  return counts;
}

std::vector<int64_t> SupportCounter::CountAbsolute(
    data::TxnSourceRef source) const {
  FOCUS_CHECK_EQ(source.num_items(), num_items_);
  std::vector<int64_t> counts(itemsets_.size(), 0);
  source.ForEachBlock(
      [&](int64_t /*first_txn*/, const data::TransactionDb& block) {
        CountRange(block, 0, block.num_transactions(), counts);
      });
  return counts;
}

std::vector<int64_t> SupportCounter::CountAbsoluteParallel(
    data::TxnSourceRef source, common::ThreadPool& pool) const {
  if (source.backend() == data::TxnBackend::kMemory) {
    // One block == the whole database: the transaction-sharded path
    // parallelizes better than block shards ever could here.
    return CountAbsoluteParallel(*source.memory(), pool);
  }
  FOCUS_CHECK_EQ(source.num_items(), num_items_);
  const int num_shards = pool.num_threads();
  std::vector<std::vector<int64_t>> shard_counts(
      num_shards, std::vector<int64_t>(itemsets_.size(), 0));
  pool.ParallelFor(0, source.num_blocks(), num_shards,
                   [&](int shard, int64_t begin, int64_t end) {
                     for (int64_t b = begin; b < end; ++b) {
                       const data::TxnSourceRef::BlockView view =
                           source.GetBlock(b);
                       CountRange(*view.db, 0, view.db->num_transactions(),
                                  shard_counts[shard]);
                     }
                   });
  std::vector<int64_t> counts(itemsets_.size(), 0);
  for (const std::vector<int64_t>& shard : shard_counts) {
    for (size_t i = 0; i < counts.size(); ++i) counts[i] += shard[i];
  }
  return counts;
}

namespace {

std::vector<double> ToRelative(const std::vector<int64_t>& absolute,
                               int64_t num_transactions) {
  std::vector<double> relative(absolute.size());
  const double n = static_cast<double>(num_transactions);
  FOCUS_CHECK_GT(n, 0.0);
  for (size_t i = 0; i < absolute.size(); ++i) {
    relative[i] = static_cast<double>(absolute[i]) / n;
  }
  return relative;
}

}  // namespace

std::vector<double> SupportCounter::CountRelative(
    const data::TransactionDb& db) const {
  return ToRelative(CountAbsolute(db), db.num_transactions());
}

std::vector<double> SupportCounter::CountRelativeParallel(
    const data::TransactionDb& db, common::ThreadPool& pool) const {
  return ToRelative(CountAbsoluteParallel(db, pool), db.num_transactions());
}

std::vector<double> SupportCounter::CountRelative(
    data::ItemIndexRef index) const {
  return ToRelative(CountAbsolute(index), index.num_transactions());
}

std::vector<double> SupportCounter::CountRelativeParallel(
    data::ItemIndexRef index, common::ThreadPool& pool) const {
  return ToRelative(CountAbsoluteParallel(index, pool), index.num_transactions());
}

std::vector<double> SupportCounter::CountRelative(
    data::TxnSourceRef source) const {
  return ToRelative(CountAbsolute(source), source.num_transactions());
}

std::vector<double> SupportCounter::CountRelativeParallel(
    data::TxnSourceRef source, common::ThreadPool& pool) const {
  return ToRelative(CountAbsoluteParallel(source, pool),
                    source.num_transactions());
}

std::vector<double> CountSupports(const data::TransactionDb& db,
                                  std::span<const Itemset> itemsets) {
  return SupportCounter(itemsets, db.num_items()).CountRelative(db);
}

}  // namespace focus::lits

#include "itemsets/support_counter.h"

#include "common/check.h"

namespace focus::lits {

SupportCounter::SupportCounter(std::span<const Itemset> itemsets,
                               int32_t num_items)
    : num_items_(num_items), buckets_(num_items) {
  itemsets_.reserve(itemsets.size());
  for (size_t i = 0; i < itemsets.size(); ++i) {
    const Itemset& itemset = itemsets[i];
    FOCUS_CHECK(itemset.WithinUniverse(num_items))
        << "itemset " << itemset.ToString() << " outside universe of "
        << num_items << " items";
    itemsets_.push_back(&itemset);
    if (itemset.empty()) {
      empty_itemsets_.push_back(static_cast<int32_t>(i));
    } else {
      buckets_[itemset.item(0)].push_back(static_cast<int32_t>(i));
    }
  }
}

std::vector<int64_t> SupportCounter::CountAbsolute(
    const data::TransactionDb& db) const {
  FOCUS_CHECK_EQ(db.num_items(), num_items_);
  std::vector<int64_t> counts(itemsets_.size(), 0);
  // The empty itemset holds in every transaction.
  for (int32_t i : empty_itemsets_) counts[i] = db.num_transactions();

  std::vector<uint8_t> present(num_items_, 0);
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    const auto txn = db.Transaction(t);
    for (int32_t item : txn) present[item] = 1;
    for (int32_t item : txn) {
      for (int32_t candidate_index : buckets_[item]) {
        const Itemset& candidate = *itemsets_[candidate_index];
        bool all_present = true;
        for (int32_t member : candidate.items()) {
          if (!present[member]) {
            all_present = false;
            break;
          }
        }
        if (all_present) ++counts[candidate_index];
      }
    }
    for (int32_t item : txn) present[item] = 0;
  }
  return counts;
}

std::vector<double> SupportCounter::CountRelative(
    const data::TransactionDb& db) const {
  const std::vector<int64_t> absolute = CountAbsolute(db);
  std::vector<double> relative(absolute.size());
  const double n = static_cast<double>(db.num_transactions());
  FOCUS_CHECK_GT(n, 0.0);
  for (size_t i = 0; i < absolute.size(); ++i) {
    relative[i] = static_cast<double>(absolute[i]) / n;
  }
  return relative;
}

std::vector<double> CountSupports(const data::TransactionDb& db,
                                  std::span<const Itemset> itemsets) {
  return SupportCounter(itemsets, db.num_items()).CountRelative(db);
}

}  // namespace focus::lits

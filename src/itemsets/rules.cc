#include "itemsets/rules.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>
#include <utility>

#include "common/check.h"

namespace focus::lits {

std::string AssociationRule::ToString() const {
  std::ostringstream out;
  out << antecedent.ToString() << " => " << consequent.ToString()
      << " (sup " << support << ", conf " << confidence << ", lift " << lift
      << ")";
  return out.str();
}

bool AssociationRule::SameRegionAs(const AssociationRule& other) const {
  return antecedent == other.antecedent && consequent == other.consequent;
}

std::vector<AssociationRule> GenerateRules(const LitsModel& model,
                                           const RuleOptions& options) {
  FOCUS_CHECK_GT(options.min_confidence, 0.0);
  FOCUS_CHECK_LE(options.min_confidence, 1.0);
  std::vector<AssociationRule> rules;

  for (const auto& [itemset, support] : model.supports()) {
    const int k = itemset.size();
    if (k < 2 || k > options.max_itemset_size) continue;
    // Enumerate non-empty proper subsets as antecedents.
    const uint32_t full = (1u << k) - 1u;
    for (uint32_t mask = 1; mask < full; ++mask) {
      std::vector<int32_t> antecedent_items;
      std::vector<int32_t> consequent_items;
      for (int i = 0; i < k; ++i) {
        if (mask & (1u << i)) {
          antecedent_items.push_back(itemset.item(i));
        } else {
          consequent_items.push_back(itemset.item(i));
        }
      }
      AssociationRule rule;
      rule.antecedent = Itemset(std::move(antecedent_items));
      rule.consequent = Itemset(std::move(consequent_items));
      const double antecedent_support = model.SupportOr(rule.antecedent, -1.0);
      FOCUS_CHECK_GT(antecedent_support, 0.0)
          << "anti-monotonicity violated for " << rule.antecedent.ToString();
      rule.support = support;
      rule.confidence = support / antecedent_support;
      if (rule.confidence < options.min_confidence) continue;
      const double consequent_support = model.SupportOr(rule.consequent, -1.0);
      rule.lift = consequent_support > 0.0
                      ? rule.confidence / consequent_support
                      : 0.0;
      rules.push_back(std::move(rule));
    }
  }
  std::sort(rules.begin(), rules.end(),
            [](const AssociationRule& a, const AssociationRule& b) {
              if (a.confidence != b.confidence) {
                return a.confidence > b.confidence;
              }
              if (a.support != b.support) return a.support > b.support;
              if (!(a.antecedent == b.antecedent)) {
                return a.antecedent < b.antecedent;
              }
              return a.consequent < b.consequent;
            });
  return rules;
}

double ConfidenceUnder(const LitsModel& model, const Itemset& antecedent,
                       const Itemset& consequent) {
  const double antecedent_support = model.SupportOr(antecedent, 0.0);
  if (antecedent_support <= 0.0) return 0.0;
  const double union_support =
      model.SupportOr(antecedent.Union(consequent), 0.0);
  return union_support / antecedent_support;
}

double RuleDeviation(const std::vector<AssociationRule>& rules1,
                     const LitsModel& m1,
                     const std::vector<AssociationRule>& rules2,
                     const LitsModel& m2) {
  // GCR: the union of the two rule sets, keyed by (antecedent,
  // consequent).
  std::map<std::pair<Itemset, Itemset>, std::pair<double, double>> regions;
  for (const AssociationRule& rule : rules1) {
    regions[{rule.antecedent, rule.consequent}].first = rule.confidence;
  }
  for (const AssociationRule& rule : rules2) {
    regions[{rule.antecedent, rule.consequent}].second = rule.confidence;
  }
  double total = 0.0;
  for (auto& [key, confidences] : regions) {
    // Extend the models: a rule missing from one side gets the confidence
    // that side's model implies (0 when its itemsets are not frequent).
    if (confidences.first == 0.0) {
      confidences.first = ConfidenceUnder(m1, key.first, key.second);
    }
    if (confidences.second == 0.0) {
      confidences.second = ConfidenceUnder(m2, key.first, key.second);
    }
    total += std::fabs(confidences.first - confidences.second);
  }
  return total;
}

}  // namespace focus::lits

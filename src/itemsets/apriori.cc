#include "itemsets/apriori.h"

#include <algorithm>
#include <cmath>
#include <span>

#include "common/check.h"
#include "itemsets/support_counter.h"

namespace focus::lits {
namespace {

// Apriori-gen: joins pairs of frequent (k-1)-itemsets sharing their first
// k-2 items, then prunes candidates with an infrequent (k-1)-subset.
std::vector<Itemset> GenerateCandidates(const std::vector<Itemset>& frequent) {
  std::vector<Itemset> candidates;
  if (frequent.empty()) return candidates;
  const int k_minus_1 = frequent[0].size();

  // `frequent` is sorted lexicographically, so joinable prefixes are
  // contiguous.
  std::unordered_map<Itemset, bool, ItemsetHash> frequent_lookup;
  frequent_lookup.reserve(frequent.size() * 2);
  for (const Itemset& itemset : frequent) frequent_lookup[itemset] = true;

  for (size_t i = 0; i < frequent.size(); ++i) {
    for (size_t j = i + 1; j < frequent.size(); ++j) {
      const auto& a = frequent[i].items();
      const auto& b = frequent[j].items();
      bool shared_prefix = true;
      for (int p = 0; p < k_minus_1 - 1; ++p) {
        if (a[p] != b[p]) {
          shared_prefix = false;
          break;
        }
      }
      if (!shared_prefix) break;  // prefixes are contiguous in sorted order

      std::vector<int32_t> joined = a;
      joined.push_back(b[k_minus_1 - 1]);
      Itemset candidate(std::move(joined));

      // Prune: all (k-1)-subsets must be frequent.
      bool all_subsets_frequent = true;
      for (int32_t item : candidate.items()) {
        if (!frequent_lookup.count(candidate.Without(item))) {
          all_subsets_frequent = false;
          break;
        }
      }
      if (all_subsets_frequent) candidates.push_back(std::move(candidate));
    }
  }
  return candidates;
}

}  // namespace

LitsModel::LitsModel(double min_support, int64_t num_transactions,
                     int32_t num_items)
    : min_support_(min_support),
      num_transactions_(num_transactions),
      num_items_(num_items) {}

void LitsModel::Add(Itemset itemset, double support) {
  FOCUS_CHECK_GE(support, 0.0);
  FOCUS_CHECK_LE(support, 1.0);
  supports_[std::move(itemset)] = support;
}

double LitsModel::SupportOr(const Itemset& itemset, double fallback) const {
  const auto it = supports_.find(itemset);
  return it == supports_.end() ? fallback : it->second;
}

bool LitsModel::Contains(const Itemset& itemset) const {
  return supports_.count(itemset) > 0;
}

std::vector<Itemset> LitsModel::StructuralComponent() const {
  std::vector<Itemset> itemsets;
  itemsets.reserve(supports_.size());
  for (const auto& [itemset, support] : supports_) itemsets.push_back(itemset);
  std::sort(itemsets.begin(), itemsets.end());
  return itemsets;
}

LitsModel Apriori(const data::TransactionDb& db, const AprioriOptions& options,
                  data::ItemIndexRef index) {
  return Apriori(data::TxnSourceRef(db), options, index);
}

LitsModel Apriori(data::TxnSourceRef source, const AprioriOptions& options,
                  data::ItemIndexRef index) {
  FOCUS_CHECK_GT(options.min_support, 0.0);
  FOCUS_CHECK_LE(options.min_support, 1.0);
  const int32_t num_items = source.num_items();
  const int64_t num_transactions = source.num_transactions();
  FOCUS_CHECK_GT(num_transactions, 0);
  if (index.has_value()) {
    FOCUS_CHECK_EQ(index.num_items(), num_items);
    FOCUS_CHECK_EQ(index.num_transactions(), num_transactions);
  }

  LitsModel model(options.min_support, num_transactions, num_items);
  const double n = static_cast<double>(num_transactions);
  // Count threshold: the support cutoff, floored by min_absolute_count.
  const int64_t threshold = std::max<int64_t>(
      options.min_absolute_count,
      static_cast<int64_t>(std::ceil(options.min_support * n - 1e-9)));

  // L1: per-item counts — cached popcounts when the index is prebuilt,
  // otherwise one scan.
  std::vector<int64_t> item_counts(num_items, 0);
  if (index.has_value()) {
    for (int32_t item = 0; item < num_items; ++item) {
      item_counts[item] = index.ItemCount(item);
    }
  } else {
    source.ForEachTransaction(
        [&](int64_t /*tid*/, std::span<const int32_t> items) {
          for (int32_t item : items) ++item_counts[item];
        });
  }
  std::vector<Itemset> frequent;
  for (int32_t item = 0; item < num_items; ++item) {
    const double support = static_cast<double>(item_counts[item]) / n;
    if (item_counts[item] >= threshold) {
      Itemset single({item});
      model.Add(single, support);
      frequent.push_back(std::move(single));
    }
  }
  std::sort(frequent.begin(), frequent.end());

  // Level-wise passes.
  int k = 2;
  while (!frequent.empty() &&
         (options.max_itemset_size == 0 || k <= options.max_itemset_size)) {
    const std::vector<Itemset> candidates = GenerateCandidates(frequent);
    if (candidates.empty()) break;
    const SupportCounter counter(candidates, num_items);
    const std::vector<int64_t> counts = index.has_value()
                                            ? counter.CountAbsolute(index)
                                            : counter.CountAbsolute(source);

    std::vector<Itemset> next_frequent;
    for (size_t i = 0; i < candidates.size(); ++i) {
      const double support = static_cast<double>(counts[i]) / n;
      if (counts[i] >= threshold) {
        model.Add(candidates[i], support);
        next_frequent.push_back(candidates[i]);
      }
    }
    std::sort(next_frequent.begin(), next_frequent.end());
    frequent = std::move(next_frequent);
    ++k;
  }
  return model;
}

LitsModel BruteForceFrequentItemsets(const data::TransactionDb& db,
                                     double min_support, int max_size) {
  FOCUS_CHECK_LE(db.num_items(), 24) << "brute force is for tiny universes";
  LitsModel model(min_support, db.num_transactions(), db.num_items());
  const double n = static_cast<double>(db.num_transactions());

  const uint32_t universe = 1u << db.num_items();
  for (uint32_t mask = 1; mask < universe; ++mask) {
    if (max_size > 0 && __builtin_popcount(mask) > max_size) continue;
    std::vector<int32_t> items;
    for (int32_t i = 0; i < db.num_items(); ++i) {
      if (mask & (1u << i)) items.push_back(i);
    }
    Itemset itemset(std::move(items));
    int64_t count = 0;
    for (int64_t t = 0; t < db.num_transactions(); ++t) {
      if (itemset.IsSubsetOfSorted(db.Transaction(t))) ++count;
    }
    const double support = static_cast<double>(count) / n;
    if (support >= min_support) model.Add(std::move(itemset), support);
  }
  return model;
}

}  // namespace focus::lits

#include "itemsets/fp_growth.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <vector>

#include "common/check.h"

namespace focus::lits {
namespace {

// A weighted transaction: items (in global frequency-rank order) plus the
// number of original transactions it stands for.
struct WeightedPath {
  std::vector<int32_t> items;
  int64_t weight = 1;
};

// Prefix tree over rank-ordered item lists. Node 0 is the root.
class FpTree {
 public:
  struct Node {
    int32_t item = -1;
    int64_t count = 0;
    int parent = -1;
    // Children keyed by item id (few per node in practice).
    std::unordered_map<int32_t, int> children;
  };

  FpTree() { nodes_.push_back(Node{}); }

  void Insert(const std::vector<int32_t>& items, int64_t weight) {
    int current = 0;
    for (int32_t item : items) {
      Node& node = nodes_[current];
      const auto it = node.children.find(item);
      int child;
      if (it == node.children.end()) {
        child = static_cast<int>(nodes_.size());
        node.children.emplace(item, child);
        Node fresh;
        fresh.item = item;
        fresh.parent = current;
        nodes_.push_back(std::move(fresh));
        item_nodes_[item].push_back(child);
      } else {
        child = it->second;
      }
      nodes_[child].count += weight;
      current = child;
    }
  }

  bool empty() const { return nodes_.size() == 1; }

  // Items present in the tree with their total counts.
  const std::unordered_map<int32_t, std::vector<int>>& item_nodes() const {
    return item_nodes_;
  }

  const Node& node(int index) const { return nodes_[index]; }

  // Total occurrence count of `item` in this tree.
  int64_t CountOf(int32_t item) const {
    const auto it = item_nodes_.find(item);
    if (it == item_nodes_.end()) return 0;
    int64_t total = 0;
    for (int node_index : it->second) total += nodes_[node_index].count;
    return total;
  }

  // The conditional pattern base of `item`: for every node holding it,
  // the path of ancestor items (rank order preserved) weighted by the
  // node's count.
  std::vector<WeightedPath> ConditionalPaths(int32_t item) const {
    std::vector<WeightedPath> paths;
    const auto it = item_nodes_.find(item);
    if (it == item_nodes_.end()) return paths;
    for (int node_index : it->second) {
      WeightedPath path;
      path.weight = nodes_[node_index].count;
      int current = nodes_[node_index].parent;
      while (current != 0) {
        path.items.push_back(nodes_[current].item);
        current = nodes_[current].parent;
      }
      if (path.items.empty()) continue;
      std::reverse(path.items.begin(), path.items.end());
      paths.push_back(std::move(path));
    }
    return paths;
  }

 private:
  std::vector<Node> nodes_;
  std::unordered_map<int32_t, std::vector<int>> item_nodes_;
};

// Builds an FP-tree from weighted paths, keeping only items whose
// conditional count reaches the threshold.
FpTree BuildConditionalTree(const std::vector<WeightedPath>& paths,
                            int64_t threshold) {
  std::unordered_map<int32_t, int64_t> counts;
  for (const WeightedPath& path : paths) {
    for (int32_t item : path.items) counts[item] += path.weight;
  }
  FpTree tree;
  std::vector<int32_t> filtered;
  for (const WeightedPath& path : paths) {
    filtered.clear();
    for (int32_t item : path.items) {
      if (counts[item] >= threshold) filtered.push_back(item);
    }
    if (!filtered.empty()) tree.Insert(filtered, path.weight);
  }
  return tree;
}

// Recursive FP-Growth: emit (suffix + item) for every item frequent in
// `tree`, then recurse into the item's conditional tree.
void Mine(const FpTree& tree, const std::vector<int32_t>& suffix,
          int64_t threshold, int max_size, double n, LitsModel* model) {
  for (const auto& [item, nodes] : tree.item_nodes()) {
    const int64_t count = tree.CountOf(item);
    if (count < threshold) continue;
    std::vector<int32_t> itemset = suffix;
    itemset.push_back(item);
    model->Add(Itemset(itemset), static_cast<double>(count) / n);
    if (max_size > 0 && static_cast<int>(itemset.size()) >= max_size) continue;
    const FpTree conditional =
        BuildConditionalTree(tree.ConditionalPaths(item), threshold);
    if (!conditional.empty()) {
      Mine(conditional, itemset, threshold, max_size, n, model);
    }
  }
}

}  // namespace

LitsModel FpGrowth(const data::TransactionDb& db,
                   const AprioriOptions& options) {
  FOCUS_CHECK_GT(options.min_support, 0.0);
  FOCUS_CHECK_LE(options.min_support, 1.0);
  FOCUS_CHECK_GT(db.num_transactions(), 0);

  const double n = static_cast<double>(db.num_transactions());
  const int64_t threshold = std::max<int64_t>(
      options.min_absolute_count,
      static_cast<int64_t>(std::ceil(options.min_support * n - 1e-9)));

  // Pass 1: item counts; derive the global frequency rank.
  std::vector<int64_t> item_counts(db.num_items(), 0);
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    for (int32_t item : db.Transaction(t)) ++item_counts[item];
  }
  std::vector<int32_t> rank_of(db.num_items(), -1);
  {
    std::vector<int32_t> frequent_items;
    for (int32_t item = 0; item < db.num_items(); ++item) {
      if (item_counts[item] >= threshold) frequent_items.push_back(item);
    }
    std::sort(frequent_items.begin(), frequent_items.end(),
              [&](int32_t a, int32_t b) {
                if (item_counts[a] != item_counts[b]) {
                  return item_counts[a] > item_counts[b];
                }
                return a < b;
              });
    for (size_t r = 0; r < frequent_items.size(); ++r) {
      rank_of[frequent_items[r]] = static_cast<int32_t>(r);
    }
  }

  // Pass 2: insert rank-ordered frequent projections of all transactions.
  FpTree tree;
  std::vector<int32_t> projected;
  for (int64_t t = 0; t < db.num_transactions(); ++t) {
    projected.clear();
    for (int32_t item : db.Transaction(t)) {
      if (rank_of[item] >= 0) projected.push_back(item);
    }
    std::sort(projected.begin(), projected.end(),
              [&](int32_t a, int32_t b) { return rank_of[a] < rank_of[b]; });
    if (!projected.empty()) tree.Insert(projected, 1);
  }

  LitsModel model(options.min_support, db.num_transactions(), db.num_items());
  Mine(tree, {}, threshold, options.max_itemset_size, n, &model);
  return model;
}

}  // namespace focus::lits

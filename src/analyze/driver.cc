#include "analyze/driver.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <tuple>

namespace focus::analyze {
namespace {

namespace fs = std::filesystem;

// File/class-scope declarations: every token span outside function
// bodies (members, globals, method declarations with return types).
SymbolTable CollectScopeSymbols(const std::vector<Token>& tokens,
                                const std::vector<Function>& functions) {
  SymbolTable out;
  size_t cursor = 0;
  for (const Function& fn : functions) {
    if (fn.body_begin > cursor) {
      CollectDeclsLinear(tokens, cursor, fn.body_begin, &out);
    }
    cursor = std::max(cursor, fn.body_end);
  }
  if (cursor < tokens.size()) {
    CollectDeclsLinear(tokens, cursor, tokens.size(), &out);
  }
  return out;
}

// x.cc -> x.h (then x.hpp) in the same directory.
std::string PairedHeaderPath(const std::string& rel_path) {
  const size_t dot = rel_path.rfind('.');
  if (dot == std::string::npos) return "";
  const std::string ext = rel_path.substr(dot);
  if (ext != ".cc" && ext != ".cpp") return "";
  return rel_path.substr(0, dot);  // caller appends .h / .hpp
}

bool AnalyzableExtension(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

bool SkippedDirectory(const std::string& name) {
  return name == "lint_fixtures" || name == "analyze_fixtures" ||
         name == "corpus" || name == ".git" || name == "third_party" ||
         name.rfind("build", 0) == 0;
}

void CollectFiles(const fs::path& path, std::vector<fs::path>* files) {
  std::error_code ec;
  if (fs::is_regular_file(path, ec)) {
    if (AnalyzableExtension(path)) files->push_back(path);
    return;
  }
  if (!fs::is_directory(path, ec)) return;
  for (fs::directory_iterator it(path, ec), end; it != end && !ec;
       it.increment(ec)) {
    const fs::path& entry = it->path();
    if (fs::is_directory(entry, ec)) {
      if (!SkippedDirectory(entry.filename().string())) {
        CollectFiles(entry, files);
      }
    } else if (AnalyzableExtension(entry)) {
      files->push_back(entry);
    }
  }
}

std::string RelativeTo(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(path, root, ec);
  if (ec || rel.empty()) rel = path;
  return rel.generic_string();
}

}  // namespace

FileModel BuildFileModel(const std::string& rel_path,
                         const std::string& text) {
  FileModel model;
  model.rel_path = rel_path;
  model.display_path = rel_path;
  model.stripped = Strip(text);
  model.tokens = Lex(model.stripped);
  model.functions = ParseFunctions(model.tokens);
  model.scope = CollectScopeSymbols(model.tokens, model.functions);
  model.allowed = AllowedCheckers(model.stripped);
  return model;
}

AnalyzeResult AnalyzeFiles(
    const std::vector<std::pair<std::string, std::string>>& files) {
  AnalyzeResult result;
  result.files_scanned = files.size();

  // Pass 1: models + global index.
  std::vector<FileModel> models;
  models.reserve(files.size());
  for (const auto& [rel_path, text] : files) {
    models.push_back(BuildFileModel(rel_path, text));
  }
  GlobalIndex index;
  std::map<std::string, const FileModel*> by_path;
  for (const FileModel& model : models) {
    by_path[model.rel_path] = &model;
    for (const auto& [name, decl] : model.scope.functions) {
      if (decl.type.find("unordered_") != std::string::npos) {
        index.unordered_methods.insert(Unqualified(name));
      }
      if (decl.type.find("void") != std::string::npos &&
          decl.type.find("*") == std::string::npos) {
        index.void_functions.insert(Unqualified(name));
      }
    }
  }

  // Pass 2: checkers.
  for (const FileModel& model : models) {
    const FileModel* paired = nullptr;
    const std::string stem = PairedHeaderPath(model.rel_path);
    if (!stem.empty()) {
      auto it = by_path.find(stem + ".h");
      if (it == by_path.end()) it = by_path.find(stem + ".hpp");
      if (it != by_path.end()) paired = it->second;
    }
    CheckContext ctx(model, paired, index, &result.diagnostics);
    for (const Checker& checker : Registry()) {
      if (!checker.in_scope(model.rel_path)) continue;
      checker.check(ctx);
    }
  }

  std::sort(result.diagnostics.begin(), result.diagnostics.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.checker) <
                     std::tie(b.file, b.line, b.checker);
            });
  return result;
}

int AnalyzerMain(int argc, char** argv, const char* tool_name) {
  fs::path root = ".";
  std::vector<fs::path> inputs;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--root") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: --root needs a directory\n", tool_name);
        return 2;
      }
      root = argv[++i];
    } else if (arg == "--list-checkers" || arg == "--list-rules") {
      for (const Checker& checker : Registry()) {
        std::printf("%-26s %s\n", checker.name.c_str(),
                    checker.scope.c_str());
      }
      return 0;
    } else if (arg == "--help") {
      std::printf(
          "usage: %s [--root DIR] [--list-checkers] [paths...]\n",
          tool_name);
      return 0;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "%s: unknown flag %s\n", tool_name, arg.c_str());
      return 2;
    } else {
      inputs.push_back(arg);
    }
  }
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "%s: --root %s is not a directory\n", tool_name,
                 root.string().c_str());
    return 2;
  }
  if (inputs.empty()) {
    for (const char* dir :
         {"src", "tools", "tests", "bench", "fuzz", "examples"}) {
      const fs::path path = root / dir;
      if (fs::exists(path, ec)) inputs.push_back(path);
    }
  }
  std::vector<fs::path> paths;
  for (const fs::path& input : inputs) CollectFiles(input, &paths);
  std::sort(paths.begin(), paths.end());

  std::vector<std::pair<std::string, std::string>> files;
  files.reserve(paths.size());
  for (const fs::path& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot read %s\n", tool_name,
                   path.string().c_str());
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    files.emplace_back(RelativeTo(path, root), buffer.str());
  }

  const AnalyzeResult result = AnalyzeFiles(files);
  for (const Diagnostic& diag : result.diagnostics) {
    std::printf("%s:%d: [%s] %s\n", diag.file.c_str(), diag.line,
                diag.checker.c_str(), diag.message.c_str());
  }
  if (!result.diagnostics.empty()) {
    std::printf("%s: %zu finding(s) in %zu file(s) scanned\n", tool_name,
                result.diagnostics.size(), result.files_scanned);
    return 1;
  }
  return 0;
}

}  // namespace focus::analyze

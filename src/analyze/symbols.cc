#include "analyze/symbols.h"

#include <cctype>
#include <unordered_set>

namespace focus::analyze {
namespace {

const std::unordered_set<std::string>& LeadingSpecifiers() {
  static const std::unordered_set<std::string> kSet = {
      "static", "constexpr", "const",  "inline",       "mutable",
      "extern", "volatile",  "friend", "thread_local", "register",
      "virtual", "explicit",
  };
  return kSet;
}

const std::unordered_set<std::string>& NeverStartsDecl() {
  static const std::unordered_set<std::string> kSet = {
      "return", "delete",  "throw",   "goto",    "break",   "continue",
      "case",   "default", "using",   "typedef", "template", "public",
      "private", "protected", "if",   "else",    "for",     "while",
      "do",     "switch",  "new",     "sizeof",  "operator", "namespace",
      "class",  "enum",    "union",
  };
  return kSet;
}

// Builtin type keywords that may repeat ("unsigned long long").
const std::unordered_set<std::string>& TypeKeywords() {
  static const std::unordered_set<std::string> kSet = {
      "const",  "unsigned", "signed", "long", "short", "struct",
      "typename", "auto",   "volatile",
  };
  return kSet;
}

bool AllCapsMacro(const std::string& text) {
  if (text.empty() || !IsIdentToken(text)) return false;
  bool has_alpha = false;
  for (char c : text) {
    if (std::islower(static_cast<unsigned char>(c))) return false;
    if (std::isupper(static_cast<unsigned char>(c))) has_alpha = true;
  }
  return has_alpha;
}

// Appends a balanced <...> template-argument group to `type`, returning
// the index past the closing '>'. Returns `begin` when unbalanced.
size_t AppendAngleGroup(const std::vector<Token>& tokens, size_t begin,
                        size_t end, std::string* type) {
  int depth = 0;
  for (size_t i = begin; i < end; ++i) {
    const std::string& t = tokens[i].text;
    if (t == "<") ++depth;
    else if (t == ">" && --depth == 0) {
      for (size_t k = begin; k <= i; ++k) {
        type->append(tokens[k].text);
        type->push_back(' ');
      }
      return i + 1;
    } else if (t == ";" || t == "{") {
      break;  // never a template argument list
    }
  }
  return begin;
}

}  // namespace

bool TryParseDecl(const std::vector<Token>& tokens, size_t begin, size_t end,
                  SymbolTable* out) {
  size_t i = begin;
  std::string type;
  // Leading specifiers join the type text (so "const double" answers the
  // is-floating-point question) but do not count as the required base.
  bool saw_base = false;
  while (i < end && LeadingSpecifiers().count(tokens[i].text) != 0) {
    type += tokens[i].text + " ";
    ++i;
  }
  if (i >= end) return false;
  if (NeverStartsDecl().count(Unqualified(tokens[i].text)) != 0) return false;
  while (i < end) {
    const std::string& t = tokens[i].text;
    if (t == "*" || t == "&") {
      type += t + " ";
      ++i;
      continue;
    }
    if (t == "<") {
      const size_t next = AppendAngleGroup(tokens, i, end, &type);
      if (next == i) return false;
      i = next;
      continue;
    }
    if (t == "[" && saw_base) {
      // Structured binding: auto& [a, b] — every name gets the type.
      bool any = false;
      for (size_t k = i + 1; k < end && tokens[k].text != "]"; ++k) {
        if (IsIdentToken(tokens[k].text)) {
          out->vars[tokens[k].text] = {tokens[k].text, type, tokens[k].line};
          any = true;
        }
      }
      return any;
    }
    if (!IsIdentToken(t)) return false;
    if (TypeKeywords().count(t) != 0) {
      type += t + " ";
      saw_base = saw_base || t == "auto";
      ++i;
      continue;
    }
    // `t` is either part of the type or the declared name — decide by
    // what follows.
    const std::string next = i + 1 < end ? tokens[i + 1].text : "";
    const bool name_position =
        i + 1 >= end || next == "=" || next == ";" || next == "{" ||
        next == "," || next == ":" || next == ")" || next == "[" ||
        AllCapsMacro(next);
    if (name_position && saw_base) {
      out->vars[t] = {t, type, tokens[i].line};
      return true;
    }
    if (next == "(" && saw_base) {
      // A callable: record its return type (method declarations in
      // headers, free-function declarations).
      out->functions[t] = {t, type, tokens[i].line};
      return true;
    }
    if (name_position || next == "(") return false;  // no type before it
    type += t + " ";
    saw_base = true;
    ++i;
  }
  return false;
}

void CollectDeclsLinear(const std::vector<Token>& tokens, size_t begin,
                        size_t end, SymbolTable* out) {
  size_t piece = begin;
  for (size_t i = begin; i <= end; ++i) {
    const bool boundary = i == end || tokens[i].text == ";" ||
                          tokens[i].text == "{" || tokens[i].text == "}";
    if (!boundary) continue;
    if (i > piece) TryParseDecl(tokens, piece, i, out);
    piece = i + 1;
  }
}

void CollectParamDecls(const std::vector<Token>& tokens, size_t begin,
                       size_t end, SymbolTable* out) {
  size_t piece = begin;
  int depth = 0;
  for (size_t i = begin; i <= end; ++i) {
    if (i < end) {
      const std::string& t = tokens[i].text;
      if (t == "(" || t == "[" || t == "{" || t == "<") ++depth;
      else if (t == ")" || t == "]" || t == "}" || t == ">") --depth;
    }
    const bool boundary = i == end || (tokens[i].text == "," && depth == 0);
    if (!boundary) continue;
    if (i > piece) TryParseDecl(tokens, piece, i, out);
    piece = i + 1;
  }
}

SymbolTable CollectFunctionSymbols(const std::vector<Token>& tokens,
                                   const Function& function) {
  SymbolTable out;
  CollectParamDecls(tokens, function.params_begin, function.params_end, &out);
  ForEachStmt(function.body, [&](const Stmt& stmt) {
    if (stmt.kind == StmtKind::kSimple) {
      TryParseDecl(tokens, stmt.header_begin, stmt.header_end, &out);
      return;
    }
    if (stmt.kind == StmtKind::kFor || stmt.kind == StmtKind::kIf ||
        stmt.kind == StmtKind::kWhile || stmt.kind == StmtKind::kSwitch) {
      // for-init clauses and if-with-initializer declarations; harmless
      // when the header is a plain condition (TryParseDecl just fails).
      size_t piece = stmt.header_begin;
      for (size_t i = stmt.header_begin; i <= stmt.header_end; ++i) {
        const bool boundary = i == stmt.header_end || tokens[i].text == ";";
        if (!boundary) continue;
        if (i > piece) TryParseDecl(tokens, piece, i, &out);
        piece = i + 1;
      }
      return;
    }
    if (stmt.kind == StmtKind::kRangeFor) {
      // The declaration part before the top-level ':'.
      int depth = 0;
      for (size_t i = stmt.header_begin; i < stmt.header_end; ++i) {
        const std::string& t = tokens[i].text;
        if (t == "(" || t == "[" || t == "{") ++depth;
        else if (t == ")" || t == "]" || t == "}") --depth;
        else if (t == ":" && depth == 0) {
          TryParseDecl(tokens, stmt.header_begin, i, &out);
          break;
        }
      }
    }
  });
  return out;
}

}  // namespace focus::analyze

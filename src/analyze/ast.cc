#include "analyze/ast.h"

#include <algorithm>
#include <unordered_set>

namespace focus::analyze {
namespace {

bool IsOpenBracket(const std::string& t) {
  return t == "(" || t == "[" || t == "{";
}
bool IsCloseBracket(const std::string& t) {
  return t == ")" || t == "]" || t == "}";
}

// Keywords that look like `ident (` but never start a function definition.
const std::unordered_set<std::string>& NonFunctionKeywords() {
  static const std::unordered_set<std::string> kSet = {
      "if",     "for",    "while",  "switch",   "catch",  "return",
      "sizeof", "alignof", "decltype", "new",   "delete", "else",
      "do",     "case",   "throw",  "typeid",   "void",   "int",
      "static_assert",
  };
  return kSet;
}

// Tokens allowed between a signature's closing ')' and the body '{':
// cv-qualifiers, ref-qualifiers, trailing return types, capability
// annotations, and constructor initializer lists.
bool QualifierToken(const std::string& t) {
  return IsIdentToken(t) || t == "," || t == "&" || t == "*" || t == "<" ||
         t == ">" || t == "-" || t == ":" || t == "[" || t == "]" ||
         (!t.empty() && (t[0] >= '0' && t[0] <= '9'));
}

std::pair<Stmt, size_t> ParseOne(const std::vector<Token>& tokens, size_t i,
                                 size_t end);

std::vector<Stmt> ParseStmts(const std::vector<Token>& tokens, size_t begin,
                             size_t end) {
  std::vector<Stmt> out;
  size_t i = begin;
  while (i < end) {
    if (IsCloseBracket(tokens[i].text)) {  // stray close: skip defensively
      ++i;
      continue;
    }
    auto [stmt, next] = ParseOne(tokens, i, end);
    if (next <= i) {  // no progress: bail out of a malformed region
      ++i;
      continue;
    }
    out.push_back(std::move(stmt));
    i = next;
  }
  return out;
}

// Parses exactly one statement starting at `i`; returns it plus the index
// just past its end.
std::pair<Stmt, size_t> ParseOne(const std::vector<Token>& tokens, size_t i,
                                 size_t end) {
  Stmt stmt;
  stmt.line = tokens[i].line;
  stmt.span_begin = i;
  const std::string& t = tokens[i].text;

  if (t == "{") {
    const size_t close = MatchBracket(tokens, i);
    stmt.kind = StmtKind::kBlock;
    stmt.children = ParseStmts(tokens, i + 1, std::min(close, end));
    const size_t next = std::min(close + 1, end);
    stmt.span_end = next;
    return {std::move(stmt), next};
  }

  if (t == "do") {
    stmt.kind = StmtKind::kDoWhile;
    size_t k = i + 1;
    if (k < end && tokens[k].text == "{") {
      const size_t close = MatchBracket(tokens, k);
      stmt.children = ParseStmts(tokens, k + 1, std::min(close, end));
      k = std::min(close + 1, end);
    }
    // Trailing `while ( ... ) ;`
    if (k < end && tokens[k].text == "while" && k + 1 < end &&
        tokens[k + 1].text == "(") {
      const size_t close = MatchBracket(tokens, k + 1);
      stmt.header_begin = k + 2;
      stmt.header_end = std::min(close, end);
      k = std::min(close + 1, end);
      if (k < end && tokens[k].text == ";") ++k;
    }
    stmt.span_end = k;
    return {std::move(stmt), k};
  }

  if (t == "if" || t == "for" || t == "while" || t == "switch") {
    size_t j = i + 1;
    if (j < end && tokens[j].text == "constexpr") ++j;
    if (j >= end || tokens[j].text != "(") {
      // Malformed; fall through to the simple-statement scan below.
    } else {
      const size_t close = MatchBracket(tokens, j);
      stmt.header_begin = j + 1;
      stmt.header_end = std::min(close, end);
      if (t == "if") {
        stmt.kind = StmtKind::kIf;
      } else if (t == "while") {
        stmt.kind = StmtKind::kWhile;
      } else if (t == "switch") {
        stmt.kind = StmtKind::kSwitch;
      } else {
        // Range-for: a ':' at header depth 0 and no top-level ';'.
        bool colon = false, semicolon = false;
        int depth = 0;
        for (size_t k = stmt.header_begin; k < stmt.header_end; ++k) {
          const std::string& h = tokens[k].text;
          if (IsOpenBracket(h)) ++depth;
          else if (IsCloseBracket(h)) --depth;
          else if (depth == 0 && h == ":") colon = true;
          else if (depth == 0 && h == ";") semicolon = true;
        }
        stmt.kind = (colon && !semicolon) ? StmtKind::kRangeFor
                                          : StmtKind::kFor;
      }
      size_t k = std::min(close + 1, end);
      if (k < end && tokens[k].text == "{") {
        const size_t bclose = MatchBracket(tokens, k);
        stmt.children = ParseStmts(tokens, k + 1, std::min(bclose, end));
        k = std::min(bclose + 1, end);
      } else if (k < end && tokens[k].text == ";") {
        ++k;  // empty body
      } else if (k < end) {
        auto [child, next] = ParseOne(tokens, k, end);
        stmt.children.push_back(std::move(child));
        k = next;
      }
      if (stmt.kind == StmtKind::kIf && k < end && tokens[k].text == "else") {
        ++k;
        if (k < end) {
          auto [child, next] = ParseOne(tokens, k, end);
          stmt.children.push_back(std::move(child));
          k = next;
        }
      }
      stmt.span_end = k;
      return {std::move(stmt), k};
    }
  }

  // Simple statement: everything up to the first ';' at bracket depth 0.
  stmt.kind = StmtKind::kSimple;
  int depth = 0;
  size_t j = i;
  while (j < end) {
    const std::string& s = tokens[j].text;
    if (IsOpenBracket(s)) {
      ++depth;
    } else if (IsCloseBracket(s)) {
      if (depth == 0) break;  // malformed: a close we do not own
      --depth;
    } else if (s == ";" && depth == 0) {
      ++j;
      break;
    }
    ++j;
  }
  stmt.header_begin = stmt.span_begin;
  stmt.header_end = j;
  stmt.span_end = j;
  return {std::move(stmt), j};
}

}  // namespace

std::string TailName(const Function& function) {
  return Unqualified(function.name);
}

size_t MatchBracket(const std::vector<Token>& tokens, size_t open) {
  int depth = 0;
  for (size_t i = open; i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (IsOpenBracket(t)) ++depth;
    else if (IsCloseBracket(t)) {
      if (--depth == 0) return i;
    }
  }
  return tokens.size();
}

std::vector<Function> ParseFunctions(const std::vector<Token>& tokens) {
  std::vector<Function> out;
  const size_t n = tokens.size();
  size_t i = 0;
  while (i + 1 < n) {
    if (!IsIdentToken(tokens[i].text) || tokens[i + 1].text != "(" ||
        NonFunctionKeywords().count(Unqualified(tokens[i].text)) != 0) {
      ++i;
      continue;
    }
    const size_t params_close = MatchBracket(tokens, i + 1);
    if (params_close >= n) {
      ++i;
      continue;
    }
    // Scan the qualifier region for the body '{'. Anything outside the
    // grammar of qualifiers / trailing return types / ctor-init lists
    // (an operator, '=', ';') means this was a call or a declaration.
    size_t j = params_close + 1;
    bool in_init_list = false;
    size_t body_open = n;
    std::string prev = ")";
    while (j < n) {
      const std::string& q = tokens[j].text;
      if (q == "{") {
        if (in_init_list && (IsIdentToken(prev) || prev == ">")) {
          // Member brace-init inside the ctor initializer list.
          const size_t close = MatchBracket(tokens, j);
          if (close >= n) break;
          prev = "}";
          j = close + 1;
          continue;
        }
        body_open = j;
        break;
      }
      if (q == "(") {  // annotation args, noexcept(...), member init
        const size_t close = MatchBracket(tokens, j);
        if (close >= n) break;
        prev = ")";
        j = close + 1;
        continue;
      }
      if (q == ":") in_init_list = true;
      if (!QualifierToken(q) && q != ":") break;  // '=', ';', '<<', ...
      prev = q;
      ++j;
    }
    if (body_open >= n) {
      ++i;
      continue;
    }
    const size_t body_close = MatchBracket(tokens, body_open);
    if (body_close >= n) {
      ++i;
      continue;
    }
    Function fn;
    fn.name = tokens[i].text;
    fn.line = tokens[i].line;
    fn.params_begin = i + 2;
    fn.params_end = params_close;
    fn.body_begin = body_open + 1;
    fn.body_end = body_close;
    for (size_t k = params_close + 1; k < body_open; ++k) {
      const std::string tail = Unqualified(tokens[k].text);
      if (tail == "REQUIRES" || tail == "ASSERT_CAPABILITY" ||
          tail == "REQUIRES_SHARED" || tail == "ACQUIRE" ||
          tail == "RELEASE") {
        fn.has_requires = true;
      }
    }
    fn.body = ParseStmts(tokens, fn.body_begin, fn.body_end);
    out.push_back(std::move(fn));
    i = body_close + 1;
  }
  return out;
}

}  // namespace focus::analyze

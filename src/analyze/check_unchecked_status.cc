// unchecked-status: discarded success/failure results.
//
// The io loaders, block-store readers, and socket helpers report failure
// through their return value (bool or std::optional) rather than
// exceptions. A bare call statement like `SaveDatasetToFile(ds, path);`
// silently drops an ENOSPC or a short write. Flagged when the whole
// statement is a call — possibly through a receiver chain — to a
// must-check API and nothing consumes the result. `(void)call(…)` and
// `if (!call(…))` naturally do not match.

#include <unordered_set>

#include "analyze/checks.h"

namespace focus::analyze {
namespace {

bool SrcOnly(const std::string& rel_path) {
  return PathHasPrefix(rel_path, "src/");
}

// Return-value-means-failure APIs: name prefixes and exact names.
bool MustCheck(const std::string& tail) {
  static const std::unordered_set<std::string> kExact = {
      "Decode",       "ReadVarint", "ReadBlock",
      "SetNonBlocking", "Submit",   "Consume",
      "ConvertTransactionTextToBlocks", "ParseHashHex",
  };
  if (kExact.count(tail) != 0) return true;
  return tail.rfind("Load", 0) == 0 || tail.rfind("Save", 0) == 0 ||
         tail.rfind("Open", 0) == 0;
}

// Receiver-chain tokens allowed before the callee: `obj.`, `ptr->`,
// qualified names (already merged by the lexer).
bool ReceiverToken(const std::string& t) {
  return IsIdentToken(t) || t == "." || t == "-" || t == ">";
}

void CheckUncheckedStatus(CheckContext& ctx) {
  const std::vector<Token>& tokens = ctx.tokens();
  for (const Function& fn : ctx.file().functions) {
    ForEachStmt(fn.body, [&](const Stmt& stmt) {
      if (stmt.kind != StmtKind::kSimple) return;
      const size_t begin = stmt.header_begin;
      const size_t end = std::min(stmt.header_end, tokens.size());
      if (end - begin < 4) return;  // name ( ) ;
      if (tokens[end - 1].text != ";" || tokens[end - 2].text != ")") return;
      // Find the callee: the identifier before the first '(' — everything
      // before it must be a plain receiver chain.
      size_t open = end;
      for (size_t i = begin; i < end; ++i) {
        if (tokens[i].text == "(") {
          open = i;
          break;
        }
        if (!ReceiverToken(tokens[i].text)) return;  // cast, =, return, …
      }
      if (open == end || open == begin) return;
      const std::string& callee = tokens[open - 1].text;
      if (!IsIdentToken(callee)) return;
      // Keywords that may masquerade as a receiver chain.
      for (size_t i = begin; i < open; ++i) {
        const std::string& t = tokens[i].text;
        if (t == "return" || t == "co_return" || t == "throw" ||
            t == "delete" || t == "co_await") {
          return;
        }
      }
      const std::string tail = Unqualified(callee);
      if (!MustCheck(tail)) return;
      // The call must be the whole statement: `)` `;` right at the end.
      const size_t close = MatchBracket(tokens, open);
      if (close != end - 2) return;  // chained call or trailing operators
      // A callee that resolvably returns void has nothing to discard —
      // e.g. the stream-based Save*(ostream&) serializers, whose error
      // state lives in the stream and is checked by the *ToFile wrapper.
      static const SymbolTable kNoLocals;
      std::string ret = ctx.ResolveCallType(kNoLocals, callee);
      if (ret.empty() && callee != tail) {
        ret = ctx.ResolveCallType(kNoLocals, tail);
      }
      if (ret.find("void") != std::string::npos) return;
      if (ret.empty() && ctx.index().void_functions.count(tail) != 0) return;
      ctx.Report(tokens[open - 1].line, "unchecked-status",
                 "result of '" + tail +
                     "' discarded — it reports failure through its return "
                     "value; branch on it, or cast to (void) with a "
                     "comment saying why failure is fine here");
    });
  }
}

}  // namespace

Checker MakeUncheckedStatusChecker() {
  return {"unchecked-status", "src/",
          "discarded bool/optional results from io, block, socket APIs",
          SrcOnly, CheckUncheckedStatus};
}

}  // namespace focus::analyze

#ifndef FOCUS_ANALYZE_AST_H_
#define FOCUS_ANALYZE_AST_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analyze/lexer.h"

namespace focus::analyze {

// Stage 3: a balanced-brace parse of the token stream into per-function
// statement trees. This is deliberately not a C++ grammar — it recognizes
// exactly the shapes the checkers reason about (function bodies, control
// statements, range-for headers) and treats everything else as an opaque
// "simple statement" token span. Token spans are [begin, end) indices
// into the file's token vector.

enum class StmtKind {
  kSimple,    // anything ending in ';' (declarations, expressions, ...)
  kBlock,     // bare { ... }
  kIf,        // children: then-branch statements, then else-branch
  kFor,       // classic for(;;)
  kRangeFor,  // for (decl : container)
  kWhile,
  kDoWhile,
  kSwitch,
};

struct Stmt {
  StmtKind kind = StmtKind::kSimple;
  int line = 0;
  // kSimple: the whole statement. Control statements: the parenthesized
  // header contents (without the parens). kBlock/kDoWhile: empty.
  size_t header_begin = 0;
  size_t header_end = 0;
  // Full extent of the statement including any nested bodies.
  size_t span_begin = 0;
  size_t span_end = 0;
  // Nested statements (control bodies, block contents, else branches).
  std::vector<Stmt> children;
};

struct Function {
  // Name as written at the definition ("LitsUpperBound",
  // "ModelCache::InsertLocked", or a test macro like "TEST").
  std::string name;
  int line = 0;
  size_t params_begin = 0;  // inside the signature parens
  size_t params_end = 0;
  size_t body_begin = 0;  // inside the braces
  size_t body_end = 0;
  // Capability annotations seen between the signature and the body
  // (REQUIRES, ASSERT_CAPABILITY, ...): the lock is a precondition.
  bool has_requires = false;
  std::vector<Stmt> body;
};

// The unqualified tail of the function name ("ModelCache::InsertLocked"
// -> "InsertLocked").
std::string TailName(const Function& function);

// Finds every function definition with a body and parses each body into
// a statement tree. Tolerant by construction: unparseable regions simply
// yield no functions, never errors.
std::vector<Function> ParseFunctions(const std::vector<Token>& tokens);

// Index of the matching closing bracket for the opener at `open`
// (handles (), [], {} uniformly, counting all three kinds); returns
// `tokens.size()` when unbalanced.
size_t MatchBracket(const std::vector<Token>& tokens, size_t open);

// Depth-first walk over a statement tree.
template <typename Fn>
void ForEachStmt(const std::vector<Stmt>& stmts, Fn&& fn) {
  for (const Stmt& stmt : stmts) {
    fn(stmt);
    ForEachStmt(stmt.children, fn);
  }
}

}  // namespace focus::analyze

#endif  // FOCUS_ANALYZE_AST_H_

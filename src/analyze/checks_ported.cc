// The four focus_lint rules, ported onto the analyzer registry. Messages
// and scoping are unchanged so existing allow() sites keep working; the
// hot-loop rule now finds loops through the statement tree instead of
// the old hand-rolled brace tracker.

#include <unordered_set>

#include "analyze/checks.h"

namespace focus::analyze {
namespace {

bool EverywhereButCommon(const std::string& rel_path) {
  return !PathHasPrefix(rel_path, "src/common/");
}

void CheckRawMutex(CheckContext& ctx) {
  static const std::unordered_set<std::string> kBanned = {
      "std::mutex",          "std::timed_mutex",
      "std::recursive_mutex", "std::recursive_timed_mutex",
      "std::shared_mutex",   "std::shared_timed_mutex",
      "std::lock_guard",     "std::unique_lock",
      "std::scoped_lock",    "std::shared_lock",
      "std::condition_variable", "std::condition_variable_any",
  };
  for (const Token& token : ctx.tokens()) {
    if (kBanned.count(token.text) == 0) continue;
    ctx.Report(token.line, "raw-mutex",
               token.text +
                   " outside src/common/ — use common::Mutex / "
                   "common::MutexLock / common::CondVar (common/mutex.h) "
                   "so thread-safety annotations keep working");
  }
}

bool EverywhereButStats(const std::string& rel_path) {
  return !PathHasPrefix(rel_path, "src/stats/");  // MakeRng's home
}

bool IsEngineName(const std::string& text) {
  return text == "mt19937" || text == "mt19937_64" ||
         text == "std::mt19937" || text == "std::mt19937_64";
}

void CheckNakedMt19937(CheckContext& ctx) {
  const std::vector<Token>& tokens = ctx.tokens();
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (!IsEngineName(tokens[i].text)) continue;
    size_t ctor = 0;  // index of the '(' / '{' opening a construction
    if (i + 1 < tokens.size() &&
        (tokens[i + 1].text == "(" || tokens[i + 1].text == "{")) {
      ctor = i + 1;  // temporary: std::mt19937_64(seed)
    } else if (i + 2 < tokens.size() && IsIdentToken(tokens[i + 1].text) &&
               (tokens[i + 2].text == "(" || tokens[i + 2].text == "{")) {
      ctor = i + 2;  // named variable: std::mt19937_64 rng(seed)
    } else {
      continue;  // reference/param declaration, template argument, …
    }
    // Initialization through the sanctioned factory is fine:
    //   std::mt19937_64 rng = stats::MakeRng(seed);  (no direct ctor)
    //   std::mt19937_64 rng(stats::MakeRng(seed));   (copy from factory)
    bool via_factory = false;
    for (size_t j = ctor; j < tokens.size() && tokens[j].text != ";"; ++j) {
      if (tokens[j].text.find("MakeRng") != std::string::npos) {
        via_factory = true;
        break;
      }
    }
    if (via_factory) continue;
    ctx.Report(tokens[i].line, "naked-mt19937",
               tokens[i].text +
                   " constructed directly — seed RNGs via stats::MakeRng "
                   "so runs replay deterministically");
  }
}

bool HotLoopDirs(const std::string& rel_path) {
  return PathHasPrefix(rel_path, "src/core/") ||
         PathHasPrefix(rel_path, "src/itemsets/") ||
         PathHasPrefix(rel_path, "src/tree/");
}

bool IsLoop(const Stmt& stmt) {
  return stmt.kind == StmtKind::kFor || stmt.kind == StmtKind::kRangeFor ||
         stmt.kind == StmtKind::kWhile || stmt.kind == StmtKind::kDoWhile;
}

void CheckStdFunctionInHotLoop(CheckContext& ctx) {
  const std::vector<Token>& tokens = ctx.tokens();
  for (const Function& fn : ctx.file().functions) {
    ForEachStmt(fn.body, [&](const Stmt& stmt) {
      if (!IsLoop(stmt)) return;
      // Loop bodies only — the children's spans, not the header.
      for (const Stmt& child : stmt.children) {
        for (size_t i = child.span_begin; i < child.span_end; ++i) {
          if (tokens[i].text != "std::function") continue;
          ctx.Report(tokens[i].line, "std-function-in-hot-loop",
                     "std::function inside a loop body in a scan-kernel "
                     "directory — type-erased calls defeat inlining; take "
                     "the body as a template parameter (see "
                     "core/parallel_count.h)");
        }
      }
    });
  }
}

bool IoOnly(const std::string& rel_path) {
  return PathHasPrefix(rel_path, "src/io/");
}

void CheckUncheckedStrtol(CheckContext& ctx) {
  static const std::unordered_set<std::string> kStrto = {
      "strtol",       "strtoul",      "strtoll",       "strtoull",
      "strtod",       "strtof",       "strtold",       "std::strtol",
      "std::strtoul", "std::strtoll", "std::strtoull", "std::strtod",
      "std::strtof",  "std::strtold",
  };
  static const std::unordered_set<std::string> kNoErrors = {
      "atoi", "atol", "atoll", "atof", "std::atoi", "std::atol",
      "std::atoll", "std::atof",
  };
  const std::vector<Token>& tokens = ctx.tokens();
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i + 1].text != "(") continue;
    if (kNoErrors.count(tokens[i].text) != 0) {
      ctx.Report(tokens[i].line, "unchecked-strtol",
                 tokens[i].text +
                     " cannot report conversion errors — io loaders must "
                     "reject malformed numbers (use strtol with a checked "
                     "end pointer)");
      continue;
    }
    if (kStrto.count(tokens[i].text) == 0) continue;
    // Extract the second top-level argument.
    int depth = 0;
    int arg = 0;
    std::vector<std::string> second_arg;
    for (size_t j = i + 1; j < tokens.size(); ++j) {
      const std::string& t = tokens[j].text;
      if (t == "(" || t == "[" || t == "{") {
        ++depth;
        if (depth > 1 && arg == 1) second_arg.push_back(t);
        continue;
      }
      if (t == ")" || t == "]" || t == "}") {
        --depth;
        if (depth == 0) break;
        if (arg == 1) second_arg.push_back(t);
        continue;
      }
      if (t == "," && depth == 1) {
        ++arg;
        continue;
      }
      if (arg == 1) second_arg.push_back(t);
    }
    const bool null_endptr =
        second_arg.size() == 1 &&
        (second_arg[0] == "nullptr" || second_arg[0] == "NULL" ||
         second_arg[0] == "0");
    if (null_endptr) {
      ctx.Report(tokens[i].line, "unchecked-strtol",
                 tokens[i].text +
                     " with a null end pointer silently accepts trailing "
                     "garbage — pass an end pointer and check it");
    }
  }
}

}  // namespace

Checker MakeRawMutexChecker() {
  return {"raw-mutex", "everywhere except src/common/",
          "std synchronization primitives bypass common::Mutex annotations",
          EverywhereButCommon, CheckRawMutex};
}

Checker MakeNakedMt19937Checker() {
  return {"naked-mt19937", "everywhere except src/stats/",
          "RNG engines constructed without stats::MakeRng break replay",
          EverywhereButStats, CheckNakedMt19937};
}

Checker MakeStdFunctionHotLoopChecker() {
  return {"std-function-in-hot-loop", "src/core/, src/itemsets/, src/tree/",
          "type-erased calls inside scan-kernel loops defeat inlining",
          HotLoopDirs, CheckStdFunctionInHotLoop};
}

Checker MakeUncheckedStrtolChecker() {
  return {"unchecked-strtol", "src/io/",
          "number parsing that cannot reject malformed input",
          IoOnly, CheckUncheckedStrtol};
}

}  // namespace focus::analyze

#ifndef FOCUS_ANALYZE_SOURCE_H_
#define FOCUS_ANALYZE_SOURCE_H_

#include <map>
#include <set>
#include <string>
#include <vector>

namespace focus::analyze {

// Stage 1 of the focus_analyze pipeline (docs/STATIC_ANALYSIS.md): a
// "code view" of each file with comments, string literals, and char
// literals blanked out so prose and patterns inside strings never reach
// the later stages. Line structure is preserved exactly — every
// diagnostic line number indexes the original file.
struct StrippedSource {
  // Code with comments / string literals / char literals spaced out.
  std::vector<std::string> code;
  // The comment text of each line (for allow() directives).
  std::vector<std::string> comments;
};

StrippedSource Strip(const std::string& text);

// Checkers suppressed per line (1-based) via an escape-hatch comment on
// the diagnostic line or the line directly above:
//
//   // focus-analyze: allow(checker-name) — why it is fine here
//
// The legacy `focus-lint: allow(...)` spelling is honored too so the
// directives that predate the analyzer keep working.
std::map<int, std::set<std::string>> AllowedCheckers(
    const StrippedSource& stripped);

}  // namespace focus::analyze

#endif  // FOCUS_ANALYZE_SOURCE_H_

// nondet-iteration: hash-order iteration feeding order-sensitive sinks.
//
// std::unordered_map / unordered_set iteration order depends on the hash
// function, libstdc++ version, and insertion history. FOCUS pins
// bit-identical results across backends and shards (ROADMAP tier-1), so
// anything order-sensitive fed from an unordered container is a
// reproducibility bug:
//
//   * floating-point accumulation (+=, -=, *= on a double/float) — FP
//     addition is not associative, so the fold value follows hash order;
//   * appending to a container or string declared outside the loop —
//     the element order follows hash order;
//   * serialization or hashing calls (Put*/Append*/…Hash…) — the byte
//     stream follows hash order.
//
// Order-insensitive uses (integer accumulation, map/set insertion,
// max/min tracking) are fine and not flagged. Appends that are later
// canonicalized — the target appears in a std::sort / std::stable_sort /
// serve::AggregateSummary call in the same function — are blessed.

#include <set>

#include "analyze/checks.h"
#include "analyze/dataflow.h"

namespace focus::analyze {
namespace {

bool SrcOnly(const std::string& rel_path) {
  return PathHasPrefix(rel_path, "src/");
}

bool TypeIsUnordered(const std::string& type) {
  return type.find("unordered_") != std::string::npos;
}

bool TypeIsFloating(const std::string& type) {
  return type.find("double") != std::string::npos ||
         type.find("float") != std::string::npos;
}

bool TypeIsString(const std::string& type) {
  return type.find("string") != std::string::npos;
}

// Names whose call canonicalizes its arguments' order.
bool IsBlessingCall(const std::string& name) {
  const std::string tail = Unqualified(name);
  return tail == "sort" || tail == "stable_sort" ||
         tail == "AggregateSummary";
}

// Identifiers passed to a sort/canonicalize call anywhere in `fn`.
std::set<std::string> BlessedNames(const std::vector<Token>& tokens,
                                   const Function& fn) {
  std::set<std::string> blessed;
  for (size_t i = fn.body_begin; i + 1 < fn.body_end; ++i) {
    if (!IsIdentToken(tokens[i].text) || tokens[i + 1].text != "(") continue;
    if (!IsBlessingCall(tokens[i].text)) continue;
    const size_t close = MatchBracket(tokens, i + 1);
    for (size_t k = i + 2; k < close && k < fn.body_end; ++k) {
      if (IsIdentToken(tokens[k].text)) blessed.insert(tokens[k].text);
    }
  }
  return blessed;
}

// Does the range-for header's container expression (after the top-level
// ':') denote an unordered container?
bool RangeIsUnordered(const CheckContext& ctx, const SymbolTable& fn_symbols,
                      const Stmt& loop) {
  const std::vector<Token>& tokens = ctx.tokens();
  // Find the top-level ':'.
  size_t colon = loop.header_end;
  int depth = 0;
  for (size_t i = loop.header_begin; i < loop.header_end; ++i) {
    const std::string& t = tokens[i].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    else if (t == ")" || t == "]" || t == "}") --depth;
    else if (t == ":" && depth == 0) {
      colon = i;
      break;
    }
  }
  for (size_t i = colon + 1; i < loop.header_end; ++i) {
    const std::string& t = tokens[i].text;
    if (!IsIdentToken(t)) continue;
    if (TypeIsUnordered(t)) return true;  // spelled type / cast
    const bool call =
        i + 1 < loop.header_end && tokens[i + 1].text == "(";
    if (call) {
      if (ctx.index().unordered_methods.count(Unqualified(t)) != 0) {
        return true;
      }
      if (TypeIsUnordered(ctx.ResolveCallType(fn_symbols, t))) return true;
    } else {
      if (TypeIsUnordered(ctx.ResolveVarType(fn_symbols, t))) return true;
      if (TypeIsUnordered(ctx.ResolveCallType(fn_symbols, t))) return true;
    }
  }
  return false;
}

// True when `line` falls inside [first, last] of the loop's own lines —
// per-iteration temporaries are order-irrelevant.
bool DeclaredInside(const std::vector<Token>& tokens, const Stmt& loop,
                    int line) {
  if (loop.span_begin >= tokens.size() || loop.span_end == 0) return false;
  const int first = tokens[loop.span_begin].line;
  const size_t last_index =
      std::min(loop.span_end, tokens.size()) - 1;
  const int last = tokens[last_index].line;
  return line >= first && line <= last;
}

void ScanLoopBody(CheckContext& ctx, const SymbolTable& fn_symbols,
                  const Stmt& loop, const std::set<std::string>& blessed) {
  const std::vector<Token>& tokens = ctx.tokens();
  for (const Stmt& child : loop.children) {
    const size_t end = std::min(child.span_end, tokens.size());
    for (size_t i = child.span_begin; i < end; ++i) {
      const std::string& t = tokens[i].text;
      if (!IsIdentToken(t)) continue;
      const std::string n1 = i + 1 < end ? tokens[i + 1].text : "";
      const std::string n2 = i + 2 < end ? tokens[i + 2].text : "";

      // Compound assignment: ident op= …
      const bool compound =
          (n1 == "+" || n1 == "-" || n1 == "*") && n2 == "=";
      if (compound) {
        const std::string type = ctx.ResolveVarType(fn_symbols, t);
        if (type.empty()) continue;
        const auto decl = fn_symbols.vars.find(t);
        const bool local_temp =
            decl != fn_symbols.vars.end() &&
            DeclaredInside(tokens, loop, decl->second.line);
        if (local_temp) continue;
        if (TypeIsFloating(type)) {
          ctx.Report(tokens[i].line, "nondet-iteration",
                     "floating-point accumulation into '" + t +
                         "' while iterating an unordered container — FP "
                         "addition is not associative, so the result "
                         "follows the hash seed; collect, sort by key, "
                         "then fold (see serve::AggregateSummary)");
        } else if (n1 == "+" && TypeIsString(type) &&
                   blessed.count(t) == 0) {
          ctx.Report(tokens[i].line, "nondet-iteration",
                     "appending to string '" + t +
                         "' while iterating an unordered container — the "
                         "byte order follows the hash seed; iterate keys "
                         "in sorted order");
        }
        continue;
      }

      // Method-call sinks: recv.push_back(…) / recv.append(…).
      if ((t == "push_back" || t == "emplace_back" || t == "append") &&
          n1 == "(" && i >= 1 &&
          (tokens[i - 1].text == "." || tokens[i - 1].text == ">")) {
        // Receiver: the identifier before '.' or '->'.
        const size_t recv_at = tokens[i - 1].text == "." ? i - 2 : i - 3;
        if (recv_at >= i || !IsIdentToken(tokens[recv_at].text)) continue;
        const std::string& recv = tokens[recv_at].text;
        if (blessed.count(recv) != 0) continue;
        const auto decl = fn_symbols.vars.find(recv);
        if (decl != fn_symbols.vars.end() &&
            DeclaredInside(tokens, loop, decl->second.line)) {
          continue;  // per-iteration temporary
        }
        ctx.Report(tokens[i].line, "nondet-iteration",
                   "appending to '" + recv +
                       "' while iterating an unordered container — the "
                       "element order follows the hash seed; sort the "
                       "result before using it, or bless it via std::sort "
                       "/ serve::AggregateSummary");
        continue;
      }

      // Serialization / hashing calls.
      if (n1 == "(") {
        const std::string tail = Unqualified(t);
        const bool serializes =
            tail.rfind("Put", 0) == 0 || tail.rfind("Append", 0) == 0 ||
            tail.find("Hash") != std::string::npos;
        if (serializes) {
          ctx.Report(tokens[i].line, "nondet-iteration",
                     "'" + tail +
                         "' called while iterating an unordered container "
                         "— the emitted order follows the hash seed; "
                         "iterate keys in canonical (sorted) order");
        }
      }
    }
  }
}

void CheckNondetIteration(CheckContext& ctx) {
  const std::vector<Token>& tokens = ctx.tokens();
  for (const Function& fn : ctx.file().functions) {
    const SymbolTable fn_symbols = CollectFunctionSymbols(tokens, fn);
    const std::set<std::string> blessed = BlessedNames(tokens, fn);
    ForEachStmt(fn.body, [&](const Stmt& stmt) {
      if (stmt.kind != StmtKind::kRangeFor) return;
      if (!RangeIsUnordered(ctx, fn_symbols, stmt)) return;
      ScanLoopBody(ctx, fn_symbols, stmt, blessed);
    });
  }
}

}  // namespace

Checker MakeNondetIterationChecker() {
  return {"nondet-iteration", "src/",
          "unordered-container iteration feeding order-sensitive sinks",
          SrcOnly, CheckNondetIteration};
}

}  // namespace focus::analyze

#include "analyze/source.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace focus::analyze {

StrippedSource Strip(const std::string& text) {
  StrippedSource out;
  std::string code_line, comment_line;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString,
  };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  const size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '\n') {
      out.code.push_back(code_line);
      out.comments.push_back(comment_line);
      code_line.clear();
      comment_line.clear();
      if (state == State::kLineComment) state = State::kCode;
      continue;
    }
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          code_line += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          code_line += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (code_line.empty() ||
                    (!std::isalnum(static_cast<unsigned char>(
                         code_line.back())) &&
                     code_line.back() != '_'))) {
          // Raw string literal: R"delim( ... )delim"
          size_t j = i + 2;
          raw_delim.clear();
          while (j < n && text[j] != '(') raw_delim += text[j++];
          state = State::kRawString;
          code_line += ' ';
          code_line.append(j - i, ' ');
          i = j;  // at '('
        } else if (c == '"') {
          state = State::kString;
          code_line += ' ';
        } else if (c == '\'') {
          // A ' directly after an identifier/digit character is a numeric
          // digit separator (30'000), not a char literal. (The old
          // focus_lint stripper got this wrong and silently blanked the
          // rest of any file that used one.)
          if (!code_line.empty() &&
              (std::isalnum(static_cast<unsigned char>(code_line.back())) ||
               code_line.back() == '_')) {
            code_line += c;
          } else {
            state = State::kChar;
            code_line += ' ';
          }
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        code_line += ' ';
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          code_line += "  ";
          ++i;
        } else {
          comment_line += c;
          code_line += ' ';
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          code_line += "  ";
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code_line += ' ';
        } else {
          code_line += ' ';
        }
        break;
      case State::kChar:
        if (c == '\\' && next != '\0') {
          code_line += "  ";
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line += ' ';
        } else {
          code_line += ' ';
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (text.compare(i, close.size(), close) == 0) {
          state = State::kCode;
          code_line.append(close.size(), ' ');
          i += close.size() - 1;
        } else {
          code_line += ' ';
        }
        break;
      }
    }
  }
  out.code.push_back(code_line);
  out.comments.push_back(comment_line);
  return out;
}

std::map<int, std::set<std::string>> AllowedCheckers(
    const StrippedSource& stripped) {
  std::map<int, std::set<std::string>> allowed;
  for (size_t row = 0; row < stripped.comments.size(); ++row) {
    const std::string& comment = stripped.comments[row];
    size_t at = comment.find("focus-analyze:");
    if (at == std::string::npos) at = comment.find("focus-lint:");
    if (at == std::string::npos) continue;
    const size_t open = comment.find("allow(", at);
    if (open == std::string::npos) continue;
    const size_t close = comment.find(')', open);
    if (close == std::string::npos) continue;
    std::string checkers = comment.substr(open + 6, close - open - 6);
    std::replace(checkers.begin(), checkers.end(), ',', ' ');
    std::istringstream in(checkers);
    std::string checker;
    const int line = static_cast<int>(row) + 1;
    while (in >> checker) {
      allowed[line].insert(checker);
      allowed[line + 1].insert(checker);  // directive on its own line above
    }
  }
  return allowed;
}

}  // namespace focus::analyze

#ifndef FOCUS_ANALYZE_CHECKS_H_
#define FOCUS_ANALYZE_CHECKS_H_

#include "analyze/checker.h"

namespace focus::analyze {

// Checker factories. The first four are direct ports of the focus_lint
// rules onto the registry; the last four are the flow-aware domain
// checkers built on the statement trees and symbol tables.

Checker MakeRawMutexChecker();            // checks_ported.cc
Checker MakeNakedMt19937Checker();        // checks_ported.cc
Checker MakeStdFunctionHotLoopChecker();  // checks_ported.cc
Checker MakeUncheckedStrtolChecker();     // checks_ported.cc
Checker MakeNondetIterationChecker();     // check_nondet_iteration.cc
Checker MakeUntrustedLengthChecker();     // check_untrusted_length.cc
Checker MakeUncheckedStatusChecker();     // check_unchecked_status.cc
Checker MakeLockedSuffixChecker();        // check_locked_suffix.cc

}  // namespace focus::analyze

#endif  // FOCUS_ANALYZE_CHECKS_H_

// untrusted-length-alloc: wire-derived sizes reaching allocation without
// a bound check.
//
// Lengths decoded from the network or from on-disk blocks (PayloadReader
// Get* out-params, ReadVarint out-params, ReadLe* return values) are
// attacker-controlled. Passing one to resize/reserve/new[] without first
// comparing it against a bound lets a 4-byte frame request gigabytes.
//
// Taint flows forward through the function's linearized statements:
// decoder out-params and Le-read assignments seed it, plain assignments
// propagate it, and a taint dies when the variable is mentioned in a
// condition (if/while/FOCUS_CHECK) containing a relational operator, or
// is handed to a validation call inside a condition. Within one
// statement, seeding precedes sanitizing — so the repo's combined
//   if (!in.GetU32(&count) || count * 8 > remaining()) return false;
// counts as checked, while a bare `if (!in.GetU32(&count))` does not.
// std::min/std::max/Clamp in the sink's own argument list also count as
// bounding.

#include "analyze/checks.h"
#include "analyze/dataflow.h"

namespace focus::analyze {
namespace {

bool SrcOnly(const std::string& rel_path) {
  return PathHasPrefix(rel_path, "src/");
}

// Decoder calls whose &out parameters become tainted.
bool IsOutParamSource(const std::string& tail) {
  return tail == "GetU8" || tail == "GetU16" || tail == "GetU32" ||
         tail == "GetU64" || tail == "GetI64" || tail == "ReadVarint";
}

// Decoder calls whose return value is tainted.
bool IsValueSource(const std::string& tail) {
  return tail == "ReadLe32" || tail == "ReadLe64" || tail == "ReadLe16";
}

void SeedTaint(const std::vector<Token>& tokens, const FlowUnit& unit,
               TaintSet* taint) {
  const size_t end = std::min(unit.end, tokens.size());
  for (size_t i = unit.begin; i + 1 < end; ++i) {
    if (!IsIdentToken(tokens[i].text) || tokens[i + 1].text != "(") continue;
    const std::string tail = Unqualified(tokens[i].text);
    if (IsOutParamSource(tail)) {
      const size_t close = MatchBracket(tokens, i + 1);
      for (size_t k = i + 2; k < close && k + 1 < end; ++k) {
        if (tokens[k].text == "&" && IsIdentToken(tokens[k + 1].text)) {
          taint->insert(tokens[k + 1].text);
        }
      }
    } else if (IsValueSource(tail)) {
      // `n = ReadLe32(p)` or `uint32_t n = ReadLe32(p)`.
      if (i >= 2 && tokens[i - 1].text == "=" &&
          IsIdentToken(tokens[i - 2].text)) {
        taint->insert(tokens[i - 2].text);
      }
    }
  }
}

bool IsCheckMacroUnit(const std::vector<Token>& tokens, const FlowUnit& unit) {
  const size_t end = std::min(unit.end, tokens.size());
  for (size_t i = unit.begin; i < end; ++i) {
    const std::string& t = tokens[i].text;
    if (t.rfind("FOCUS_CHECK", 0) == 0 || t.rfind("CHECK", 0) == 0 ||
        t == "assert") {
      return true;
    }
  }
  return false;
}

void Sanitize(const std::vector<Token>& tokens, const FlowUnit& unit,
              TaintSet* taint) {
  if (taint->empty()) return;
  if (!unit.is_condition && !IsCheckMacroUnit(tokens, unit)) return;
  const size_t end = std::min(unit.end, tokens.size());
  const bool relational = HasRelationalOp(tokens, unit.begin, end);
  std::vector<std::string> cleared;
  for (size_t i = unit.begin; i < end; ++i) {
    const std::string& t = tokens[i].text;
    if (taint->count(t) == 0) continue;
    if (relational) {
      cleared.push_back(t);
      continue;
    }
    // A tainted value handed to a (non-decoder) call inside a condition
    // is treated as validated: `if (!ValidateCount(n)) return;`
    for (size_t k = i; k > unit.begin; --k) {
      if (tokens[k - 1].text == "(") {
        if (k >= 2 && IsIdentToken(tokens[k - 2].text)) {
          const std::string tail = Unqualified(tokens[k - 2].text);
          if (!IsOutParamSource(tail) && !IsValueSource(tail)) {
            cleared.push_back(t);
          }
        }
        break;
      }
      if (tokens[k - 1].text == ")") break;  // left a nested group
    }
  }
  for (const std::string& name : cleared) taint->erase(name);
}

bool GroupClampsOrChecks(const std::vector<Token>& tokens, size_t open,
                         size_t close) {
  for (size_t i = open; i < close && i < tokens.size(); ++i) {
    const std::string tail = Unqualified(tokens[i].text);
    if (tail == "min" || tail == "max" || tail == "Clamp" ||
        tail == "clamp") {
      return true;
    }
  }
  return false;
}

void ScanSinks(CheckContext& ctx, const FlowUnit& unit,
               const TaintSet& taint) {
  const std::vector<Token>& tokens = ctx.tokens();
  const size_t end = std::min(unit.end, tokens.size());
  for (size_t i = unit.begin; i + 1 < end; ++i) {
    const std::string& t = tokens[i].text;
    // resize/reserve with a tainted (or directly decoded) extent.
    if ((t == "resize" || t == "reserve") && tokens[i + 1].text == "(") {
      const size_t close = MatchBracket(tokens, i + 1);
      if (GroupClampsOrChecks(tokens, i + 2, close)) continue;
      bool hit = AnyTaintedIn(tokens, i + 2, std::min(close, end), taint);
      std::string via;
      for (size_t k = i + 2; !hit && k < close && k + 1 < end; ++k) {
        if (IsValueSource(Unqualified(tokens[k].text)) &&
            tokens[k + 1].text == "(") {
          hit = true;
          via = Unqualified(tokens[k].text) + "(…) result";
        }
      }
      if (!hit) continue;
      ctx.Report(tokens[i].line, "untrusted-length-alloc",
                 t + "() sized by " +
                     (via.empty() ? std::string("a decoded length")
                                  : via) +
                     " with no bound check — a hostile frame can request "
                     "an arbitrary allocation; compare against a limit "
                     "(max_payload_bytes / remaining()) first");
      continue;
    }
    // new T[n] with a tainted extent.
    if (t == "new") {
      for (size_t k = i + 1; k < end && tokens[k].text != ";"; ++k) {
        if (tokens[k].text != "[") continue;
        const size_t close = MatchBracket(tokens, k);
        if (AnyTaintedIn(tokens, k + 1, std::min(close, end), taint)) {
          ctx.Report(tokens[i].line, "untrusted-length-alloc",
                     "new[] sized by a decoded length with no bound check "
                     "— a hostile frame can request an arbitrary "
                     "allocation; compare against a limit first");
        }
        break;
      }
    }
  }
}

void CheckUntrustedLength(CheckContext& ctx) {
  const std::vector<Token>& tokens = ctx.tokens();
  for (const Function& fn : ctx.file().functions) {
    TaintSet taint;
    for (const FlowUnit& unit : LinearFlow(fn.body)) {
      SeedTaint(tokens, unit, &taint);
      PropagateTaint(tokens, unit, &taint);
      Sanitize(tokens, unit, &taint);
      ScanSinks(ctx, unit, taint);
    }
  }
}

}  // namespace

Checker MakeUntrustedLengthChecker() {
  return {"untrusted-length-alloc", "src/",
          "wire-decoded sizes reaching resize/reserve/new[] unchecked",
          SrcOnly, CheckUntrustedLength};
}

}  // namespace focus::analyze

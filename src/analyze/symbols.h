#ifndef FOCUS_ANALYZE_SYMBOLS_H_
#define FOCUS_ANALYZE_SYMBOLS_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/ast.h"
#include "analyze/lexer.h"

namespace focus::analyze {

// Stage 4: heuristic symbol tables. A declaration is recognized as
// "type tokens, then a name, then one of = ; { ( , : ] or an ALL_CAPS
// annotation macro" — enough to answer the two questions the checkers
// ask: what is this variable's declared type, and does this callable
// return an unordered container. Structured bindings record every bound
// name with the binding's type text.

struct VarDecl {
  std::string name;
  std::string type;  // declaration tokens joined with spaces
  int line = 0;
};

struct SymbolTable {
  std::map<std::string, VarDecl> vars;
  // Callables seen with a recognizable return type: name -> declaration
  // (the type is the return type).
  std::map<std::string, VarDecl> functions;
};

// Attempts to parse one declaration at the start of [begin, end).
// On success appends to `out` (several entries for structured bindings)
// and returns true.
bool TryParseDecl(const std::vector<Token>& tokens, size_t begin, size_t end,
                  SymbolTable* out);

// Scans a token span linearly, splitting at ; { } and trying each piece
// as a declaration. Right for file / class scope (members, globals,
// method declarations in headers).
void CollectDeclsLinear(const std::vector<Token>& tokens, size_t begin,
                        size_t end, SymbolTable* out);

// Splits [begin, end) at top-level commas and tries each piece as a
// parameter declaration.
void CollectParamDecls(const std::vector<Token>& tokens, size_t begin,
                       size_t end, SymbolTable* out);

// Parameters plus every local declaration in the function body
// (simple statements, for-init clauses, range-for loop variables).
SymbolTable CollectFunctionSymbols(const std::vector<Token>& tokens,
                                   const Function& function);

}  // namespace focus::analyze

#endif  // FOCUS_ANALYZE_SYMBOLS_H_

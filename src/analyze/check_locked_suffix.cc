// locked-suffix: *Locked() helpers called without visible lock evidence.
//
// The repo's convention (common/mutex.h + clang thread-safety) is that a
// method named …Locked() must only run with the owning mutex held. Clang
// proves this via REQUIRES annotations; gcc builds compile the
// annotations away. This checker is the gcc shadow of that analysis: a
// call to X…Locked() is flagged unless, earlier in the same function
// body, there is lock evidence — a common::MutexLock, an explicit
// Lock()/TryLock() call, an AssertHeld(), or a capability assertion —
// or the enclosing function itself is a …Locked() helper or carries a
// REQUIRES annotation (the caller already owns the lock).
//
// Linear "evidence before call" is a conservative under-approximation of
// scopes: it accepts some wrong code clang would reject (evidence in a
// disjoint earlier block) but never flags correct code, which is the
// right trade-off for a heuristic that runs with -Werror semantics in CI.

#include "analyze/checks.h"

namespace focus::analyze {
namespace {

bool SrcOnly(const std::string& rel_path) {
  return PathHasPrefix(rel_path, "src/");
}

bool HasLockedSuffix(const std::string& name) {
  static const std::string kSuffix = "Locked";
  return name.size() >= kSuffix.size() &&
         name.compare(name.size() - kSuffix.size(), kSuffix.size(),
                      kSuffix) == 0;
}

bool IsEvidence(const std::vector<Token>& tokens, size_t i, size_t end) {
  const std::string tail = Unqualified(tokens[i].text);
  if (tail == "MutexLock" || tail == "AssertHeld" ||
      tail == "ASSERT_CAPABILITY" || tail == "REQUIRES") {
    return true;
  }
  if ((tail == "Lock" || tail == "TryLock") && i + 1 < end &&
      tokens[i + 1].text == "(") {
    return true;
  }
  return false;
}

void CheckLockedSuffix(CheckContext& ctx) {
  const std::vector<Token>& tokens = ctx.tokens();
  for (const Function& fn : ctx.file().functions) {
    if (fn.has_requires || HasLockedSuffix(TailName(fn))) continue;
    bool seen_evidence = false;
    const size_t end = std::min(fn.body_end, tokens.size());
    for (size_t i = fn.body_begin; i + 1 < end; ++i) {
      if (IsEvidence(tokens, i, end)) {
        seen_evidence = true;
        continue;
      }
      if (seen_evidence) continue;
      const std::string& t = tokens[i].text;
      if (!IsIdentToken(t) || tokens[i + 1].text != "(") continue;
      const std::string tail = Unqualified(t);
      if (!HasLockedSuffix(tail)) continue;
      ctx.Report(tokens[i].line, "locked-suffix",
                 "'" + tail +
                     "' called with no lock evidence in scope — …Locked() "
                     "helpers require the owning mutex; take a "
                     "common::MutexLock first (clang's thread-safety pass "
                     "proves this; this keeps the gcc build honest)");
    }
  }
}

}  // namespace

Checker MakeLockedSuffixChecker() {
  return {"locked-suffix", "src/",
          "*Locked() methods called without a MutexLock in scope",
          SrcOnly, CheckLockedSuffix};
}

}  // namespace focus::analyze

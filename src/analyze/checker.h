#ifndef FOCUS_ANALYZE_CHECKER_H_
#define FOCUS_ANALYZE_CHECKER_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analyze/ast.h"
#include "analyze/lexer.h"
#include "analyze/source.h"
#include "analyze/symbols.h"

namespace focus::analyze {

// Stage 6: the checker registry. Each checker owns one invariant and
// reports `file:line: [checker] message` diagnostics through the
// CheckContext, which applies per-site allow() escapes before anything
// reaches the caller.

struct Diagnostic {
  std::string file;  // display path
  int line = 0;
  std::string checker;
  std::string message;
};

// Everything the pipeline knows about one file after stages 1-4.
struct FileModel {
  std::string display_path;  // as printed in diagnostics
  std::string rel_path;      // relative to --root, '/'-separated
  StrippedSource stripped;
  std::vector<Token> tokens;
  std::vector<Function> functions;
  // File/class-scope declarations: members, globals, and method
  // declarations (with return types) outside any function body.
  SymbolTable scope;
  std::map<int, std::set<std::string>> allowed;
};

// Cross-file facts gathered in pass 1, before any checker runs.
struct GlobalIndex {
  // Callables whose declared return type mentions an unordered
  // container ("supports" -> std::unordered_map<...>&).
  std::set<std::string> unordered_methods;
  // Callables declared with a void return type anywhere in the scanned
  // set — they have no result to discard.
  std::set<std::string> void_functions;
};

class CheckContext {
 public:
  CheckContext(const FileModel& file, const FileModel* paired,
               const GlobalIndex& index, std::vector<Diagnostic>* out)
      : file_(file), paired_(paired), index_(index), out_(out) {}

  const FileModel& file() const { return file_; }
  const std::vector<Token>& tokens() const { return file_.tokens; }
  const GlobalIndex& index() const { return index_; }

  // The paired header's model (x.cc -> x.h in the same directory), for
  // resolving member types; null when there is none.
  const FileModel* paired() const { return paired_; }

  // Declared type of `name`: function locals/params first, then file
  // scope, then the paired header's file scope. Empty when unknown.
  std::string ResolveVarType(const SymbolTable& fn_symbols,
                             const std::string& name) const;

  // Declared return type of callable `name`, same resolution order.
  // Also answers for constructor-style locals ("PayloadReader in(x)")
  // which the heuristic records as callables.
  std::string ResolveCallType(const SymbolTable& fn_symbols,
                              const std::string& name) const;

  // Emits a diagnostic unless an allow(checker) directive covers `line`.
  void Report(int line, const std::string& checker,
              const std::string& message);

 private:
  const FileModel& file_;
  const FileModel* paired_;
  const GlobalIndex& index_;
  std::vector<Diagnostic>* out_;
};

struct Checker {
  std::string name;
  std::string scope;    // human-readable applicability, for --list-checkers
  std::string summary;  // one-line description
  // Decides from the repo-relative path whether the checker applies.
  bool (*in_scope)(const std::string& rel_path);
  void (*check)(CheckContext& ctx);
};

// All registered checkers, in listing order.
const std::vector<Checker>& Registry();

// True when `path` starts with `prefix` ('/'-separated relative path).
bool PathHasPrefix(const std::string& path, const std::string& prefix);

}  // namespace focus::analyze

#endif  // FOCUS_ANALYZE_CHECKER_H_

#ifndef FOCUS_ANALYZE_DATAFLOW_H_
#define FOCUS_ANALYZE_DATAFLOW_H_

#include <set>
#include <string>
#include <vector>

#include "analyze/ast.h"
#include "analyze/lexer.h"

namespace focus::analyze {

// Stage 5: intra-procedural def-use plumbing shared by the flow-aware
// checkers. Flow is approximated as the pre-order linearization of the
// statement tree: control headers are evaluated before their bodies, and
// a fact established at statement k holds for statements > k. That is
// exact for straight-line code and conservative for branches — good
// enough for the two invariants built on it (taint reaching a sink,
// evidence preceding a use).

struct FlowUnit {
  const Stmt* stmt = nullptr;
  bool is_condition = false;  // an if/while/for/switch header
  size_t begin = 0;           // token span to scan
  size_t end = 0;
};

// Pre-order linearization of a statement tree.
std::vector<FlowUnit> LinearFlow(const std::vector<Stmt>& body);

// Identifier taint set.
using TaintSet = std::set<std::string>;

// True when any identifier token in [begin, end) is tainted.
bool AnyTaintedIn(const std::vector<Token>& tokens, size_t begin, size_t end,
                  const TaintSet& taint);

// If the unit assigns or initializes variables from an expression that
// mentions a tainted identifier, taints the assigned names. Handles
// `x = expr`, `T x = expr`, and compound assignment; an explicit cast
// does not launder taint.
void PropagateTaint(const std::vector<Token>& tokens, const FlowUnit& unit,
                    TaintSet* taint);

// True when [begin, end) contains a standalone relational operator
// (< > <= >=), excluding << and >> and template-argument angles (which
// the heuristic cannot always tell apart; a stray match errs on the
// side of "checked", i.e. fewer diagnostics).
bool HasRelationalOp(const std::vector<Token>& tokens, size_t begin,
                     size_t end);

}  // namespace focus::analyze

#endif  // FOCUS_ANALYZE_DATAFLOW_H_

#ifndef FOCUS_ANALYZE_LEXER_H_
#define FOCUS_ANALYZE_LEXER_H_

#include <string>
#include <vector>

#include "analyze/source.h"

namespace focus::analyze {

// Stage 2: tokens over the code view. Identifiers, numbers, "::", and
// single punctuation characters; qualified names are merged so
// "std :: unordered_map" is one token "std::unordered_map" carrying the
// line of its first component.
struct Token {
  std::string text;
  int line = 0;  // 1-based
};

bool IsIdentStart(char c);
bool IsIdentChar(char c);

// True when `text` starts with an identifier character (an identifier or
// a qualified name; never punctuation or a number).
bool IsIdentToken(const std::string& text);

// The unqualified tail of a possibly qualified name: "a::b::c" -> "c".
std::string Unqualified(const std::string& text);

std::vector<Token> Lex(const StrippedSource& stripped);

}  // namespace focus::analyze

#endif  // FOCUS_ANALYZE_LEXER_H_

#ifndef FOCUS_ANALYZE_DRIVER_H_
#define FOCUS_ANALYZE_DRIVER_H_

#include <string>
#include <vector>

#include "analyze/checker.h"

namespace focus::analyze {

// Stage 7: the driver. Two passes over the file set: pass 1 builds every
// FileModel and the GlobalIndex (so `m.supports()` resolves to an
// unordered container even when LitsModel is declared in another file);
// pass 2 runs every in-scope checker. Diagnostics come back sorted by
// (file, line, checker).

struct AnalyzeResult {
  std::vector<Diagnostic> diagnostics;
  size_t files_scanned = 0;
  bool io_error = false;
};

// Builds a FileModel from in-memory text (exposed for unit tests).
FileModel BuildFileModel(const std::string& rel_path,
                         const std::string& text);

// Analyzes a set of (rel_path, text) files — the pure core of the tool.
AnalyzeResult AnalyzeFiles(
    const std::vector<std::pair<std::string, std::string>>& files);

// Command-line entry point shared by tools/focus_analyze and the
// deprecated tools/focus_lint shim:
//   <tool> [--root DIR] [--list-checkers] [paths...]
// With no paths scans src/ tools/ tests/ bench/ fuzz/ examples/ under
// --root, skipping build trees, fuzz corpora, and the analyzer's own
// fixture directories. Exit status: 0 clean, 1 findings, 2 usage/IO.
int AnalyzerMain(int argc, char** argv, const char* tool_name);

}  // namespace focus::analyze

#endif  // FOCUS_ANALYZE_DRIVER_H_

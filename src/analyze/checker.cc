#include "analyze/checker.h"

#include "analyze/checks.h"

namespace focus::analyze {

std::string CheckContext::ResolveVarType(const SymbolTable& fn_symbols,
                                         const std::string& name) const {
  auto it = fn_symbols.vars.find(name);
  if (it != fn_symbols.vars.end()) return it->second.type;
  it = file_.scope.vars.find(name);
  if (it != file_.scope.vars.end()) return it->second.type;
  if (paired_ != nullptr) {
    it = paired_->scope.vars.find(name);
    if (it != paired_->scope.vars.end()) return it->second.type;
  }
  return "";
}

std::string CheckContext::ResolveCallType(const SymbolTable& fn_symbols,
                                          const std::string& name) const {
  auto it = fn_symbols.functions.find(name);
  if (it != fn_symbols.functions.end()) return it->second.type;
  it = file_.scope.functions.find(name);
  if (it != file_.scope.functions.end()) return it->second.type;
  if (paired_ != nullptr) {
    it = paired_->scope.functions.find(name);
    if (it != paired_->scope.functions.end()) return it->second.type;
  }
  return "";
}

void CheckContext::Report(int line, const std::string& checker,
                          const std::string& message) {
  const auto it = file_.allowed.find(line);
  if (it != file_.allowed.end() && it->second.count(checker) != 0) return;
  out_->push_back({file_.display_path, line, checker, message});
}

bool PathHasPrefix(const std::string& path, const std::string& prefix) {
  return path.rfind(prefix, 0) == 0;
}

const std::vector<Checker>& Registry() {
  static const std::vector<Checker> kCheckers = {
      MakeRawMutexChecker(),
      MakeNakedMt19937Checker(),
      MakeStdFunctionHotLoopChecker(),
      MakeUncheckedStrtolChecker(),
      MakeNondetIterationChecker(),
      MakeUntrustedLengthChecker(),
      MakeUncheckedStatusChecker(),
      MakeLockedSuffixChecker(),
  };
  return kCheckers;
}

}  // namespace focus::analyze

#include "analyze/dataflow.h"

#include "analyze/symbols.h"

namespace focus::analyze {
namespace {

void Linearize(const std::vector<Stmt>& stmts, std::vector<FlowUnit>* out) {
  for (const Stmt& stmt : stmts) {
    switch (stmt.kind) {
      case StmtKind::kSimple:
        out->push_back({&stmt, false, stmt.header_begin, stmt.header_end});
        break;
      case StmtKind::kIf:
      case StmtKind::kFor:
      case StmtKind::kRangeFor:
      case StmtKind::kWhile:
      case StmtKind::kSwitch:
        out->push_back({&stmt, true, stmt.header_begin, stmt.header_end});
        Linearize(stmt.children, out);
        break;
      case StmtKind::kDoWhile:
        // Body first, then the trailing while-condition.
        Linearize(stmt.children, out);
        if (stmt.header_end > stmt.header_begin) {
          out->push_back({&stmt, true, stmt.header_begin, stmt.header_end});
        }
        break;
      case StmtKind::kBlock:
        Linearize(stmt.children, out);
        break;
    }
  }
}

}  // namespace

std::vector<FlowUnit> LinearFlow(const std::vector<Stmt>& body) {
  std::vector<FlowUnit> out;
  Linearize(body, &out);
  return out;
}

bool AnyTaintedIn(const std::vector<Token>& tokens, size_t begin, size_t end,
                  const TaintSet& taint) {
  if (taint.empty()) return false;
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    if (taint.count(tokens[i].text) != 0) return true;
  }
  return false;
}

void PropagateTaint(const std::vector<Token>& tokens, const FlowUnit& unit,
                    TaintSet* taint) {
  if (taint->empty()) return;
  // Find a top-level `=` (not ==, !=, <=, >=, +=, ...). Tokens are single
  // characters for punctuation, so `==` appears as two adjacent `=` tokens
  // and `<=` as `<` then `=`.
  const size_t begin = unit.begin;
  const size_t end = std::min(unit.end, tokens.size());
  int depth = 0;
  for (size_t i = begin; i < end; ++i) {
    const std::string& t = tokens[i].text;
    if (t == "(" || t == "[" || t == "{") ++depth;
    else if (t == ")" || t == "]" || t == "}") --depth;
    if (depth != 0 || t != "=") continue;
    const std::string prev = i > begin ? tokens[i - 1].text : "";
    const std::string next = i + 1 < end ? tokens[i + 1].text : "";
    if (next == "=") {  // `==`: skip both
      ++i;
      continue;
    }
    if (prev == "=" || prev == "!" || prev == "<" || prev == ">") continue;
    const bool compound = prev == "+" || prev == "-" || prev == "*" ||
                          prev == "/" || prev == "%" || prev == "|" ||
                          prev == "&" || prev == "^";
    // LHS name: the identifier just before `=` (or before the compound
    // operator char).
    const size_t back = compound ? 2 : 1;
    if (i < begin + back) return;
    const size_t name_at = i - back;
    if (!IsIdentToken(tokens[name_at].text)) return;
    if (AnyTaintedIn(tokens, i + 1, end, *taint)) {
      taint->insert(tokens[name_at].text);
    }
    return;
  }
}

bool HasRelationalOp(const std::vector<Token>& tokens, size_t begin,
                     size_t end) {
  for (size_t i = begin; i < end && i < tokens.size(); ++i) {
    const std::string& t = tokens[i].text;
    if (t != "<" && t != ">") continue;
    const std::string next = i + 1 < end ? tokens[i + 1].text : "";
    if (next == t) {  // << or >>
      ++i;
      continue;
    }
    return true;
  }
  return false;
}

}  // namespace focus::analyze

#include "analyze/lexer.h"

#include <cctype>

namespace focus::analyze {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentToken(const std::string& text) {
  return !text.empty() && IsIdentStart(text[0]);
}

std::string Unqualified(const std::string& text) {
  const size_t at = text.rfind("::");
  return at == std::string::npos ? text : text.substr(at + 2);
}

std::vector<Token> Lex(const StrippedSource& stripped) {
  std::vector<Token> tokens;
  for (size_t row = 0; row < stripped.code.size(); ++row) {
    const std::string& line = stripped.code[row];
    const int line_no = static_cast<int>(row) + 1;
    size_t i = 0;
    while (i < line.size()) {
      const char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (IsIdentStart(c)) {
        size_t j = i + 1;
        while (j < line.size() && IsIdentChar(line[j])) ++j;
        tokens.push_back({line.substr(i, j - i), line_no});
        i = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        // Numbers lex as one token (including 0x1F, 1e9, 1.5f, 16u);
        // checkers only ever test the leading digit.
        size_t j = i + 1;
        while (j < line.size() &&
               (IsIdentChar(line[j]) || line[j] == '.' || line[j] == '\'')) {
          ++j;
        }
        tokens.push_back({line.substr(i, j - i), line_no});
        i = j;
        continue;
      }
      if (c == ':' && i + 1 < line.size() && line[i + 1] == ':') {
        tokens.push_back({"::", line_no});
        i += 2;
        continue;
      }
      tokens.push_back({std::string(1, c), line_no});
      ++i;
    }
  }
  // Merge qualified names: id :: id (:: id)* — the line number of the
  // first component wins.
  std::vector<Token> merged;
  size_t i = 0;
  while (i < tokens.size()) {
    if (IsIdentToken(tokens[i].text)) {
      Token qualified = tokens[i];
      size_t j = i + 1;
      while (j + 1 < tokens.size() && tokens[j].text == "::" &&
             IsIdentToken(tokens[j + 1].text)) {
        qualified.text += "::" + tokens[j + 1].text;
        j += 2;
      }
      merged.push_back(std::move(qualified));
      i = j;
      continue;
    }
    merged.push_back(tokens[i]);
    ++i;
  }
  return merged;
}

}  // namespace focus::analyze

#include "tree/presorted_builder.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace focus::dt {
namespace {

using internal::Impurity;

struct Split {
  bool valid = false;
  int attribute = -1;
  double threshold = 0.0;
  uint64_t left_mask = 0;
  double gain = 0.0;
};

// One node of the breadth-first frontier.
struct FrontierNode {
  std::vector<int64_t> class_counts;
  int64_t n = 0;
  int depth = 0;
  double impurity = 0.0;
  bool active = false;  // still a split candidate this level
  Split best;
  // Linkage for patching the parent's children once created.
  int parent_tree_index = -1;
  bool is_left = false;
};

class PresortedBuilder {
 public:
  PresortedBuilder(const data::Dataset& dataset, const CartOptions& options)
      : dataset_(dataset),
        options_(options),
        num_classes_(dataset.schema().num_classes()),
        tree_(dataset.schema()) {}

  DecisionTree Build() {
    const int64_t n = dataset_.num_rows();
    // One-time presort of every numeric attribute (the SLIQ attribute
    // lists).
    for (int attr = 0; attr < dataset_.num_attributes(); ++attr) {
      if (dataset_.schema().attribute(attr).type !=
          data::AttributeType::kNumeric) {
        sorted_orders_.emplace_back();
        continue;
      }
      std::vector<int64_t> order(n);
      std::iota(order.begin(), order.end(), 0);
      std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
        return dataset_.At(a, attr) < dataset_.At(b, attr);
      });
      sorted_orders_.push_back(std::move(order));
    }

    // Root frontier covers every row.
    node_of_.assign(n, 0);
    FrontierNode root;
    root.class_counts.assign(num_classes_, 0);
    for (int64_t r = 0; r < n; ++r) ++root.class_counts[dataset_.Label(r)];
    root.n = n;
    root.depth = 0;
    frontier_.push_back(std::move(root));

    while (true) {
      bool any_active = false;
      for (FrontierNode& node : frontier_) {
        node.active = IsSplittable(node);
        node.best = Split{};
        node.best.gain = options_.min_gain;
        any_active |= node.active;
      }
      if (any_active) FindBestSplits();

      // Decide every frontier node: leaf or internal; build next level.
      std::vector<FrontierNode> next_frontier;
      std::vector<int> slot_of_left(frontier_.size(), -1);
      std::vector<int> slot_of_right(frontier_.size(), -1);
      std::vector<int> tree_index(frontier_.size(), -1);
      bool grew = false;
      for (size_t f = 0; f < frontier_.size(); ++f) {
        FrontierNode& node = frontier_[f];
        int created;
        if (node.active && node.best.valid) {
          created = tree_.AddInternalNode(node.best.attribute,
                                          node.best.threshold,
                                          node.best.left_mask);
          FrontierNode left;
          FrontierNode right;
          left.class_counts.assign(num_classes_, 0);
          right.class_counts.assign(num_classes_, 0);
          left.depth = right.depth = node.depth + 1;
          left.parent_tree_index = right.parent_tree_index = created;
          left.is_left = true;
          slot_of_left[f] = static_cast<int>(next_frontier.size());
          next_frontier.push_back(std::move(left));
          slot_of_right[f] = static_cast<int>(next_frontier.size());
          next_frontier.push_back(std::move(right));
          grew = true;
        } else {
          created = tree_.AddLeafNode(node.class_counts);
        }
        tree_index[f] = created;
        if (node.parent_tree_index >= 0) {
          PatchParent(node.parent_tree_index, node.is_left, created);
        }
      }
      if (!grew) break;

      // Re-assign rows to the next frontier.
      for (int64_t r = 0; r < n; ++r) {
        const int f = node_of_[r];
        if (f < 0 || slot_of_left[f] < 0) {
          node_of_[r] = -1;  // finalized leaf
          continue;
        }
        const Split& split = frontier_[f].best;
        bool go_left;
        if (dataset_.schema().attribute(split.attribute).type ==
            data::AttributeType::kNumeric) {
          go_left = dataset_.At(r, split.attribute) < split.threshold;
        } else {
          const int code = static_cast<int>(dataset_.At(r, split.attribute));
          go_left = (split.left_mask & (1ULL << code)) != 0;
        }
        const int child = go_left ? slot_of_left[f] : slot_of_right[f];
        node_of_[r] = child;
        ++next_frontier[child].class_counts[dataset_.Label(r)];
        ++next_frontier[child].n;
      }
      frontier_ = std::move(next_frontier);
    }
    FlushParentPatches();
    return std::move(tree_);
  }

 private:
  bool IsSplittable(const FrontierNode& node) const {
    const bool pure =
        std::count_if(node.class_counts.begin(), node.class_counts.end(),
                      [](int64_t c) { return c > 0; }) <= 1;
    return node.depth < options_.max_depth && !pure &&
           node.n >= 2 * options_.min_leaf_size;
  }

  // Synchronized passes over the attribute lists: per active frontier
  // node, the same candidate sweep BestNumericSplit/BestCategoricalSplit
  // performs, with identical objective and tie-breaking.
  void FindBestSplits() {
    for (FrontierNode& node : frontier_) {
      if (node.active) {
        node.impurity = Impurity(node.class_counts, node.n, options_.criterion);
      }
    }
    for (int attr = 0; attr < dataset_.num_attributes(); ++attr) {
      if (dataset_.schema().attribute(attr).type ==
          data::AttributeType::kNumeric) {
        NumericPass(attr);
      } else {
        CategoricalPass(attr);
      }
    }
  }

  void NumericPass(int attr) {
    const size_t num_nodes = frontier_.size();
    std::vector<std::vector<int64_t>> left_counts(
        num_nodes, std::vector<int64_t>(num_classes_, 0));
    std::vector<int64_t> left_n(num_nodes, 0);
    std::vector<double> prev_value(num_nodes, 0.0);
    std::vector<char> has_prev(num_nodes, 0);
    std::vector<Split> attr_best(num_nodes);

    for (int64_t r : sorted_orders_[attr]) {
      const int f = node_of_[r];
      if (f < 0 || !frontier_[f].active) continue;
      FrontierNode& node = frontier_[f];
      const double v = dataset_.At(r, attr);
      if (has_prev[f] && v != prev_value[f]) {
        const int64_t right_n = node.n - left_n[f];
        if (left_n[f] >= options_.min_leaf_size &&
            right_n >= options_.min_leaf_size) {
          std::vector<int64_t> right_counts(num_classes_);
          for (int c = 0; c < num_classes_; ++c) {
            right_counts[c] = node.class_counts[c] - left_counts[f][c];
          }
          const double weighted =
              (static_cast<double>(left_n[f]) *
                   Impurity(left_counts[f], left_n[f], options_.criterion) +
               static_cast<double>(right_n) *
                   Impurity(right_counts, right_n, options_.criterion)) /
              static_cast<double>(node.n);
          const double gain = node.impurity - weighted;
          if (gain > attr_best[f].gain) {
            attr_best[f].valid = true;
            attr_best[f].attribute = attr;
            attr_best[f].threshold = (prev_value[f] + v) / 2.0;
            attr_best[f].gain = gain;
          }
        }
      }
      ++left_counts[f][dataset_.Label(r)];
      ++left_n[f];
      prev_value[f] = v;
      has_prev[f] = 1;
    }
    MergeAttrBests(attr_best);
  }

  void CategoricalPass(int attr) {
    const int cardinality = dataset_.schema().attribute(attr).cardinality;
    const size_t num_nodes = frontier_.size();
    // Per (node, code, class) counts in one pass.
    std::vector<int64_t> counts(num_nodes * cardinality * num_classes_, 0);
    std::vector<int64_t> totals(num_nodes * cardinality, 0);
    for (int64_t r = 0; r < dataset_.num_rows(); ++r) {
      const int f = node_of_[r];
      if (f < 0 || !frontier_[f].active) continue;
      const int code = static_cast<int>(dataset_.At(r, attr));
      ++counts[(static_cast<size_t>(f) * cardinality + code) * num_classes_ +
               dataset_.Label(r)];
      ++totals[static_cast<size_t>(f) * cardinality + code];
    }

    std::vector<Split> attr_best(num_nodes);
    for (size_t f = 0; f < num_nodes; ++f) {
      if (!frontier_[f].active) continue;
      const FrontierNode& node = frontier_[f];
      std::vector<int> order;
      for (int c = 0; c < cardinality; ++c) {
        if (totals[f * cardinality + c] > 0) order.push_back(c);
      }
      if (order.size() < 2) continue;
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const double pa =
            static_cast<double>(counts[(f * cardinality + a) * num_classes_]) /
            static_cast<double>(totals[f * cardinality + a]);
        const double pb =
            static_cast<double>(counts[(f * cardinality + b) * num_classes_]) /
            static_cast<double>(totals[f * cardinality + b]);
        return pa < pb;
      });

      std::vector<int64_t> left_counts(num_classes_, 0);
      std::vector<int64_t> right_counts = node.class_counts;
      uint64_t mask = 0;
      int64_t left_n = 0;
      for (size_t i = 0; i + 1 < order.size(); ++i) {
        const int code = order[i];
        mask |= (1ULL << code);
        left_n += totals[f * cardinality + code];
        for (int k = 0; k < num_classes_; ++k) {
          const int64_t c = counts[(f * cardinality + code) * num_classes_ + k];
          left_counts[k] += c;
          right_counts[k] -= c;
        }
        const int64_t right_n = node.n - left_n;
        if (left_n < options_.min_leaf_size ||
            right_n < options_.min_leaf_size) {
          continue;
        }
        const double weighted =
            (static_cast<double>(left_n) *
                 Impurity(left_counts, left_n, options_.criterion) +
             static_cast<double>(right_n) *
                 Impurity(right_counts, right_n, options_.criterion)) /
            static_cast<double>(node.n);
        const double gain = node.impurity - weighted;
        if (gain > attr_best[f].gain) {
          attr_best[f].valid = true;
          attr_best[f].attribute = attr;
          attr_best[f].left_mask = mask;
          attr_best[f].gain = gain;
        }
      }
    }
    MergeAttrBests(attr_best);
  }

  void MergeAttrBests(const std::vector<Split>& attr_best) {
    for (size_t f = 0; f < frontier_.size(); ++f) {
      if (!frontier_[f].active) continue;
      if (attr_best[f].valid && attr_best[f].gain > frontier_[f].best.gain) {
        frontier_[f].best = attr_best[f];
      }
    }
  }

  void PatchParent(int parent, bool is_left, int child) {
    pending_patches_.push_back({parent, is_left, child});
  }

  void FlushParentPatches() {
    // Children arrive in creation order; collect both sides per parent.
    std::vector<int> left(tree_.num_nodes(), -1);
    std::vector<int> right(tree_.num_nodes(), -1);
    for (const auto& [parent, is_left, child] : pending_patches_) {
      (is_left ? left : right)[parent] = child;
    }
    for (int i = 0; i < tree_.num_nodes(); ++i) {
      if (left[i] >= 0 || right[i] >= 0) {
        FOCUS_CHECK(left[i] >= 0 && right[i] >= 0)
            << "internal node " << i << " missing a child";
        tree_.SetChildren(i, left[i], right[i]);
      }
    }
  }

  struct Patch {
    int parent;
    bool is_left;
    int child;
  };

  const data::Dataset& dataset_;
  const CartOptions& options_;
  const int num_classes_;
  DecisionTree tree_;
  std::vector<std::vector<int64_t>> sorted_orders_;  // per numeric attribute
  std::vector<int> node_of_;  // row -> frontier slot (-1: finalized)
  std::vector<FrontierNode> frontier_;
  std::vector<Patch> pending_patches_;
};

}  // namespace

DecisionTree BuildCartPresorted(const data::Dataset& dataset,
                                const CartOptions& options) {
  FOCUS_CHECK_GT(dataset.num_rows(), 0);
  FOCUS_CHECK_GE(dataset.schema().num_classes(), 2);
  FOCUS_CHECK_GE(options.min_leaf_size, 1);
  PresortedBuilder builder(dataset, options);
  return builder.Build();
}

}  // namespace focus::dt

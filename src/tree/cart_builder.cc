#include "tree/cart_builder.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "common/check.h"

namespace focus::dt {

namespace internal {

double Impurity(const std::vector<int64_t>& counts, int64_t total,
                SplitCriterion criterion) {
  if (total == 0) return 0.0;
  if (criterion == SplitCriterion::kGini) {
    double sum_sq = 0.0;
    for (int64_t c : counts) {
      const double p = static_cast<double>(c) / static_cast<double>(total);
      sum_sq += p * p;
    }
    return 1.0 - sum_sq;
  }
  double entropy = 0.0;
  for (int64_t c : counts) {
    if (c == 0) continue;
    const double p = static_cast<double>(c) / static_cast<double>(total);
    entropy -= p * std::log2(p);
  }
  return entropy;
}

}  // namespace internal

namespace {

struct Split {
  bool valid = false;
  int attribute = -1;
  double threshold = 0.0;  // numeric
  uint64_t left_mask = 0;  // categorical
  double gain = 0.0;
};

class CartBuilder {
 public:
  CartBuilder(const data::Dataset& dataset, const CartOptions& options)
      : dataset_(dataset),
        options_(options),
        num_classes_(dataset.schema().num_classes()),
        tree_(dataset.schema()) {}

  DecisionTree Build() {
    std::vector<int64_t> rows(dataset_.num_rows());
    std::iota(rows.begin(), rows.end(), 0);
    BuildNode(std::move(rows), /*depth=*/0);
    return std::move(tree_);
  }

 private:
  std::vector<int64_t> ClassCounts(const std::vector<int64_t>& rows) const {
    std::vector<int64_t> counts(num_classes_, 0);
    for (int64_t row : rows) ++counts[dataset_.Label(row)];
    return counts;
  }

  // Best numeric split on `attr` via a sorted sweep over distinct values.
  Split BestNumericSplit(const std::vector<int64_t>& rows, int attr,
                         const std::vector<int64_t>& total_counts,
                         double parent_gini) const {
    Split best;
    std::vector<int64_t> sorted = rows;
    std::sort(sorted.begin(), sorted.end(), [&](int64_t a, int64_t b) {
      return dataset_.At(a, attr) < dataset_.At(b, attr);
    });

    std::vector<int64_t> left_counts(num_classes_, 0);
    std::vector<int64_t> right_counts = total_counts;
    const int64_t n = static_cast<int64_t>(sorted.size());
    for (int64_t i = 0; i + 1 < n; ++i) {
      const int label = dataset_.Label(sorted[i]);
      ++left_counts[label];
      --right_counts[label];
      const double v = dataset_.At(sorted[i], attr);
      const double v_next = dataset_.At(sorted[i + 1], attr);
      if (v == v_next) continue;  // can only cut between distinct values
      const int64_t left_n = i + 1;
      const int64_t right_n = n - left_n;
      if (left_n < options_.min_leaf_size || right_n < options_.min_leaf_size) {
        continue;
      }
      const double weighted =
          (static_cast<double>(left_n) * internal::Impurity(left_counts, left_n, options_.criterion) +
           static_cast<double>(right_n) * internal::Impurity(right_counts, right_n, options_.criterion)) /
          static_cast<double>(n);
      const double gain = parent_gini - weighted;
      if (gain > best.gain) {
        best.valid = true;
        best.attribute = attr;
        best.threshold = (v + v_next) / 2.0;
        best.gain = gain;
      }
    }
    return best;
  }

  // Best categorical split: order categories by P(class 0) and sweep
  // prefixes (optimal for two classes).
  Split BestCategoricalSplit(const std::vector<int64_t>& rows, int attr,
                             const std::vector<int64_t>& total_counts,
                             double parent_gini) const {
    Split best;
    const int cardinality = dataset_.schema().attribute(attr).cardinality;
    // Per-category class counts.
    std::vector<std::vector<int64_t>> cat_counts(
        cardinality, std::vector<int64_t>(num_classes_, 0));
    std::vector<int64_t> cat_totals(cardinality, 0);
    for (int64_t row : rows) {
      const int code = static_cast<int>(dataset_.At(row, attr));
      ++cat_counts[code][dataset_.Label(row)];
      ++cat_totals[code];
    }

    std::vector<int> order;
    for (int c = 0; c < cardinality; ++c) {
      if (cat_totals[c] > 0) order.push_back(c);
    }
    if (order.size() < 2) return best;
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double pa = static_cast<double>(cat_counts[a][0]) /
                        static_cast<double>(cat_totals[a]);
      const double pb = static_cast<double>(cat_counts[b][0]) /
                        static_cast<double>(cat_totals[b]);
      return pa < pb;
    });

    std::vector<int64_t> left_counts(num_classes_, 0);
    std::vector<int64_t> right_counts = total_counts;
    const int64_t n = static_cast<int64_t>(rows.size());
    uint64_t mask = 0;
    int64_t left_n = 0;
    for (size_t i = 0; i + 1 < order.size(); ++i) {
      const int code = order[i];
      mask |= (1ULL << code);
      left_n += cat_totals[code];
      for (int k = 0; k < num_classes_; ++k) {
        left_counts[k] += cat_counts[code][k];
        right_counts[k] -= cat_counts[code][k];
      }
      const int64_t right_n = n - left_n;
      if (left_n < options_.min_leaf_size || right_n < options_.min_leaf_size) {
        continue;
      }
      const double weighted =
          (static_cast<double>(left_n) * internal::Impurity(left_counts, left_n, options_.criterion) +
           static_cast<double>(right_n) * internal::Impurity(right_counts, right_n, options_.criterion)) /
          static_cast<double>(n);
      const double gain = parent_gini - weighted;
      if (gain > best.gain) {
        best.valid = true;
        best.attribute = attr;
        best.left_mask = mask;
        best.gain = gain;
      }
    }
    return best;
  }

  int BuildNode(std::vector<int64_t> rows, int depth) {
    std::vector<int64_t> counts = ClassCounts(rows);
    const int64_t n = static_cast<int64_t>(rows.size());
    const double parent_gini = internal::Impurity(counts, n, options_.criterion);

    const bool pure = std::count_if(counts.begin(), counts.end(),
                                    [](int64_t c) { return c > 0; }) <= 1;
    if (depth >= options_.max_depth || pure ||
        n < 2 * options_.min_leaf_size) {
      return tree_.AddLeafNode(std::move(counts));
    }

    Split best;
    best.gain = options_.min_gain;
    for (int attr = 0; attr < dataset_.num_attributes(); ++attr) {
      const Split candidate =
          dataset_.schema().attribute(attr).type == data::AttributeType::kNumeric
              ? BestNumericSplit(rows, attr, counts, parent_gini)
              : BestCategoricalSplit(rows, attr, counts, parent_gini);
      if (candidate.valid && candidate.gain > best.gain) best = candidate;
    }
    if (!best.valid) {
      return tree_.AddLeafNode(std::move(counts));
    }

    std::vector<int64_t> left_rows;
    std::vector<int64_t> right_rows;
    const bool numeric = dataset_.schema().attribute(best.attribute).type ==
                         data::AttributeType::kNumeric;
    for (int64_t row : rows) {
      bool go_left;
      if (numeric) {
        go_left = dataset_.At(row, best.attribute) < best.threshold;
      } else {
        const int code = static_cast<int>(dataset_.At(row, best.attribute));
        go_left = (best.left_mask & (1ULL << code)) != 0;
      }
      (go_left ? left_rows : right_rows).push_back(row);
    }
    rows.clear();
    rows.shrink_to_fit();

    const int node =
        tree_.AddInternalNode(best.attribute, best.threshold, best.left_mask);
    const int left = BuildNode(std::move(left_rows), depth + 1);
    const int right = BuildNode(std::move(right_rows), depth + 1);
    tree_.SetChildren(node, left, right);
    return node;
  }

  const data::Dataset& dataset_;
  const CartOptions& options_;
  const int num_classes_;
  DecisionTree tree_;
};

}  // namespace

DecisionTree BuildCart(const data::Dataset& dataset, const CartOptions& options) {
  FOCUS_CHECK_GT(dataset.num_rows(), 0);
  FOCUS_CHECK_GE(dataset.schema().num_classes(), 2);
  FOCUS_CHECK_GE(options.min_leaf_size, 1);
  FOCUS_CHECK_GE(options.max_depth, 0);
  CartBuilder builder(dataset, options);
  return builder.Build();
}

}  // namespace focus::dt

#ifndef FOCUS_TREE_PRESORTED_BUILDER_H_
#define FOCUS_TREE_PRESORTED_BUILDER_H_

#include "data/dataset.h"
#include "tree/cart_builder.h"
#include "tree/decision_tree.h"

namespace focus::dt {

// SLIQ/SPRINT-style presorted tree induction (Mehta et al. [28], Shafer
// et al. [34] — the scalable-classifier line the paper's RainForest [20]
// setup generalizes). Numeric attributes are sorted ONCE up front into
// attribute lists; the tree is grown breadth-first, and each level makes
// one synchronized pass over the attribute lists, maintaining per-node
// class histograms, instead of re-sorting rows at every node.
//
// Produces the same greedy gini/entropy tree as BuildCart (identical
// split objective and tie-breaking); the difference is the O(#attrs *
// n log n) one-time sort + O(#attrs * n) per level cost profile, which is
// what made these algorithms disk-friendly at scale.
DecisionTree BuildCartPresorted(const data::Dataset& dataset,
                                const CartOptions& options);

}  // namespace focus::dt

#endif  // FOCUS_TREE_PRESORTED_BUILDER_H_

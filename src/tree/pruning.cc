#include "tree/pruning.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace focus::dt {
namespace {

class Pruner {
 public:
  Pruner(const DecisionTree& tree, const data::Dataset& validation)
      : tree_(tree),
        num_classes_(tree.schema().num_classes()),
        validation_counts_(
            static_cast<size_t>(tree.num_nodes()) * num_classes_, 0),
        training_counts_(
            static_cast<size_t>(tree.num_nodes()) * num_classes_, 0) {
    // Validation counts: route each row, incrementing every node on its
    // path.
    for (int64_t row = 0; row < validation.num_rows(); ++row) {
      const auto values = validation.Row(row);
      const int label = validation.Label(row);
      int current = 0;
      while (true) {
        ++validation_counts_[static_cast<size_t>(current) * num_classes_ +
                             label];
        const DecisionTree::Node& node = tree_.node(current);
        if (node.attribute < 0) break;
        bool go_left;
        if (tree_.schema().attribute(node.attribute).type ==
            data::AttributeType::kNumeric) {
          go_left = values[node.attribute] < node.threshold;
        } else {
          const int code = static_cast<int>(values[node.attribute]);
          go_left = (node.left_mask & (1ULL << code)) != 0;
        }
        current = go_left ? node.left : node.right;
      }
    }
    // Training counts: leaves carry them; aggregate bottom-up.
    AggregateTraining(0);
  }

  DecisionTree Prune() {
    DecisionTree pruned(tree_.schema());
    BuildPruned(0, &pruned);
    return pruned;
  }

 private:
  std::vector<int64_t> AggregateTraining(int node_index) {
    const DecisionTree::Node& node = tree_.node(node_index);
    std::vector<int64_t> counts(num_classes_, 0);
    if (node.attribute < 0) {
      counts = node.class_counts;
    } else {
      const std::vector<int64_t> left = AggregateTraining(node.left);
      const std::vector<int64_t> right = AggregateTraining(node.right);
      for (int c = 0; c < num_classes_; ++c) counts[c] = left[c] + right[c];
    }
    for (int c = 0; c < num_classes_; ++c) {
      training_counts_[static_cast<size_t>(node_index) * num_classes_ + c] =
          counts[c];
    }
    return counts;
  }

  int MajorityTrainingLabel(int node_index) const {
    const int64_t* counts =
        &training_counts_[static_cast<size_t>(node_index) * num_classes_];
    return static_cast<int>(std::max_element(counts, counts + num_classes_) -
                            counts);
  }

  // Validation errors in the subtree under `node_index` when its leaves
  // predict their majority training label.
  int64_t SubtreeValidationErrors(int node_index) const {
    const DecisionTree::Node& node = tree_.node(node_index);
    if (node.attribute < 0) {
      return ErrorsAsLeaf(node_index);
    }
    return SubtreeValidationErrors(node.left) +
           SubtreeValidationErrors(node.right);
  }

  // Validation errors if `node_index` were a leaf.
  int64_t ErrorsAsLeaf(int node_index) const {
    const int majority = MajorityTrainingLabel(node_index);
    int64_t errors = 0;
    for (int c = 0; c < num_classes_; ++c) {
      if (c != majority) {
        errors += validation_counts_[static_cast<size_t>(node_index) *
                                         num_classes_ +
                                     c];
      }
    }
    return errors;
  }

  // Rebuilds the (possibly collapsed) subtree into `out`; returns the new
  // node index.
  int BuildPruned(int node_index, DecisionTree* out) {
    const DecisionTree::Node& node = tree_.node(node_index);
    const bool collapse =
        node.attribute >= 0 &&
        ErrorsAsLeaf(node_index) <= SubtreeValidationErrors(node_index);
    if (node.attribute < 0 || collapse) {
      std::vector<int64_t> counts(num_classes_);
      for (int c = 0; c < num_classes_; ++c) {
        counts[c] =
            training_counts_[static_cast<size_t>(node_index) * num_classes_ + c];
      }
      return out->AddLeafNode(std::move(counts));
    }
    const int fresh =
        out->AddInternalNode(node.attribute, node.threshold, node.left_mask);
    const int left = BuildPruned(node.left, out);
    const int right = BuildPruned(node.right, out);
    out->SetChildren(fresh, left, right);
    return fresh;
  }

  const DecisionTree& tree_;
  const int num_classes_;
  std::vector<int64_t> validation_counts_;  // [node][class]
  std::vector<int64_t> training_counts_;    // [node][class]
};

}  // namespace

DecisionTree PruneReducedError(const DecisionTree& tree,
                               const data::Dataset& validation) {
  FOCUS_CHECK(tree.schema() == validation.schema());
  FOCUS_CHECK_GT(tree.num_nodes(), 0);
  FOCUS_CHECK_GT(validation.num_rows(), 0);
  Pruner pruner(tree, validation);
  return pruner.Prune();
}

}  // namespace focus::dt

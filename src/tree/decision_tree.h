#ifndef FOCUS_TREE_DECISION_TREE_H_
#define FOCUS_TREE_DECISION_TREE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "data/schema.h"

namespace focus::dt {

// A binary decision tree over a Schema (a dt-model's carrier, §2.1).
// Internal nodes split on one attribute: numeric splits send
// `value < threshold` left; categorical splits send codes in `left_mask`
// left. Leaves carry absolute class counts from the training set.
class DecisionTree {
 public:
  struct Node {
    int attribute = -1;  // -1 marks a leaf
    double threshold = 0.0;
    uint64_t left_mask = 0;
    int left = -1;
    int right = -1;
    int leaf_index = -1;  // dense leaf ordinal; -1 for internal nodes
    std::vector<int64_t> class_counts;  // populated at leaves
  };

  explicit DecisionTree(data::Schema schema);

  const data::Schema& schema() const { return schema_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int num_leaves() const { return num_leaves_; }
  const Node& node(int i) const { return nodes_[i]; }

  // Appends an internal node and returns its index. Children are patched
  // in later via SetChildren (the builder works top-down).
  int AddInternalNode(int attribute, double threshold, uint64_t left_mask);
  // Appends a leaf and returns its index; assigns the next leaf ordinal.
  int AddLeafNode(std::vector<int64_t> class_counts);
  void SetChildren(int node_index, int left, int right);

  // Index of the leaf ordinal (0..num_leaves) the tuple routes to.
  int LeafIndexOf(std::span<const double> row) const;

  // Majority-class prediction, T(t) in the paper's notation.
  int Predict(std::span<const double> row) const;

  // Depth of the deepest leaf (root = depth 0 when the tree is a single
  // leaf).
  int Depth() const;

  // Pretty-printed tree for debugging and examples.
  std::string ToString() const;

 private:
  int DepthFrom(int node_index) const;
  void AppendString(int node_index, int indent, std::string* out) const;

  data::Schema schema_;
  std::vector<Node> nodes_;
  int num_leaves_ = 0;
};

}  // namespace focus::dt

#endif  // FOCUS_TREE_DECISION_TREE_H_

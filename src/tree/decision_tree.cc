#include "tree/decision_tree.h"

#include <algorithm>
#include <sstream>

#include "common/check.h"

namespace focus::dt {

DecisionTree::DecisionTree(data::Schema schema) : schema_(std::move(schema)) {}

int DecisionTree::AddInternalNode(int attribute, double threshold,
                                  uint64_t left_mask) {
  FOCUS_CHECK_GE(attribute, 0);
  FOCUS_CHECK_LT(attribute, schema_.num_attributes());
  Node node;
  node.attribute = attribute;
  node.threshold = threshold;
  node.left_mask = left_mask;
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

int DecisionTree::AddLeafNode(std::vector<int64_t> class_counts) {
  FOCUS_CHECK_EQ(static_cast<int>(class_counts.size()), schema_.num_classes());
  Node node;
  node.leaf_index = num_leaves_++;
  node.class_counts = std::move(class_counts);
  nodes_.push_back(std::move(node));
  return static_cast<int>(nodes_.size()) - 1;
}

void DecisionTree::SetChildren(int node_index, int left, int right) {
  FOCUS_CHECK_GE(node_index, 0);
  FOCUS_CHECK(nodes_[node_index].attribute >= 0) << "leaves have no children";
  nodes_[node_index].left = left;
  nodes_[node_index].right = right;
}

int DecisionTree::LeafIndexOf(std::span<const double> row) const {
  FOCUS_CHECK(!nodes_.empty());
  int current = 0;
  while (nodes_[current].attribute >= 0) {
    const Node& node = nodes_[current];
    bool go_left;
    if (schema_.attribute(node.attribute).type == data::AttributeType::kNumeric) {
      go_left = row[node.attribute] < node.threshold;
    } else {
      const int code = static_cast<int>(row[node.attribute]);
      go_left = (node.left_mask & (1ULL << code)) != 0;
    }
    current = go_left ? node.left : node.right;
    FOCUS_CHECK_GE(current, 0) << "malformed tree: missing child";
  }
  return nodes_[current].leaf_index;
}

int DecisionTree::Predict(std::span<const double> row) const {
  int current = 0;
  while (nodes_[current].attribute >= 0) {
    const Node& node = nodes_[current];
    bool go_left;
    if (schema_.attribute(node.attribute).type == data::AttributeType::kNumeric) {
      go_left = row[node.attribute] < node.threshold;
    } else {
      const int code = static_cast<int>(row[node.attribute]);
      go_left = (node.left_mask & (1ULL << code)) != 0;
    }
    current = go_left ? node.left : node.right;
  }
  const auto& counts = nodes_[current].class_counts;
  return static_cast<int>(std::max_element(counts.begin(), counts.end()) -
                          counts.begin());
}

int DecisionTree::Depth() const {
  if (nodes_.empty()) return 0;
  return DepthFrom(0);
}

int DecisionTree::DepthFrom(int node_index) const {
  const Node& node = nodes_[node_index];
  if (node.attribute < 0) return 0;
  return 1 + std::max(DepthFrom(node.left), DepthFrom(node.right));
}

std::string DecisionTree::ToString() const {
  std::string out;
  if (!nodes_.empty()) AppendString(0, 0, &out);
  return out;
}

void DecisionTree::AppendString(int node_index, int indent,
                                std::string* out) const {
  const Node& node = nodes_[node_index];
  out->append(indent * 2, ' ');
  if (node.attribute < 0) {
    std::ostringstream line;
    line << "leaf#" << node.leaf_index << " counts=[";
    for (size_t c = 0; c < node.class_counts.size(); ++c) {
      if (c > 0) line << ',';
      line << node.class_counts[c];
    }
    line << "]\n";
    out->append(line.str());
    return;
  }
  const data::Attribute& attr = schema_.attribute(node.attribute);
  std::ostringstream line;
  if (attr.type == data::AttributeType::kNumeric) {
    line << attr.name << " < " << node.threshold << " ?\n";
  } else {
    line << attr.name << " in mask 0x" << std::hex << node.left_mask << " ?\n";
  }
  out->append(line.str());
  AppendString(node.left, indent + 1, out);
  AppendString(node.right, indent + 1, out);
}

}  // namespace focus::dt

#include "tree/leaf_regions.h"

#include "common/check.h"

namespace focus::dt {
namespace {

void Walk(const DecisionTree& tree, int node_index, data::Box box,
          std::vector<data::Box>* leaves) {
  const DecisionTree::Node& node = tree.node(node_index);
  if (node.attribute < 0) {
    FOCUS_CHECK_GE(node.leaf_index, 0);
    (*leaves)[node.leaf_index] = std::move(box);
    return;
  }
  const data::Attribute& attr = tree.schema().attribute(node.attribute);
  data::Box left_box = box;
  data::Box right_box = std::move(box);
  if (attr.type == data::AttributeType::kNumeric) {
    left_box.ClampNumeric(node.attribute,
                          -std::numeric_limits<double>::infinity(),
                          node.threshold);
    right_box.ClampNumeric(node.attribute, node.threshold,
                           std::numeric_limits<double>::infinity());
  } else {
    left_box.ClampCategorical(node.attribute, node.left_mask);
    right_box.ClampCategorical(node.attribute, ~node.left_mask);
  }
  Walk(tree, node.left, std::move(left_box), leaves);
  Walk(tree, node.right, std::move(right_box), leaves);
}

}  // namespace

std::vector<data::Box> ExtractLeafBoxes(const DecisionTree& tree) {
  std::vector<data::Box> leaves(tree.num_leaves());
  if (tree.num_nodes() == 0) return leaves;
  Walk(tree, 0, data::Box::Full(tree.schema()), &leaves);
  return leaves;
}

}  // namespace focus::dt

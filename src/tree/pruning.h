#ifndef FOCUS_TREE_PRUNING_H_
#define FOCUS_TREE_PRUNING_H_

#include "data/dataset.h"
#include "tree/decision_tree.h"

namespace focus::dt {

// Reduced-error pruning (Quinlan): bottom-up, an internal node is
// collapsed into a leaf when doing so does not increase the error on a
// held-out validation set. Produces a new tree; the input is untouched.
//
// Smaller trees mean coarser dt-model structural components — fewer, more
// stable regions — which matters for FOCUS because deviations are
// computed over the induced partition: an overfitted tree manufactures
// spurious hair-thin regions that inflate same-process deviations.
DecisionTree PruneReducedError(const DecisionTree& tree,
                               const data::Dataset& validation);

}  // namespace focus::dt

#endif  // FOCUS_TREE_PRUNING_H_

#ifndef FOCUS_TREE_LEAF_REGIONS_H_
#define FOCUS_TREE_LEAF_REGIONS_H_

#include <vector>

#include "data/box.h"
#include "tree/decision_tree.h"

namespace focus::dt {

// Extracts the leaf partition of a decision tree as Boxes, indexed by the
// leaf ordinal returned by DecisionTree::LeafIndexOf. Together with the
// class-label dimension these boxes are the structural component Γ(T) of
// the dt-model (§2.1: "the set of regions associated with all the leaf
// nodes partition the attribute space").
std::vector<data::Box> ExtractLeafBoxes(const DecisionTree& tree);

}  // namespace focus::dt

#endif  // FOCUS_TREE_LEAF_REGIONS_H_

#ifndef FOCUS_TREE_CART_BUILDER_H_
#define FOCUS_TREE_CART_BUILDER_H_

#include <cstdint>

#include "data/dataset.h"
#include "tree/decision_tree.h"

namespace focus::dt {

// CART-style greedy tree induction (Breiman et al. [8]), the classifier
// used throughout the paper's dt-model experiments (via the RainForest
// framework [20] in the original; here a direct in-memory build — the
// experiments depend only on the induced partition).
//
// Gini impurity; numeric attributes use the best binary threshold found by
// a sorted sweep; categorical attributes use the two-class ordering trick
// (sort categories by P(class 0) and sweep prefixes), which is optimal for
// binary problems and a strong heuristic otherwise.
// Node impurity used to score candidate splits.
enum class SplitCriterion {
  kGini,     // 1 - sum p^2 (CART's default)
  kEntropy,  // -sum p log2 p (ID3/C4.5 family)
};

struct CartOptions {
  int max_depth = 10;
  int64_t min_leaf_size = 50;
  // A split must reduce weighted impurity by at least this much.
  double min_gain = 1e-4;
  SplitCriterion criterion = SplitCriterion::kGini;
};

namespace internal {
// Impurity of a class-count vector; shared by the recursive and the
// presorted builders so both optimize the identical objective.
double Impurity(const std::vector<int64_t>& counts, int64_t total,
                SplitCriterion criterion);
}  // namespace internal

DecisionTree BuildCart(const data::Dataset& dataset, const CartOptions& options);

}  // namespace focus::dt

#endif  // FOCUS_TREE_CART_BUILDER_H_

#ifndef FOCUS_FOCUS_H_
#define FOCUS_FOCUS_H_

// Umbrella header for the FOCUS change-measurement library — everything a
// downstream application needs to quantify, localize, and qualify
// differences between two datasets through the models they induce.
//
// Reproduction of Ganti, Gehrke, Ramakrishnan & Loh, "A Framework for
// Measuring Changes in Data Characteristics", PODS 1999.

// Substrates.
#include "cluster/birch.h"             // IWYU pragma: export
#include "cluster/cluster_model.h"     // IWYU pragma: export
#include "cluster/grid_clustering.h"   // IWYU pragma: export
#include "data/box.h"                  // IWYU pragma: export
#include "data/dataset.h"              // IWYU pragma: export
#include "data/sampling.h"             // IWYU pragma: export
#include "data/schema.h"               // IWYU pragma: export
#include "data/transaction_db.h"       // IWYU pragma: export
#include "datagen/class_gen.h"         // IWYU pragma: export
#include "datagen/perturb.h"           // IWYU pragma: export
#include "datagen/quest_gen.h"         // IWYU pragma: export
#include "itemsets/apriori.h"          // IWYU pragma: export
#include "itemsets/fp_growth.h"        // IWYU pragma: export
#include "itemsets/incremental.h"      // IWYU pragma: export
#include "itemsets/itemset.h"          // IWYU pragma: export
#include "itemsets/rules.h"            // IWYU pragma: export
#include "io/model_io.h"               // IWYU pragma: export
#include "itemsets/support_counter.h"  // IWYU pragma: export
#include "stats/bootstrap.h"           // IWYU pragma: export
#include "stats/descriptive.h"         // IWYU pragma: export
#include "stats/rng.h"                 // IWYU pragma: export
#include "stats/distributions.h"       // IWYU pragma: export
#include "stats/wilcoxon.h"            // IWYU pragma: export
#include "tree/cart_builder.h"         // IWYU pragma: export
#include "tree/decision_tree.h"        // IWYU pragma: export
#include "tree/leaf_regions.h"         // IWYU pragma: export
#include "tree/presorted_builder.h"    // IWYU pragma: export
#include "tree/pruning.h"              // IWYU pragma: export

// The FOCUS framework.
#include "core/chi_squared_instance.h"  // IWYU pragma: export
#include "core/cluster_deviation.h"     // IWYU pragma: export
#include "core/drift_series.h"          // IWYU pragma: export
#include "core/dt_deviation.h"          // IWYU pragma: export
#include "core/embedding.h"             // IWYU pragma: export
#include "core/focus_region.h"          // IWYU pragma: export
#include "core/functions.h"             // IWYU pragma: export
#include "core/lits_deviation.h"        // IWYU pragma: export
#include "core/lits_upper_bound.h"      // IWYU pragma: export
#include "core/misclassification.h"     // IWYU pragma: export
#include "core/monitor.h"               // IWYU pragma: export
#include "core/query_estimator.h"       // IWYU pragma: export
#include "core/rank.h"                  // IWYU pragma: export
#include "core/region_algebra.h"        // IWYU pragma: export
#include "core/sampling_study.h"        // IWYU pragma: export
#include "core/significance.h"          // IWYU pragma: export

#endif  // FOCUS_FOCUS_H_

#ifndef FOCUS_CORE_CHI_SQUARED_INSTANCE_H_
#define FOCUS_CORE_CHI_SQUARED_INSTANCE_H_

#include <cstdint>

#include "data/dataset.h"
#include "tree/decision_tree.h"

namespace focus::core {

// The chi-squared goodness-of-fit statistic as a FOCUS instance (§5.2.2,
// Proposition 5.1). The cells are the regions of the decision tree T
// (leaf × class); expected counts come from D1's measures, observed counts
// from D2. Cells with zero expected measure contribute the constant c
// (the standard small-constant correction).
struct ChiSquaredResult {
  double statistic = 0.0;
  // Degrees of freedom used for the asymptotic p-value: #cells - 1.
  double dof = 0.0;
  // Asymptotic p-value from the X^2 distribution. Only trustworthy when
  // expected counts are large (the paper's condition (2)); otherwise use
  // the bootstrap p-value below.
  double asymptotic_p_value = 1.0;
};

ChiSquaredResult ChiSquaredFit(const dt::DecisionTree& tree,
                               const data::Dataset& d1,
                               const data::Dataset& d2, double c = 0.5);

// The paper's remedy when the standard X^2 tables don't apply (expected
// counts below 5 in many tree cells): estimate the null distribution of
// the statistic by bootstrapping datasets of size |D2| from D1 and return
// the fraction of bootstrap statistics >= the observed one.
double ChiSquaredBootstrapPValue(const dt::DecisionTree& tree,
                                 const data::Dataset& d1,
                                 const data::Dataset& d2, double c = 0.5,
                                 int num_replicates = 99,
                                 uint64_t seed = 0x5eed);

}  // namespace focus::core

#endif  // FOCUS_CORE_CHI_SQUARED_INSTANCE_H_

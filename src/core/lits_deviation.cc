#include "core/lits_deviation.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "common/check.h"
#include "itemsets/support_counter.h"

namespace focus::core {
namespace {

// Supports of `regions` w.r.t. a database, reusing the model's stored
// measure component where available; the itemsets the model lacks are
// counted by `count_missing` (one horizontal scan, or vertical bitmap
// probes against a prebuilt index).
template <typename CountMissing>
std::vector<double> ExtendModelWith(const std::vector<lits::Itemset>& regions,
                                    const lits::LitsModel& model,
                                    const CountMissing& count_missing) {
  std::vector<double> supports(regions.size(), 0.0);
  std::vector<lits::Itemset> missing;
  std::vector<size_t> missing_slots;
  for (size_t i = 0; i < regions.size(); ++i) {
    const double stored = model.SupportOr(regions[i], -1.0);
    if (stored >= 0.0) {
      supports[i] = stored;
    } else {
      missing.push_back(regions[i]);
      missing_slots.push_back(i);
    }
  }
  if (!missing.empty()) {
    const std::vector<double> counted = count_missing(missing);
    for (size_t i = 0; i < missing.size(); ++i) {
      supports[missing_slots[i]] = counted[i];
    }
  }
  return supports;
}

std::vector<double> ExtendModel(const std::vector<lits::Itemset>& regions,
                                const lits::LitsModel& model,
                                const data::TransactionDb& db) {
  return ExtendModelWith(regions, model,
                         [&db](const std::vector<lits::Itemset>& missing) {
                           return lits::CountSupports(db, missing);
                         });
}

std::vector<double> ExtendModel(const std::vector<lits::Itemset>& regions,
                                const lits::LitsModel& model,
                                data::TxnSourceRef source) {
  return ExtendModelWith(
      regions, model, [source](const std::vector<lits::Itemset>& missing) {
        return lits::SupportCounter(missing, source.num_items())
            .CountRelative(source);
      });
}

std::vector<double> ExtendModel(const std::vector<lits::Itemset>& regions,
                                const lits::LitsModel& model,
                                data::ItemIndexRef index) {
  return ExtendModelWith(
      regions, model, [index](const std::vector<lits::Itemset>& missing) {
        return lits::SupportCounter(missing, index.num_items())
            .CountRelative(index);
      });
}

// delta^1_(f,g) once both measure components are in hand.
double AggregateRegionDiffs(const std::vector<double>& s1, double n1,
                            const std::vector<double>& s2, double n2,
                            const DeviationFunction& fn) {
  std::vector<double> diffs(s1.size());
  for (size_t i = 0; i < s1.size(); ++i) {
    diffs[i] = fn.f(s1[i] * n1, s2[i] * n2, n1, n2);
  }
  return AggregateValues(fn.g, diffs);
}

}  // namespace

std::vector<double> LitsExtendModel(const std::vector<lits::Itemset>& regions,
                                    const lits::LitsModel& model,
                                    data::ItemIndexRef index) {
  return ExtendModel(regions, model, index);
}

double LitsAggregateRegionDiffs(const std::vector<double>& s1, double n1,
                                const std::vector<double>& s2, double n2,
                                const DeviationFunction& fn) {
  return AggregateRegionDiffs(s1, n1, s2, n2, fn);
}

std::vector<lits::Itemset> LitsGcr(const lits::LitsModel& m1,
                                   const lits::LitsModel& m2) {
  std::vector<lits::Itemset> gcr = m1.StructuralComponent();
  for (const auto& [itemset, support] : m2.supports()) {
    if (!m1.Contains(itemset)) gcr.push_back(itemset);
  }
  std::sort(gcr.begin(), gcr.end());
  return gcr;
}

double LitsDeviationOverRegions(const std::vector<lits::Itemset>& regions,
                                const data::TransactionDb& d1,
                                const data::TransactionDb& d2,
                                const DeviationFunction& fn) {
  return AggregateRegionDiffs(lits::CountSupports(d1, regions),
                              static_cast<double>(d1.num_transactions()),
                              lits::CountSupports(d2, regions),
                              static_cast<double>(d2.num_transactions()), fn);
}

double LitsDeviationOverRegions(const std::vector<lits::Itemset>& regions,
                                data::ItemIndexRef i1, data::ItemIndexRef i2,
                                const DeviationFunction& fn) {
  const lits::SupportCounter counter1(regions, i1.num_items());
  const lits::SupportCounter counter2(regions, i2.num_items());
  return AggregateRegionDiffs(counter1.CountRelative(i1),
                              static_cast<double>(i1.num_transactions()),
                              counter2.CountRelative(i2),
                              static_cast<double>(i2.num_transactions()), fn);
}

double LitsDeviation(const lits::LitsModel& m1, const data::TransactionDb& d1,
                     const lits::LitsModel& m2, const data::TransactionDb& d2,
                     const DeviationFunction& fn) {
  const std::vector<lits::Itemset> gcr = LitsGcr(m1, m2);
  return AggregateRegionDiffs(ExtendModel(gcr, m1, d1),
                              static_cast<double>(d1.num_transactions()),
                              ExtendModel(gcr, m2, d2),
                              static_cast<double>(d2.num_transactions()), fn);
}

double LitsDeviation(const lits::LitsModel& m1, data::ItemIndexRef i1,
                     const lits::LitsModel& m2, data::ItemIndexRef i2,
                     const DeviationFunction& fn) {
  const std::vector<lits::Itemset> gcr = LitsGcr(m1, m2);
  return AggregateRegionDiffs(ExtendModel(gcr, m1, i1),
                              static_cast<double>(i1.num_transactions()),
                              ExtendModel(gcr, m2, i2),
                              static_cast<double>(i2.num_transactions()), fn);
}

double LitsDeviationOverRegions(const std::vector<lits::Itemset>& regions,
                                data::TxnSourceRef s1, data::TxnSourceRef s2,
                                const DeviationFunction& fn) {
  const lits::SupportCounter counter1(regions, s1.num_items());
  const lits::SupportCounter counter2(regions, s2.num_items());
  return AggregateRegionDiffs(counter1.CountRelative(s1),
                              static_cast<double>(s1.num_transactions()),
                              counter2.CountRelative(s2),
                              static_cast<double>(s2.num_transactions()), fn);
}

double LitsDeviation(const lits::LitsModel& m1, data::TxnSourceRef s1,
                     const lits::LitsModel& m2, data::TxnSourceRef s2,
                     const DeviationFunction& fn) {
  const std::vector<lits::Itemset> gcr = LitsGcr(m1, m2);
  return AggregateRegionDiffs(ExtendModel(gcr, m1, s1),
                              static_cast<double>(s1.num_transactions()),
                              ExtendModel(gcr, m2, s2),
                              static_cast<double>(s2.num_transactions()), fn);
}

double LitsDeviationFocused(const lits::LitsModel& m1,
                            const data::TransactionDb& d1,
                            const lits::LitsModel& m2,
                            const data::TransactionDb& d2,
                            const ItemsetPredicate& focus,
                            const DeviationFunction& fn) {
  std::vector<lits::Itemset> focused;
  for (lits::Itemset& itemset : LitsGcr(m1, m2)) {
    if (focus(itemset)) focused.push_back(std::move(itemset));
  }
  if (focused.empty()) return 0.0;
  return AggregateRegionDiffs(ExtendModel(focused, m1, d1),
                              static_cast<double>(d1.num_transactions()),
                              ExtendModel(focused, m2, d2),
                              static_cast<double>(d2.num_transactions()), fn);
}

ItemsetPredicate WithinItems(std::vector<int32_t> department_items) {
  auto allowed = std::make_shared<std::unordered_set<int32_t>>(
      department_items.begin(), department_items.end());
  return [allowed](const lits::Itemset& itemset) {
    for (int32_t item : itemset.items()) {
      if (!allowed->count(item)) return false;
    }
    return true;
  };
}

ItemsetPredicate ContainsItem(int32_t item) {
  return [item](const lits::Itemset& itemset) {
    const auto& items = itemset.items();
    return std::binary_search(items.begin(), items.end(), item);
  };
}

std::vector<LitsRegionDeviation> LitsPerRegionDeviations(
    const lits::LitsModel& m1, const data::TransactionDb& d1,
    const lits::LitsModel& m2, const data::TransactionDb& d2,
    const DiffFn& f) {
  const std::vector<lits::Itemset> gcr = LitsGcr(m1, m2);
  const std::vector<double> s1 = ExtendModel(gcr, m1, d1);
  const std::vector<double> s2 = ExtendModel(gcr, m2, d2);
  const double n1 = static_cast<double>(d1.num_transactions());
  const double n2 = static_cast<double>(d2.num_transactions());

  std::vector<LitsRegionDeviation> result(gcr.size());
  for (size_t i = 0; i < gcr.size(); ++i) {
    result[i].itemset = gcr[i];
    result[i].support1 = s1[i];
    result[i].support2 = s2[i];
    result[i].deviation = f(s1[i] * n1, s2[i] * n2, n1, n2);
  }
  return result;
}

}  // namespace focus::core

#include "core/lits_deviation.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "common/check.h"
#include "itemsets/support_counter.h"

namespace focus::core {
namespace {

// Supports of `regions` w.r.t. a database, reusing the model's stored
// measure component where available and counting the rest in one scan.
std::vector<double> ExtendModel(const std::vector<lits::Itemset>& regions,
                                const lits::LitsModel& model,
                                const data::TransactionDb& db) {
  std::vector<double> supports(regions.size(), 0.0);
  std::vector<lits::Itemset> missing;
  std::vector<size_t> missing_slots;
  for (size_t i = 0; i < regions.size(); ++i) {
    const double stored = model.SupportOr(regions[i], -1.0);
    if (stored >= 0.0) {
      supports[i] = stored;
    } else {
      missing.push_back(regions[i]);
      missing_slots.push_back(i);
    }
  }
  if (!missing.empty()) {
    const std::vector<double> counted = lits::CountSupports(db, missing);
    for (size_t i = 0; i < missing.size(); ++i) {
      supports[missing_slots[i]] = counted[i];
    }
  }
  return supports;
}

}  // namespace

std::vector<lits::Itemset> LitsGcr(const lits::LitsModel& m1,
                                   const lits::LitsModel& m2) {
  std::vector<lits::Itemset> gcr = m1.StructuralComponent();
  for (const auto& [itemset, support] : m2.supports()) {
    if (!m1.Contains(itemset)) gcr.push_back(itemset);
  }
  std::sort(gcr.begin(), gcr.end());
  return gcr;
}

double LitsDeviationOverRegions(const std::vector<lits::Itemset>& regions,
                                const data::TransactionDb& d1,
                                const data::TransactionDb& d2,
                                const DeviationFunction& fn) {
  const std::vector<double> s1 = lits::CountSupports(d1, regions);
  const std::vector<double> s2 = lits::CountSupports(d2, regions);
  const double n1 = static_cast<double>(d1.num_transactions());
  const double n2 = static_cast<double>(d2.num_transactions());
  std::vector<double> diffs(regions.size());
  for (size_t i = 0; i < regions.size(); ++i) {
    diffs[i] = fn.f(s1[i] * n1, s2[i] * n2, n1, n2);
  }
  return AggregateValues(fn.g, diffs);
}

double LitsDeviation(const lits::LitsModel& m1, const data::TransactionDb& d1,
                     const lits::LitsModel& m2, const data::TransactionDb& d2,
                     const DeviationFunction& fn) {
  const std::vector<lits::Itemset> gcr = LitsGcr(m1, m2);
  const std::vector<double> s1 = ExtendModel(gcr, m1, d1);
  const std::vector<double> s2 = ExtendModel(gcr, m2, d2);
  const double n1 = static_cast<double>(d1.num_transactions());
  const double n2 = static_cast<double>(d2.num_transactions());
  std::vector<double> diffs(gcr.size());
  for (size_t i = 0; i < gcr.size(); ++i) {
    diffs[i] = fn.f(s1[i] * n1, s2[i] * n2, n1, n2);
  }
  return AggregateValues(fn.g, diffs);
}

double LitsDeviationFocused(const lits::LitsModel& m1,
                            const data::TransactionDb& d1,
                            const lits::LitsModel& m2,
                            const data::TransactionDb& d2,
                            const ItemsetPredicate& focus,
                            const DeviationFunction& fn) {
  std::vector<lits::Itemset> focused;
  for (lits::Itemset& itemset : LitsGcr(m1, m2)) {
    if (focus(itemset)) focused.push_back(std::move(itemset));
  }
  if (focused.empty()) return 0.0;
  const std::vector<double> s1 = ExtendModel(focused, m1, d1);
  const std::vector<double> s2 = ExtendModel(focused, m2, d2);
  const double n1 = static_cast<double>(d1.num_transactions());
  const double n2 = static_cast<double>(d2.num_transactions());
  std::vector<double> diffs(focused.size());
  for (size_t i = 0; i < focused.size(); ++i) {
    diffs[i] = fn.f(s1[i] * n1, s2[i] * n2, n1, n2);
  }
  return AggregateValues(fn.g, diffs);
}

ItemsetPredicate WithinItems(std::vector<int32_t> department_items) {
  auto allowed = std::make_shared<std::unordered_set<int32_t>>(
      department_items.begin(), department_items.end());
  return [allowed](const lits::Itemset& itemset) {
    for (int32_t item : itemset.items()) {
      if (!allowed->count(item)) return false;
    }
    return true;
  };
}

ItemsetPredicate ContainsItem(int32_t item) {
  return [item](const lits::Itemset& itemset) {
    const auto& items = itemset.items();
    return std::binary_search(items.begin(), items.end(), item);
  };
}

std::vector<LitsRegionDeviation> LitsPerRegionDeviations(
    const lits::LitsModel& m1, const data::TransactionDb& d1,
    const lits::LitsModel& m2, const data::TransactionDb& d2,
    const DiffFn& f) {
  const std::vector<lits::Itemset> gcr = LitsGcr(m1, m2);
  const std::vector<double> s1 = ExtendModel(gcr, m1, d1);
  const std::vector<double> s2 = ExtendModel(gcr, m2, d2);
  const double n1 = static_cast<double>(d1.num_transactions());
  const double n2 = static_cast<double>(d2.num_transactions());

  std::vector<LitsRegionDeviation> result(gcr.size());
  for (size_t i = 0; i < gcr.size(); ++i) {
    result[i].itemset = gcr[i];
    result[i].support1 = s1[i];
    result[i].support2 = s2[i];
    result[i].deviation = f(s1[i] * n1, s2[i] * n2, n1, n2);
  }
  return result;
}

}  // namespace focus::core

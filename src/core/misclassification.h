#ifndef FOCUS_CORE_MISCLASSIFICATION_H_
#define FOCUS_CORE_MISCLASSIFICATION_H_

#include "data/dataset.h"
#include "tree/decision_tree.h"

namespace focus::core {

// Misclassification error as a special case of FOCUS (§5.2.1).

// Direct definition: fraction of tuples of d2 whose true label differs
// from tree's prediction.
double MisclassificationError(const dt::DecisionTree& tree,
                              const data::Dataset& d2);

// The predicted dataset D2^T: d2 with every label replaced by the tree's
// prediction.
data::Dataset PredictedDataset(const dt::DecisionTree& tree,
                               const data::Dataset& d2);

// Theorem 5.2: ME_T(D2) = 1/2 * delta_(f_a, g_sum) between
// <Γ_T, Σ(Γ_T, D2)> and <Γ_T, Σ(Γ_T, D2^T)>. Computed through the FOCUS
// deviation path; equals MisclassificationError (tests assert this).
double MisclassificationErrorViaFocus(const dt::DecisionTree& tree,
                                      const data::Dataset& d2);

}  // namespace focus::core

#endif  // FOCUS_CORE_MISCLASSIFICATION_H_

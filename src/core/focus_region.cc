#include "core/focus_region.h"

#include "common/check.h"

namespace focus::core {

data::Box NumericPredicate(const data::Schema& schema, int attribute,
                           double lo, double hi) {
  FOCUS_CHECK(schema.attribute(attribute).type == data::AttributeType::kNumeric);
  data::Box box = data::Box::Full(schema);
  box.ClampNumeric(attribute, lo, hi);
  return box;
}

data::Box LessThanPredicate(const data::Schema& schema, int attribute,
                            double hi) {
  return NumericPredicate(schema, attribute,
                          -std::numeric_limits<double>::infinity(), hi);
}

data::Box AtLeastPredicate(const data::Schema& schema, int attribute,
                           double lo) {
  return NumericPredicate(schema, attribute, lo,
                          std::numeric_limits<double>::infinity());
}

data::Box CategoryPredicate(const data::Schema& schema, int attribute,
                            const std::vector<int>& codes) {
  const data::Attribute& attr = schema.attribute(attribute);
  FOCUS_CHECK(attr.type == data::AttributeType::kCategorical);
  uint64_t mask = 0;
  for (int code : codes) {
    FOCUS_CHECK_GE(code, 0);
    FOCUS_CHECK_LT(code, attr.cardinality);
    mask |= (1ULL << code);
  }
  data::Box box = data::Box::Full(schema);
  box.ClampCategorical(attribute, mask);
  return box;
}

}  // namespace focus::core

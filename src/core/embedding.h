#ifndef FOCUS_CORE_EMBEDDING_H_
#define FOCUS_CORE_EMBEDDING_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/functions.h"
#include "itemsets/apriori.h"

namespace focus::core {

// Embedding a collection of datasets for visual comparison — the use the
// paper derives from Theorem 4.2(2): delta* satisfies the triangle
// inequality, "and can therefore be used to embed a collection of
// datasets in a k-dimensional space for visually comparing their
// relative differences" (§4.1.1).
//
// The embedding is FastMap (Faloutsos & Lin, SIGMOD'95): per output
// dimension, two far-apart pivot objects are chosen, every object is
// projected onto the pivot line using the cosine law, and distances are
// deflated to their residuals before the next dimension.

struct FastMapResult {
  // coordinates[i] is object i's k-dimensional position.
  std::vector<std::vector<double>> coordinates;
  // The pivot pair chosen for each dimension.
  std::vector<std::pair<int, int>> pivots;
};

// Embeds N objects given their symmetric NxN distance matrix. `dims`
// must be >= 1; degenerate dimensions (all remaining distances 0) yield
// all-zero coordinates.
FastMapResult FastMapEmbedding(const std::vector<std::vector<double>>& distances,
                               int dims, uint64_t seed = 1);

// Euclidean distance between two embedded points.
double EmbeddedDistance(const std::vector<double>& a,
                        const std::vector<double>& b);

// Convenience: the delta* distance matrix of a collection of lits-models
// (no dataset scans — models only), ready for FastMapEmbedding.
std::vector<std::vector<double>> LitsUpperBoundMatrix(
    const std::vector<lits::LitsModel>& models, AggregateKind g);

}  // namespace focus::core

#endif  // FOCUS_CORE_EMBEDDING_H_

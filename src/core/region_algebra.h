#ifndef FOCUS_CORE_REGION_ALGEBRA_H_
#define FOCUS_CORE_REGION_ALGEBRA_H_

#include <vector>

#include "data/box.h"
#include "data/schema.h"
#include "itemsets/itemset.h"

namespace focus::core {

// The structural operators of §5, over both carrier kinds of structural
// components: itemset collections (lits-models) and box collections
// (dt-models / cluster-models).
//
//   Structural Union (⊔)       — the GCR of the two sets of regions
//   Structural Intersection (⊓) — regions present in both sets
//   Structural Difference (−)   — (Γ1 ⊔ Γ2) − (Γ1 ⊓ Γ2)
//   Predicate (p)               — see core/focus_region.h for boxes and
//                                 core/lits_deviation.h for itemsets.

// ---- lits-models: sets of itemsets (sorted, deduplicated) ----

using ItemsetSet = std::vector<lits::Itemset>;

// Normalizes (sorts, dedupes) a collection.
ItemsetSet NormalizeItemsets(ItemsetSet itemsets);

// Γ1 ⊔ Γ2 for lits: the union of the two sets (Proposition 4.1's GCR).
ItemsetSet StructuralUnion(const ItemsetSet& g1, const ItemsetSet& g2);

// Γ1 ⊓ Γ2: standard set intersection.
ItemsetSet StructuralIntersection(const ItemsetSet& g1, const ItemsetSet& g2);

// Γ1 − Γ2 := (Γ1 ⊔ Γ2) − (Γ1 ⊓ Γ2): symmetric difference.
ItemsetSet StructuralDifference(const ItemsetSet& g1, const ItemsetSet& g2);

// ---- dt-models / cluster-models: sets of boxes ----

using BoxSet = std::vector<data::Box>;

// Plain set union Γ1 ∪ Γ2 (deduplicated) — used by the paper's first
// exploratory expression, which ranks regions of BOTH original trees.
BoxSet PlainUnion(const BoxSet& g1, const BoxSet& g2);

// Γ1 ⊔ Γ2: the overlay GCR — all non-empty pairwise intersections.
BoxSet StructuralUnion(const data::Schema& schema, const BoxSet& g1,
                       const BoxSet& g2);

// Γ1 ⊓ Γ2: boxes appearing (geometrically equal) in both sets.
BoxSet StructuralIntersection(const data::Schema& schema, const BoxSet& g1,
                              const BoxSet& g2);

// (Γ1 ⊔ Γ2) − (Γ1 ⊓ Γ2).
BoxSet StructuralDifference(const data::Schema& schema, const BoxSet& g1,
                            const BoxSet& g2);

}  // namespace focus::core

#endif  // FOCUS_CORE_REGION_ALGEBRA_H_

#ifndef FOCUS_CORE_FLAT_ROUTER_H_
#define FOCUS_CORE_FLAT_ROUTER_H_

#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "data/dataset.h"
#include "data/schema.h"
#include "tree/decision_tree.h"

namespace focus::core {

// Scan-shape policy for the dt measure scans. Lockstep batching exists to
// hide node-load latency, which only appears once the flattened node array
// outgrows the fast cache levels; the paper's ~20-leaf trees live in L1,
// where the row-at-a-time walk keeps its cursor in a register and wins
// (BENCH_vertical.json carries both numbers at both tree sizes). kAuto
// picks per flattened tree; FOCUS_DT_BATCH=always|never pins the choice
// for A/B runs, the way FOCUS_SIMD pins the kernel dispatcher.
enum class BatchRouting { kAuto, kAlways, kNever };

namespace internal {
inline BatchRouting& MutableBatchRouting() {
  static BatchRouting mode = [] {
    const std::string requested =
        common::GetEnvString("FOCUS_DT_BATCH", "auto");
    if (requested == "always") return BatchRouting::kAlways;
    if (requested == "never") return BatchRouting::kNever;
    if (!requested.empty() && requested != "auto") {
      std::fprintf(stderr,
                   "focus: FOCUS_DT_BATCH=%s is not auto|always|never; "
                   "using auto\n",
                   requested.c_str());
    }
    return BatchRouting::kAuto;
  }();
  return mode;
}
}  // namespace internal

inline BatchRouting BatchRoutingMode() {
  return internal::MutableBatchRouting();
}

// Pins the routing mode for the enclosing scope. Test-only; like
// simd::ScopedLevelForTesting, set it before any concurrent scan starts.
class ScopedBatchRoutingForTesting {
 public:
  explicit ScopedBatchRoutingForTesting(BatchRouting mode)
      : previous_(internal::MutableBatchRouting()) {
    internal::MutableBatchRouting() = mode;
  }
  ~ScopedBatchRoutingForTesting() {
    internal::MutableBatchRouting() = previous_;
  }
  ScopedBatchRoutingForTesting(const ScopedBatchRoutingForTesting&) = delete;
  ScopedBatchRoutingForTesting& operator=(const ScopedBatchRoutingForTesting&) =
      delete;

 private:
  const BatchRouting previous_;
};

// A decision tree flattened for routing: contiguous nodes with the
// numeric/categorical discriminator resolved ONCE at flatten time instead
// of a schema lookup per node visit. Routing a row is then a tight loop
// over one array — and fusing two of these routers in a single row loop
// (the GCR measure scan) keeps both node arrays hot instead of
// alternating between two pointer-chasing traversals and a hash probe.
//
// RouteRows additionally descends up to kBatch rows in LOCKSTEP: each
// sweep advances every still-internal cursor one level, so the dependent
// node loads of 8 independent descents overlap in the pipeline instead of
// serializing one traversal at a time. Routing is a pure function of one
// row, so the batched scan yields exactly the leaf sequence Route yields
// row-at-a-time (pinned by tests/laws/laws_dt_batch_test.cc).
struct FlatTreeRouter {
  // Rows resolved per RouteRows call; also the row-range width the
  // measure scans hand to core::CountRowRangesMaybeParallel.
  static constexpr int kBatch = 8;

  struct Node {
    double threshold = 0.0;
    uint64_t left_mask = 0;
    int32_t left = -1;
    int32_t right = -1;
    int32_t attribute = -1;  // -1 marks a leaf
    int32_t leaf_index = -1;
    bool is_numeric = false;
  };
  std::vector<Node> nodes;

  explicit FlatTreeRouter(const dt::DecisionTree& tree) {
    FOCUS_CHECK_GT(tree.num_nodes(), 0);
    nodes.resize(tree.num_nodes());
    for (int i = 0; i < tree.num_nodes(); ++i) {
      const dt::DecisionTree::Node& node = tree.node(i);
      Node& flat = nodes[i];
      flat.threshold = node.threshold;
      flat.left_mask = node.left_mask;
      flat.left = node.left;
      flat.right = node.right;
      flat.attribute = node.attribute;
      flat.leaf_index = node.leaf_index;
      flat.is_numeric =
          node.attribute >= 0 &&
          tree.schema().attribute(node.attribute).type ==
              data::AttributeType::kNumeric;
    }
  }

  // Node-array footprint below which batching loses: while the tree is
  // cache-resident a node load costs a handful of cycles and the
  // out-of-order window already overlaps the (independent) descents of
  // consecutive rows — the lockstep form then only adds cursor-array
  // traffic (measured 0.56x at 1 KiB and still 0.78x at a 1 MiB node
  // array). Only once the array outgrows the last-level-cache regime do
  // the 8 parallel dependency chains buy real memory-level parallelism
  // (1.81x at 12 MiB). micro_dt_route measures both regimes; the
  // threshold sits between the measured loss and the measured win.
  static constexpr size_t kBatchedRoutingMinBytes = size_t{4} << 20;

  bool PrefersBatchedRouting() const {
    switch (BatchRoutingMode()) {
      case BatchRouting::kAlways:
        return true;
      case BatchRouting::kNever:
        return false;
      case BatchRouting::kAuto:
        break;
    }
    return nodes.size() * sizeof(Node) >= kBatchedRoutingMinBytes;
  }

  int Route(std::span<const double> row) const {
    const Node* node = nodes.data();
    while (node->attribute >= 0) {
      const bool go_left =
          node->is_numeric
              ? row[node->attribute] < node->threshold
              : (node->left_mask &
                 (1ULL << static_cast<int>(row[node->attribute]))) != 0;
      node = nodes.data() + (go_left ? node->left : node->right);
    }
    return node->leaf_index;
  }

  // Leaf ordinals of rows[0..n) of `dataset` into leaves[0..n), n at most
  // kBatch. The row list need not be contiguous or sorted — the focussed
  // GCR scan gathers only the rows inside the focus box. Bit-identical to
  // n successive Route calls.
  void RouteRows(const data::Dataset& dataset, const int64_t* rows, int n,
                 int* leaves) const {
    FOCUS_CHECK_LE(n, kBatch);
    const Node* cursor[kBatch];
    const double* values[kBatch];
    int idx[kBatch];  // slots still at an internal node, compacted per sweep
    int active = 0;
    for (int i = 0; i < n; ++i) {
      cursor[i] = nodes.data();
      values[i] = dataset.Row(rows[i]).data();
      if (nodes[0].attribute >= 0) idx[active++] = i;
    }
    // Each sweep advances every still-internal cursor one level, so the
    // dependent node loads of up to kBatch independent descents overlap in
    // the pipeline. Rows that reach a leaf are compacted out, so the total
    // node visits equal the row-at-a-time scan's.
    while (active > 0) {
      int next = 0;
      for (int a = 0; a < active; ++a) {
        const int i = idx[a];
        const Node* node = cursor[i];
        const double* row = values[i];
        const bool go_left =
            node->is_numeric
                ? row[node->attribute] < node->threshold
                : (node->left_mask &
                   (1ULL << static_cast<int>(row[node->attribute]))) != 0;
        node = nodes.data() + (go_left ? node->left : node->right);
        cursor[i] = node;
        if (node->attribute >= 0) idx[next++] = i;
      }
      active = next;
    }
    for (int i = 0; i < n; ++i) leaves[i] = cursor[i]->leaf_index;
  }
};

}  // namespace focus::core

#endif  // FOCUS_CORE_FLAT_ROUTER_H_

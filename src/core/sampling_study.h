#ifndef FOCUS_CORE_SAMPLING_STUDY_H_
#define FOCUS_CORE_SAMPLING_STUDY_H_

#include <cstdint>
#include <vector>

#include "cluster/cluster_model.h"
#include "core/functions.h"
#include "data/dataset.h"
#include "data/transaction_db.h"
#include "itemsets/apriori.h"
#include "tree/cart_builder.h"

namespace focus::core {

// The sample-size study of §6: the sample deviation (SD) of a random
// sample S ⊆ D is delta(M, M_S) — the deviation between the model induced
// by all of D and the model induced by S. The study sweeps sample
// fractions (SF), draws several samples per fraction, and applies the
// Wilcoxon test between consecutive fractions to decide whether the
// bigger sample is significantly more representative (Tables 1 and 2).

struct SampleStudyPoint {
  double fraction = 0.0;
  std::vector<double> sample_deviations;  // one SD per drawn sample
  double mean_sd = 0.0;
};

struct LitsStudyConfig {
  lits::AprioriOptions apriori;
  DeviationFunction fn;
  std::vector<double> fractions = {0.01, 0.05, 0.1, 0.2, 0.3,
                                   0.4,  0.5,  0.6, 0.7, 0.8};
  int samples_per_fraction = 10;  // the paper uses 50
  uint64_t seed = 42;
};

std::vector<SampleStudyPoint> LitsSampleStudy(const data::TransactionDb& db,
                                              const LitsStudyConfig& config);

struct DtStudyConfig {
  dt::CartOptions cart;
  DeviationFunction fn;
  std::vector<double> fractions = {0.01, 0.05, 0.1, 0.2, 0.3,
                                   0.4,  0.5,  0.6, 0.7, 0.8};
  int samples_per_fraction = 10;  // the paper uses 50
  uint64_t seed = 42;
};

std::vector<SampleStudyPoint> DtSampleStudy(const data::Dataset& dataset,
                                            const DtStudyConfig& config);

// Wilcoxon significance (percent) of the SD decrease from fractions[i] to
// fractions[i+1]; result[i] corresponds to that step — the rows of
// Tables 1 and 2.
std::vector<double> StepSignificances(
    const std::vector<SampleStudyPoint>& points);

// Extension beyond the paper: the same representativeness study for
// cluster-models (the paper's §6 covers lits and dt only). The grid is
// built over the numeric attributes named in `grid_attributes`.
struct ClusterStudyConfig {
  std::vector<int> grid_attributes;
  int grid_bins = 10;
  double density_threshold = 0.005;
  DeviationFunction fn;
  std::vector<double> fractions = {0.01, 0.05, 0.1, 0.2, 0.3,
                                   0.4,  0.5,  0.6, 0.7, 0.8};
  int samples_per_fraction = 10;
  uint64_t seed = 42;
};

std::vector<SampleStudyPoint> ClusterSampleStudy(
    const data::Dataset& dataset, const ClusterStudyConfig& config);

}  // namespace focus::core

#endif  // FOCUS_CORE_SAMPLING_STUDY_H_

#ifndef FOCUS_CORE_MONITOR_H_
#define FOCUS_CORE_MONITOR_H_

#include <cstdint>

#include "core/functions.h"
#include "core/significance.h"
#include "data/item_index.h"
#include "data/transaction_db.h"
#include "data/txn_source.h"
#include "data/vertical_index.h"
#include "itemsets/apriori.h"

namespace focus::core {

// Library-level packaging of the paper's motivating workflow (§1): an
// analyst monitors a stream of dataset snapshots and wants to spend the
// expensive analysis only on snapshots whose characteristics actually
// changed. Two-stage screen:
//
//   stage 1 — delta* (Theorem 4.2), computed from the two MODELS only,
//             against a threshold self-calibrated from same-process
//             bootstrap replicates of the reference dataset;
//   stage 2 — only if stage 1 fires: the exact deviation plus the
//             bootstrap significance of §3.4.
struct MonitorOptions {
  lits::AprioriOptions apriori;
  DeviationFunction fn;
  // Alert when delta* exceeds `alert_factor` x the calibrated
  // same-process level.
  double alert_factor = 2.0;
  // Bootstrap replicates used for threshold calibration at construction.
  int calibration_replicates = 5;
  // Significance testing for confirmed alerts (stage 2).
  SignificanceOptions significance;
  uint64_t seed = 0xCA11B;
};

struct MonitorReport {
  double upper_bound = 0.0;   // stage-1 delta*
  bool screened_out = false;  // true => stages 2 skipped, no alert
  double deviation = 0.0;     // stage-2 exact delta (when not screened)
  double significance_percent = 0.0;
  bool alert = false;  // significant change confirmed
};

class LitsChangeMonitor {
 public:
  // Builds the reference model and calibrates the stage-1 threshold by
  // bootstrap-resampling `reference` against itself.
  LitsChangeMonitor(const data::TransactionDb& reference,
                    const MonitorOptions& options);

  // Inspects one snapshot; does NOT update the reference.
  MonitorReport Inspect(const data::TransactionDb& snapshot) const;

  // Either-backend variant: a block-backed snapshot streams through every
  // stage (index build, mining, stage-2 counting, bootstrap resampling)
  // without ever being materialized as one flat TransactionDb. Reports
  // are bit-identical across backends.
  MonitorReport Inspect(data::TxnSourceRef snapshot) const;

  // Same, with a caller-supplied model of `snapshot` (e.g. from the
  // serving layer's mined-model cache) so stage 1 skips re-mining. The
  // model MUST have been mined from `snapshot` with this monitor's
  // apriori options. When `snapshot_index` is non-empty (a vertical index
  // — flat or roaring — built from `snapshot`, e.g. the serving layer's
  // per-snapshot index cache), the stage-2 exact deviation extends both
  // models via TID-set AND+popcount against this index and the monitor's
  // own reference index — no re-scan of either dataset's raw
  // transactions. The report is bit-identical with or without the index,
  // and for either backend.
  MonitorReport InspectWithModel(
      const data::TransactionDb& snapshot,
      const lits::LitsModel& snapshot_model,
      data::ItemIndexRef snapshot_index = {}) const;
  MonitorReport InspectWithModel(
      data::TxnSourceRef snapshot, const lits::LitsModel& snapshot_model,
      data::ItemIndexRef snapshot_index = {}) const;

  // Replaces the reference with `snapshot` (e.g. after an accepted
  // regime change) and re-calibrates.
  void Rebase(const data::TransactionDb& snapshot);

  double alert_threshold() const { return alert_threshold_; }
  const lits::LitsModel& reference_model() const { return reference_model_; }
  const data::VerticalIndex& reference_index() const {
    return reference_index_;
  }

 private:
  void Calibrate();

  MonitorOptions options_;
  data::TransactionDb reference_;
  // Built once per reference (construction / Rebase); declared before the
  // model so mining can run vertically against it.
  data::VerticalIndex reference_index_;
  lits::LitsModel reference_model_;
  double alert_threshold_ = 0.0;
};

}  // namespace focus::core

#endif  // FOCUS_CORE_MONITOR_H_

#ifndef FOCUS_CORE_PARALLEL_COUNT_H_
#define FOCUS_CORE_PARALLEL_COUNT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/thread_pool.h"

namespace focus::core {

// Shared shape of the region-selectivity scans: accumulate integer counts
// over a row range, serially or sharded across a worker pool. Each shard
// gets its own count vector; shards are merged by summation in shard
// order. Counts are integers and shard boundaries depend only on
// (num_rows, pool size), so the parallel result is bit-identical to the
// serial one.
//
// `count_row` is a template parameter (callable of shape
// void(int64_t row, std::vector<int64_t>& counts)) rather than a
// std::function so the per-row body inlines into the scan loop — the
// type-erased indirection cost one virtual-ish call per ROW, which
// dominated tight routing kernels (measured on micro_deviation).
template <typename CountRow>
std::vector<int64_t> CountRowsMaybeParallel(int64_t num_rows,
                                            size_t num_counts,
                                            common::ThreadPool* pool,
                                            const CountRow& count_row) {
  if (pool == nullptr) {
    std::vector<int64_t> counts(num_counts, 0);
    for (int64_t row = 0; row < num_rows; ++row) count_row(row, counts);
    return counts;
  }
  const int num_shards = pool->num_threads();
  std::vector<std::vector<int64_t>> shard_counts(
      num_shards, std::vector<int64_t>(num_counts, 0));
  pool->ParallelFor(0, num_rows, num_shards,
                    [&](int shard, int64_t begin, int64_t end) {
                      for (int64_t row = begin; row < end; ++row) {
                        count_row(row, shard_counts[shard]);
                      }
                    });
  std::vector<int64_t> counts(num_counts, 0);
  for (const std::vector<int64_t>& shard : shard_counts) {
    for (size_t i = 0; i < num_counts; ++i) counts[i] += shard[i];
  }
  return counts;
}

// Batched variant for routing-style kernels: `count_rows` receives
// half-open row ranges [begin, end) of width at most `batch` (the last
// range of a shard may be shorter) instead of single rows, so the body
// can resolve a whole batch in lockstep (FlatTreeRouter::RouteRows).
// Shard boundaries are the SAME as CountRowsMaybeParallel's — they depend
// only on (num_rows, pool size), never on `batch` — and the accumulators
// are integers, so the batched scan is bit-identical to row-at-a-time.
template <typename CountRows>
std::vector<int64_t> CountRowRangesMaybeParallel(int64_t num_rows,
                                                 size_t num_counts,
                                                 int64_t batch,
                                                 common::ThreadPool* pool,
                                                 const CountRows& count_rows) {
  const auto scan = [batch, &count_rows](int64_t begin, int64_t end,
                                         std::vector<int64_t>& counts) {
    for (int64_t b = begin; b < end; b += batch) {
      count_rows(b, std::min(b + batch, end), counts);
    }
  };
  if (pool == nullptr) {
    std::vector<int64_t> counts(num_counts, 0);
    scan(0, num_rows, counts);
    return counts;
  }
  const int num_shards = pool->num_threads();
  std::vector<std::vector<int64_t>> shard_counts(
      num_shards, std::vector<int64_t>(num_counts, 0));
  pool->ParallelFor(0, num_rows, num_shards,
                    [&](int shard, int64_t begin, int64_t end) {
                      scan(begin, end, shard_counts[shard]);
                    });
  std::vector<int64_t> counts(num_counts, 0);
  for (const std::vector<int64_t>& shard : shard_counts) {
    for (size_t i = 0; i < num_counts; ++i) counts[i] += shard[i];
  }
  return counts;
}

}  // namespace focus::core

#endif  // FOCUS_CORE_PARALLEL_COUNT_H_

#ifndef FOCUS_CORE_DT_DEVIATION_H_
#define FOCUS_CORE_DT_DEVIATION_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "core/functions.h"
#include "data/box.h"
#include "data/dataset.h"
#include "tree/decision_tree.h"

namespace focus::core {

// FOCUS instantiation for dt-models (§2.1, §4.2). A decision tree over k
// classes induces, per leaf, k regions (leaf hyper-rectangle × class
// label); these regions partition A(I) and carry the fraction of tuples
// mapping into them (the measure component).
class DtModel {
 public:
  // Builds the 2-component model: extracts the leaf partition of `tree`
  // and computes the measure component w.r.t. the inducing dataset.
  DtModel(dt::DecisionTree tree, const data::Dataset& inducing_dataset);

  const dt::DecisionTree& tree() const { return tree_; }
  const data::Box& leaf_box(int leaf) const { return leaf_boxes_[leaf]; }
  const std::vector<data::Box>& leaf_boxes() const { return leaf_boxes_; }
  int num_leaves() const { return tree_.num_leaves(); }
  int num_classes() const { return tree_.schema().num_classes(); }
  int64_t num_rows() const { return num_rows_; }

  // sigma(region(leaf, cls), D) of the inducing dataset D.
  double measure(int leaf, int cls) const {
    return measures_[leaf * num_classes() + cls];
  }

 private:
  dt::DecisionTree tree_;
  std::vector<data::Box> leaf_boxes_;
  std::vector<double> measures_;  // row-major [leaf][class]
  int64_t num_rows_ = 0;
};

// The GCR of two dt structural components (Definition 4.2): the overlay
// partition whose regions are the non-empty pairwise intersections of
// leaf boxes ("anding all possible pairs of predicates").
struct DtGcrRegion {
  int leaf1 = -1;  // leaf ordinal in the first tree
  int leaf2 = -1;  // leaf ordinal in the second tree
  data::Box box;   // geometric intersection
};

class DtGcr {
 public:
  DtGcr(const DtModel& m1, const DtModel& m2);

  const std::vector<DtGcrRegion>& regions() const { return regions_; }
  int num_regions() const { return static_cast<int>(regions_.size()); }

  // Index of the region (leaf1, leaf2), or -1 if that intersection is
  // empty (never the case for a pair reached by routing a real tuple).
  // O(1) array lookup when the dense router is active, hash probe
  // otherwise.
  int IndexOf(int leaf1, int leaf2) const;

  // True when leaf pairs resolve through the dense l1*L2+l2 -> region
  // array (L1*L2 small enough); false means the hash-map fallback is in
  // use. Exposed for tests and bench guards.
  bool dense_router() const { return !dense_.empty(); }

  // Measure component of the GCR w.r.t. `dataset`, computed in ONE scan
  // by routing every tuple through both trees. Returns row-major
  // [region][class] selectivities. If `focus` is set, only tuples inside
  // the focussing region are counted (still divided by |dataset| — the
  // focussed model's measures, Definition 5.1). When `pool` is non-null
  // the scan is sharded across its workers into per-shard integer count
  // vectors merged in shard order — bit-identical to the serial scan.
  std::vector<double> Measures(const dt::DecisionTree& t1,
                               const dt::DecisionTree& t2,
                               const data::Dataset& dataset,
                               const std::optional<data::Box>& focus,
                               common::ThreadPool* pool = nullptr) const;

  int num_classes() const { return num_classes_; }

 private:
  std::vector<DtGcrRegion> regions_;
  // Dense router: dense_[leaf1 * L2 + leaf2] = region index or -1. Built
  // whenever L1*L2 is small (the common case — CART trees here have at
  // most a few hundred leaves); the hash map then stays EMPTY. Only huge
  // leaf products fall back to the map to bound memory.
  std::vector<int32_t> dense_;
  std::unordered_map<int64_t, int> index_;  // (leaf1 * L2 + leaf2) -> region
  int64_t leaves2_ = 0;
  int num_classes_ = 0;
};

struct DtDeviationOptions {
  DeviationFunction fn;
  // Restrict the deviation to regions of one class label (-1 = all).
  // The paper's running example computes deviations over the C1 regions.
  int class_filter = -1;
  // Focussing region R (Definition 5.2); empty = whole attribute space.
  std::optional<data::Box> focus;
  // Optional worker pool: region-selectivity scans are sharded across its
  // workers (results stay bit-identical to the serial scans).
  common::ThreadPool* pool = nullptr;
};

// delta_(f,g)(M1, M2) over the GCR (Definition 3.6), datasets scanned once
// each; honors class filtering and focussing.
double DtDeviation(const DtModel& m1, const data::Dataset& d1,
                   const DtModel& m2, const data::Dataset& d2,
                   const DtDeviationOptions& options);

// delta^1_(f,g) over a SINGLE tree's structural component with measures
// from two datasets (Definition 3.5; both models share Γ_T). This is the
// "monitoring change" setting of §5.2: how well the old model fits new
// data. Used by the misclassification and chi-squared instantiations.
double DtDeviationOverTree(const dt::DecisionTree& tree,
                           const data::Dataset& d1, const data::Dataset& d2,
                           const DtDeviationOptions& options);

// Measure component of Γ_T w.r.t. `dataset`: row-major [leaf][class].
// With a pool, the tuple-routing scan is sharded (bit-identical result).
std::vector<double> DtMeasuresOverTree(const dt::DecisionTree& tree,
                                       const data::Dataset& dataset,
                                       common::ThreadPool* pool = nullptr);

}  // namespace focus::core

#endif  // FOCUS_CORE_DT_DEVIATION_H_

#ifndef FOCUS_CORE_FUNCTIONS_H_
#define FOCUS_CORE_FUNCTIONS_H_

#include <functional>
#include <span>
#include <string>

namespace focus::core {

// The model-independent parameters of the FOCUS framework (§3.3.2).
//
// A difference function f compares the measures of one region under the
// two datasets. Following Definition 3.5 its signature takes the ABSOLUTE
// tuple counts alongside the dataset sizes (some instantiations — e.g. the
// chi-squared f of Proposition 5.1 — need absolute measures):
//
//   f(count1, count2, |D1|, |D2|) -> R+
using DiffFn = std::function<double(double count1, double count2, double n1,
                                    double n2)>;

// f_a — absolute difference of selectivities (Definition 3.7).
DiffFn AbsoluteDiff();

// f_s — scaled difference: |s1 - s2| / ((s1 + s2) / 2), 0 when both
// selectivities are 0 (Definition 3.7). Emphasizes relative change, e.g.
// an itemset appearing for the first time.
DiffFn ScaledDiff();

// The chi-squared difference function of Proposition 5.1:
//   |D2| * (s1 - s2)^2 / s1    when s1 > 0 (selectivities s_i = count_i/n_i)
//   c                          otherwise,
// whose g_sum aggregate is the X^2 goodness-of-fit statistic of the new
// dataset D2 against the model induced by D1.
DiffFn ChiSquaredDiff(double c = 0.5);

// An aggregate function g combines per-region differences (§3.3.2).
enum class AggregateKind {
  kSum,  // g_sum
  kMax,  // g_max
};

double AggregateValues(AggregateKind kind, std::span<const double> values);

std::string ToString(AggregateKind kind);

// Bundled (f, g) choice — the deviation function delta_(f,g) is fully
// parameterized by this pair.
struct DeviationFunction {
  DiffFn f = AbsoluteDiff();
  AggregateKind g = AggregateKind::kSum;
};

}  // namespace focus::core

#endif  // FOCUS_CORE_FUNCTIONS_H_

#include "core/rank.h"

#include <algorithm>
#include <unordered_map>

#include "common/check.h"
#include "itemsets/support_counter.h"

namespace focus::core {
namespace {

// Per-(candidate region, GCR cell, class) counts for one dataset:
// row-major [region][cell][class], flattened.
std::vector<int64_t> FocusedCounts(const BoxSet& regions, const DtGcr& gcr,
                                   const DtModel& m1, const DtModel& m2,
                                   const data::Dataset& dataset) {
  const data::Schema& schema = m1.tree().schema();
  const int num_classes = gcr.num_classes();
  const size_t stride_region =
      static_cast<size_t>(gcr.num_regions()) * num_classes;
  std::vector<int64_t> counts(regions.size() * stride_region, 0);

  for (int64_t row = 0; row < dataset.num_rows(); ++row) {
    const auto values = dataset.Row(row);
    const int cell = gcr.IndexOf(m1.tree().LeafIndexOf(values),
                                 m2.tree().LeafIndexOf(values));
    FOCUS_CHECK_GE(cell, 0);
    const size_t base = static_cast<size_t>(cell) * num_classes +
                        static_cast<size_t>(dataset.Label(row));
    for (size_t r = 0; r < regions.size(); ++r) {
      if (regions[r].Contains(schema, values)) {
        ++counts[r * stride_region + base];
      }
    }
  }
  return counts;
}

}  // namespace

std::vector<RankedBox> RankDtRegions(const BoxSet& regions, const DtModel& m1,
                                     const data::Dataset& d1,
                                     const DtModel& m2,
                                     const data::Dataset& d2,
                                     const DeviationFunction& fn,
                                     int class_filter) {
  const DtGcr gcr(m1, m2);
  const data::Schema& schema = m1.tree().schema();
  const int num_classes = gcr.num_classes();
  const size_t stride_region =
      static_cast<size_t>(gcr.num_regions()) * num_classes;

  const std::vector<int64_t> counts1 = FocusedCounts(regions, gcr, m1, m2, d1);
  const std::vector<int64_t> counts2 = FocusedCounts(regions, gcr, m1, m2, d2);
  const double n1 = static_cast<double>(d1.num_rows());
  const double n2 = static_cast<double>(d2.num_rows());

  std::vector<RankedBox> ranked;
  ranked.reserve(regions.size());
  std::vector<double> diffs;
  for (size_t r = 0; r < regions.size(); ++r) {
    diffs.clear();
    for (int cell = 0; cell < gcr.num_regions(); ++cell) {
      // Cells with empty geometric intersection with the candidate region
      // are not part of the focussed structural component.
      if (gcr.regions()[cell].box.Intersect(regions[r]).IsEmpty(schema)) {
        continue;
      }
      for (int c = 0; c < num_classes; ++c) {
        if (class_filter >= 0 && c != class_filter) continue;
        const size_t i =
            r * stride_region + static_cast<size_t>(cell) * num_classes + c;
        diffs.push_back(fn.f(static_cast<double>(counts1[i]),
                             static_cast<double>(counts2[i]), n1, n2));
      }
    }
    ranked.push_back({regions[r], AggregateValues(fn.g, diffs)});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedBox& a, const RankedBox& b) {
                     return a.deviation > b.deviation;
                   });
  return ranked;
}

std::vector<RankedItemset> RankLitsRegions(const ItemsetSet& regions,
                                           const lits::LitsModel& m1,
                                           const data::TransactionDb& d1,
                                           const lits::LitsModel& m2,
                                           const data::TransactionDb& d2,
                                           const DiffFn& f) {
  // Reuse stored supports and count the rest in one scan per dataset.
  std::vector<lits::Itemset> missing1;
  std::vector<lits::Itemset> missing2;
  for (const lits::Itemset& itemset : regions) {
    if (!m1.Contains(itemset)) missing1.push_back(itemset);
    if (!m2.Contains(itemset)) missing2.push_back(itemset);
  }
  std::unordered_map<lits::Itemset, double, lits::ItemsetHash> counted1;
  std::unordered_map<lits::Itemset, double, lits::ItemsetHash> counted2;
  if (!missing1.empty()) {
    const std::vector<double> supports = lits::CountSupports(d1, missing1);
    for (size_t i = 0; i < missing1.size(); ++i) {
      counted1[missing1[i]] = supports[i];
    }
  }
  if (!missing2.empty()) {
    const std::vector<double> supports = lits::CountSupports(d2, missing2);
    for (size_t i = 0; i < missing2.size(); ++i) {
      counted2[missing2[i]] = supports[i];
    }
  }

  const double n1 = static_cast<double>(d1.num_transactions());
  const double n2 = static_cast<double>(d2.num_transactions());
  std::vector<RankedItemset> ranked;
  ranked.reserve(regions.size());
  for (const lits::Itemset& itemset : regions) {
    RankedItemset entry;
    entry.itemset = itemset;
    entry.support1 = m1.Contains(itemset) ? m1.SupportOr(itemset, 0.0)
                                          : counted1.at(itemset);
    entry.support2 = m2.Contains(itemset) ? m2.SupportOr(itemset, 0.0)
                                          : counted2.at(itemset);
    entry.deviation = f(entry.support1 * n1, entry.support2 * n2, n1, n2);
    ranked.push_back(std::move(entry));
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedItemset& a, const RankedItemset& b) {
                     return a.deviation > b.deviation;
                   });
  return ranked;
}

std::vector<RankedClusterRegion> RankClusterRegions(
    const cluster::ClusterModel& m1, const data::Dataset& d1,
    const cluster::ClusterModel& m2, const data::Dataset& d2,
    const DiffFn& f) {
  const std::vector<ClusterGcrRegion> gcr = ClusterGcr(m1, m2);
  const std::vector<int64_t> counts1 = cluster::CountCells(d1, m1.grid());
  const std::vector<int64_t> counts2 = cluster::CountCells(d2, m1.grid());
  const double n1 = static_cast<double>(d1.num_rows());
  const double n2 = static_cast<double>(d2.num_rows());

  std::vector<RankedClusterRegion> ranked;
  ranked.reserve(gcr.size());
  for (const ClusterGcrRegion& region : gcr) {
    RankedClusterRegion entry;
    entry.region1 = region.region1;
    entry.region2 = region.region2;
    entry.cells = region.cells;
    int64_t c1 = 0;
    int64_t c2 = 0;
    for (int64_t cell : region.cells) {
      c1 += counts1[cell];
      c2 += counts2[cell];
    }
    entry.selectivity1 = static_cast<double>(c1) / n1;
    entry.selectivity2 = static_cast<double>(c2) / n2;
    entry.deviation =
        f(static_cast<double>(c1), static_cast<double>(c2), n1, n2);
    ranked.push_back(std::move(entry));
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const RankedClusterRegion& a,
                      const RankedClusterRegion& b) {
                     return a.deviation > b.deviation;
                   });
  return ranked;
}

}  // namespace focus::core

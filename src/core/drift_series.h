#ifndef FOCUS_CORE_DRIFT_SERIES_H_
#define FOCUS_CORE_DRIFT_SERIES_H_

#include <cstdint>
#include <vector>

namespace focus::core {

// Change-point detection over a time series of FOCUS deviations.
//
// A monitoring deployment produces one deviation per snapshot (against a
// fixed reference or the previous snapshot). Individual values wiggle
// with sampling noise; a regime change shows up as a sustained upward
// shift. The one-sided CUSUM statistic accumulates evidence of such a
// shift and flags a change-point when it crosses a decision threshold —
// complementing the paper's per-snapshot significance test with a
// sequential view.
struct CusumOptions {
  // Number of initial observations used to estimate the in-control mean
  // and standard deviation.
  int warmup = 5;
  // Slack in standard deviations: drifts smaller than `slack` sigma are
  // absorbed.
  double slack = 0.5;
  // Decision threshold in standard deviations of the warmup noise.
  double decision_threshold = 5.0;
};

struct DriftPoint {
  double deviation = 0.0;  // the observed value
  double cusum = 0.0;      // accumulated one-sided statistic
  bool change_point = false;
};

// Sequential detector; feed deviations in time order.
class DeviationCusum {
 public:
  explicit DeviationCusum(const CusumOptions& options);

  // Processes the next observation and returns its annotated point. The
  // first `warmup` observations estimate the baseline and never flag.
  // After a flagged change-point the statistic resets, so consecutive
  // flags indicate repeated (or continuing, re-confirmed) shifts.
  DriftPoint Observe(double deviation);

  bool baseline_ready() const { return baseline_ready_; }
  double baseline_mean() const { return mean_; }
  double baseline_sd() const { return sd_; }
  const std::vector<DriftPoint>& history() const { return history_; }

 private:
  CusumOptions options_;
  std::vector<double> warmup_values_;
  bool baseline_ready_ = false;
  double mean_ = 0.0;
  double sd_ = 0.0;
  double statistic_ = 0.0;
  std::vector<DriftPoint> history_;
};

// One-shot convenience: annotate a whole series.
std::vector<DriftPoint> DetectDrift(const std::vector<double>& deviations,
                                    const CusumOptions& options);

}  // namespace focus::core

#endif  // FOCUS_CORE_DRIFT_SERIES_H_

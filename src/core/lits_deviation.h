#ifndef FOCUS_CORE_LITS_DEVIATION_H_
#define FOCUS_CORE_LITS_DEVIATION_H_

#include <functional>
#include <vector>

#include "core/functions.h"
#include "data/transaction_db.h"
#include "data/item_index.h"
#include "data/txn_source.h"
#include "itemsets/apriori.h"
#include "itemsets/itemset.h"

namespace focus::core {

// FOCUS instantiation for lits-models (§4.1). The refinement relation is
// the superset relation on sets of frequent itemsets; the GCR of two
// models is the UNION of their itemsets (Proposition 4.1).

// Structural union Γ(M1) ⊔ Γ(M2): the GCR, sorted deterministically.
std::vector<lits::Itemset> LitsGcr(const lits::LitsModel& m1,
                                   const lits::LitsModel& m2);

// Extension of both models to an arbitrary common refinement `regions`:
// counts the supports of every region in both databases (one scan each —
// §3.3.1) and aggregates per-region differences. This is
// delta^1_(f,g) of Definition 3.5 applied after extension.
double LitsDeviationOverRegions(const std::vector<lits::Itemset>& regions,
                                const data::TransactionDb& d1,
                                const data::TransactionDb& d2,
                                const DeviationFunction& fn);

// delta_(f,g)(M1, M2) of Definition 3.6: extension to the GCR. Models must
// have been induced by d1/d2 respectively (their stored supports are
// reused; only the itemsets missing from each model are re-counted).
double LitsDeviation(const lits::LitsModel& m1, const data::TransactionDb& d1,
                     const lits::LitsModel& m2, const data::TransactionDb& d2,
                     const DeviationFunction& fn);

// Vertical-index overloads: identical results (counts are integers and the
// divisions by |D| match), but the per-region supports missing from each
// model come from AND+popcount over prebuilt TID sets — flat bitmaps or
// roaring containers, whichever backs the data::ItemIndexRef — instead of
// re-scanning raw transactions. This is the scan-once path the serving
// layer uses: each snapshot's index is built one time and then probed by
// every deviation the window evaluates against it.
double LitsDeviationOverRegions(const std::vector<lits::Itemset>& regions,
                                data::ItemIndexRef i1, data::ItemIndexRef i2,
                                const DeviationFunction& fn);

double LitsDeviation(const lits::LitsModel& m1, data::ItemIndexRef i1,
                     const lits::LitsModel& m2, data::ItemIndexRef i2,
                     const DeviationFunction& fn);

// Transaction-source overloads: the counting scans stream block by block
// when an operand is block-backed (bounded memory), and run exactly as the
// TransactionDb overloads when it is not. Counts are integers either way,
// so the deviation doubles are bit-identical across backends.
double LitsDeviationOverRegions(const std::vector<lits::Itemset>& regions,
                                data::TxnSourceRef s1, data::TxnSourceRef s2,
                                const DeviationFunction& fn);

double LitsDeviation(const lits::LitsModel& m1, data::TxnSourceRef s1,
                     const lits::LitsModel& m2, data::TxnSourceRef s2,
                     const DeviationFunction& fn);

// The two halves of LitsDeviation, exposed for the sharded scatter-gather
// path (src/shard/): each owning shard extends its model to the GCR with
// LitsExtendModel, and the router recombines the supports with
// LitsAggregateRegionDiffs. Because these are the same functions the
// single-node path composes, the distributed answer is bit-identical.

// Measure extension of `model` to `regions` (Definition 3.4): stored
// supports are reused, itemsets the model lacks are counted against the
// prebuilt vertical index.
std::vector<double> LitsExtendModel(const std::vector<lits::Itemset>& regions,
                                    const lits::LitsModel& model,
                                    data::ItemIndexRef index);

// delta^1_(f,g) over already-extended measure components: per-region diffs
// in region order, then AggregateValues(fn.g, ...).
double LitsAggregateRegionDiffs(const std::vector<double>& s1, double n1,
                                const std::vector<double>& s2, double n2,
                                const DeviationFunction& fn);

// Focussed deviation delta^R (Definition 5.2) where the focussing region R
// is expressed as a predicate on itemsets (e.g. "itemsets within the shoe
// department's items", §5.1). Regions of the GCR not satisfying the
// predicate are excluded (their intersection with R is empty).
using ItemsetPredicate = std::function<bool(const lits::Itemset&)>;

double LitsDeviationFocused(const lits::LitsModel& m1,
                            const data::TransactionDb& d1,
                            const lits::LitsModel& m2,
                            const data::TransactionDb& d2,
                            const ItemsetPredicate& focus,
                            const DeviationFunction& fn);

// Common focussing predicates.
ItemsetPredicate WithinItems(std::vector<int32_t> department_items);
ItemsetPredicate ContainsItem(int32_t item);

// Per-region deviations over the GCR, for the Rank operator (§5). Returns
// (itemset, support1, support2, difference) tuples.
struct LitsRegionDeviation {
  lits::Itemset itemset;
  double support1 = 0.0;
  double support2 = 0.0;
  double deviation = 0.0;
};

std::vector<LitsRegionDeviation> LitsPerRegionDeviations(
    const lits::LitsModel& m1, const data::TransactionDb& d1,
    const lits::LitsModel& m2, const data::TransactionDb& d2,
    const DiffFn& f);

}  // namespace focus::core

#endif  // FOCUS_CORE_LITS_DEVIATION_H_

#include "core/monitor.h"

#include <algorithm>
#include <random>
#include <vector>

#include "common/check.h"
#include "core/lits_deviation.h"
#include "core/lits_upper_bound.h"
#include "data/sampling.h"
#include "stats/rng.h"

namespace focus::core {

LitsChangeMonitor::LitsChangeMonitor(const data::TransactionDb& reference,
                                     const MonitorOptions& options)
    : options_(options),
      reference_(reference),
      reference_index_(reference_),
      reference_model_(
          lits::Apriori(reference_, options_.apriori, &reference_index_)) {
  FOCUS_CHECK_GT(options_.calibration_replicates, 0);
  FOCUS_CHECK_GT(options_.alert_factor, 0.0);
  Calibrate();
}

void LitsChangeMonitor::Calibrate() {
  // Same-process level: delta* between the reference model and models of
  // bootstrap resamples of the reference. The threshold is alert_factor
  // times the largest calibration value, so same-process snapshots
  // rarely fire stage 2.
  std::mt19937_64 rng = stats::MakeRng(options_.seed);
  double level = 0.0;
  for (int r = 0; r < options_.calibration_replicates; ++r) {
    const data::TransactionDb replicate = data::TakeTransactions(
        reference_,
        data::SampleIndicesWithReplacement(reference_.num_transactions(),
                                           reference_.num_transactions(), rng));
    const data::VerticalIndex replicate_index(replicate);
    const lits::LitsModel replicate_model =
        lits::Apriori(replicate, options_.apriori, &replicate_index);
    level = std::max(level, LitsUpperBound(reference_model_, replicate_model,
                                           options_.fn.g));
  }
  alert_threshold_ = options_.alert_factor * level;
}

MonitorReport LitsChangeMonitor::Inspect(
    const data::TransactionDb& snapshot) const {
  return Inspect(data::TxnSourceRef(snapshot));
}

MonitorReport LitsChangeMonitor::Inspect(data::TxnSourceRef snapshot) const {
  // One scan builds the snapshot's index; mining and the (possible)
  // stage-2 extension then both run vertically against it.
  const data::VerticalIndex snapshot_index(snapshot);
  return InspectWithModel(
      snapshot, lits::Apriori(snapshot, options_.apriori, &snapshot_index),
      &snapshot_index);
}

MonitorReport LitsChangeMonitor::InspectWithModel(
    const data::TransactionDb& snapshot, const lits::LitsModel& snapshot_model,
    data::ItemIndexRef snapshot_index) const {
  return InspectWithModel(data::TxnSourceRef(snapshot), snapshot_model,
                          snapshot_index);
}

MonitorReport LitsChangeMonitor::InspectWithModel(
    data::TxnSourceRef snapshot, const lits::LitsModel& snapshot_model,
    data::ItemIndexRef snapshot_index) const {
  MonitorReport report;
  report.upper_bound =
      LitsUpperBound(reference_model_, snapshot_model, options_.fn.g);
  if (report.upper_bound < alert_threshold_) {
    // Theorem 4.2(1): the exact deviation is at most the bound, so it is
    // also below the alert level — safe to skip the data scans entirely.
    report.screened_out = true;
    return report;
  }
  report.deviation =
      snapshot_index.has_value()
          ? LitsDeviation(reference_model_, reference_index_, snapshot_model,
                          snapshot_index, options_.fn)
          : LitsDeviation(reference_model_, reference_, snapshot_model,
                          snapshot, options_.fn);
  const SignificanceResult sig = LitsDeviationSignificance(
      reference_, snapshot, options_.apriori, options_.fn,
      options_.significance);
  report.significance_percent = sig.significance_percent;
  report.alert = sig.significance_percent >= 95.0;
  return report;
}

void LitsChangeMonitor::Rebase(const data::TransactionDb& snapshot) {
  reference_ = snapshot;
  reference_index_ = data::VerticalIndex(reference_);
  reference_model_ = lits::Apriori(reference_, options_.apriori, &reference_index_);
  Calibrate();
}

}  // namespace focus::core

#ifndef FOCUS_CORE_QUERY_ESTIMATOR_H_
#define FOCUS_CORE_QUERY_ESTIMATOR_H_

#include "core/dt_deviation.h"
#include "data/box.h"
#include "itemsets/apriori.h"

namespace focus::core {

// Approximate query answering from 2-component models — the future-work
// direction named in §8 of the paper. A model's structural + measure
// components are exactly a selectivity summary of the inducing dataset:
// dt-model leaf regions act as a multidimensional histogram; a lits-model
// is a sparse summary of conjunctive boolean predicates.

// Estimates selectivities of axis-aligned (Box) predicates from a
// dt-model under the standard uniformity-within-region assumption.
class DtSelectivityEstimator {
 public:
  // The estimator keeps a reference; `model` must outlive it.
  explicit DtSelectivityEstimator(const DtModel& model);

  // Estimated fraction of tuples satisfying `query` (all classes).
  double EstimateSelectivity(const data::Box& query) const;

  // Estimated fraction restricted to one class label.
  double EstimateClassSelectivity(const data::Box& query, int cls) const;

  // Estimated COUNT(*) for a dataset of `num_rows` tuples.
  double EstimateCount(const data::Box& query, int64_t num_rows) const;

 private:
  // Fraction of `region`'s volume covered by `query` ∩ `region`,
  // independently per attribute (infinite edges clip to the schema
  // domain; categorical attributes use mask cardinalities).
  double OverlapFraction(const data::Box& region, const data::Box& query) const;

  const DtModel& model_;
};

// Upper bound on the support of an ARBITRARY itemset from a lits-model,
// via anti-monotonicity: sup(X) <= min over stored subsets Y ⊆ X of
// sup(Y); if even some single item of X is not frequent, sup(X) <
// min_support. Exact when X itself is stored.
double EstimateSupportUpperBound(const lits::LitsModel& model,
                                 const lits::Itemset& itemset);

}  // namespace focus::core

#endif  // FOCUS_CORE_QUERY_ESTIMATOR_H_

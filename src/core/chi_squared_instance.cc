#include "core/chi_squared_instance.h"

#include <random>

#include "common/check.h"
#include "core/dt_deviation.h"
#include "core/functions.h"
#include "data/sampling.h"
#include "stats/distributions.h"
#include "stats/rng.h"

namespace focus::core {

ChiSquaredResult ChiSquaredFit(const dt::DecisionTree& tree,
                               const data::Dataset& d1,
                               const data::Dataset& d2, double c) {
  DtDeviationOptions options;
  options.fn = {ChiSquaredDiff(c), AggregateKind::kSum};
  ChiSquaredResult result;
  result.statistic = DtDeviationOverTree(tree, d1, d2, options);
  result.dof = static_cast<double>(tree.num_leaves()) *
                   static_cast<double>(tree.schema().num_classes()) -
               1.0;
  if (result.dof < 1.0) result.dof = 1.0;
  result.asymptotic_p_value = stats::ChiSquaredPValue(result.statistic, result.dof);
  return result;
}

double ChiSquaredBootstrapPValue(const dt::DecisionTree& tree,
                                 const data::Dataset& d1,
                                 const data::Dataset& d2, double c,
                                 int num_replicates, uint64_t seed) {
  FOCUS_CHECK_GT(num_replicates, 0);
  const double observed = ChiSquaredFit(tree, d1, d2, c).statistic;

  std::mt19937_64 rng = stats::MakeRng(seed);
  int at_least_as_extreme = 0;
  for (int r = 0; r < num_replicates; ++r) {
    // Null hypothesis: the new dataset fits the old model, i.e. is drawn
    // from D1's distribution. Resample |D2| tuples from D1.
    const data::Dataset replicate = data::TakeRows(
        d1, data::SampleIndicesWithReplacement(d1.num_rows(), d2.num_rows(),
                                               rng));
    const double statistic = ChiSquaredFit(tree, d1, replicate, c).statistic;
    if (statistic >= observed) ++at_least_as_extreme;
  }
  // +1 correction: the observed value is itself one realization.
  return static_cast<double>(at_least_as_extreme + 1) /
         static_cast<double>(num_replicates + 1);
}

}  // namespace focus::core

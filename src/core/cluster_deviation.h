#ifndef FOCUS_CORE_CLUSTER_DEVIATION_H_
#define FOCUS_CORE_CLUSTER_DEVIATION_H_

#include <optional>
#include <vector>

#include "cluster/cluster_model.h"
#include "common/thread_pool.h"
#include "core/functions.h"
#include "data/box.h"
#include "data/dataset.h"

namespace focus::core {

// FOCUS instantiation for cluster-models (§2.4: "the discussion for
// cluster-models is a special case of dt-models"). Regions are unions of
// grid cells, so refinement is exact at cell granularity.
//
// The GCR of two cluster structural components consists of:
//   * every non-empty pairwise intersection r1 ∩ r2,
//   * the remainder r1 \ (∪ regions of M2) of every region of M1,
//   * the remainder r2 \ (∪ regions of M1) of every region of M2.
// Each original region is the disjoint union of its GCR parts, which is
// precisely the refinement property of Definition 3.4.
struct ClusterGcrRegion {
  int region1 = -1;  // index in M1, or -1 for an M2-only remainder
  int region2 = -1;  // index in M2, or -1 for an M1-only remainder
  std::vector<int64_t> cells;  // sorted
};

std::vector<ClusterGcrRegion> ClusterGcr(const cluster::ClusterModel& m1,
                                         const cluster::ClusterModel& m2);

struct ClusterDeviationOptions {
  DeviationFunction fn;
  // Optional focussing region R; a GCR region contributes only the cells
  // whose boxes intersect R, and tuples are counted only inside R.
  std::optional<data::Box> focus;
  // Optional worker pool: the per-cell histogram scans are sharded across
  // its workers (integer counts, bit-identical to the serial scans).
  common::ThreadPool* pool = nullptr;
};

// delta_(f,g)(M1, M2) for cluster-models; both datasets are scanned once
// (cell histograms).
double ClusterDeviation(const cluster::ClusterModel& m1,
                        const data::Dataset& d1,
                        const cluster::ClusterModel& m2,
                        const data::Dataset& d2,
                        const ClusterDeviationOptions& options);

}  // namespace focus::core

#endif  // FOCUS_CORE_CLUSTER_DEVIATION_H_

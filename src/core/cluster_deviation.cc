#include "core/cluster_deviation.h"

#include <algorithm>
#include <map>
#include <unordered_map>

#include "common/check.h"
#include "core/parallel_count.h"

namespace focus::core {
namespace {

// cell -> region index maps for fast pairing.
std::unordered_map<int64_t, int> CellOwners(const cluster::ClusterModel& m) {
  std::unordered_map<int64_t, int> owners;
  for (int r = 0; r < m.num_regions(); ++r) {
    for (int64_t cell : m.region(r)) owners[cell] = r;
  }
  return owners;
}

}  // namespace

std::vector<ClusterGcrRegion> ClusterGcr(const cluster::ClusterModel& m1,
                                         const cluster::ClusterModel& m2) {
  FOCUS_CHECK(m1.grid().SameShape(m2.grid()))
      << "cluster-models must share a grid to be refined";
  const std::unordered_map<int64_t, int> owners2 = CellOwners(m2);
  const std::unordered_map<int64_t, int> owners1 = CellOwners(m1);

  // Key (r1, r2) with -1 encoded as the max index + 1 would collide; use a
  // map over the pair directly.
  std::map<std::pair<int, int>, std::vector<int64_t>> parts;
  for (int r1 = 0; r1 < m1.num_regions(); ++r1) {
    for (int64_t cell : m1.region(r1)) {
      const auto it = owners2.find(cell);
      const int r2 = it == owners2.end() ? -1 : it->second;
      parts[{r1, r2}].push_back(cell);
    }
  }
  for (int r2 = 0; r2 < m2.num_regions(); ++r2) {
    for (int64_t cell : m2.region(r2)) {
      if (owners1.count(cell)) continue;  // already covered above
      parts[{-1, r2}].push_back(cell);
    }
  }

  std::vector<ClusterGcrRegion> gcr;
  gcr.reserve(parts.size());
  for (auto& [key, cells] : parts) {
    std::sort(cells.begin(), cells.end());
    gcr.push_back({key.first, key.second, std::move(cells)});
  }
  return gcr;
}

double ClusterDeviation(const cluster::ClusterModel& m1,
                        const data::Dataset& d1,
                        const cluster::ClusterModel& m2,
                        const data::Dataset& d2,
                        const ClusterDeviationOptions& options) {
  const std::vector<ClusterGcrRegion> gcr = ClusterGcr(m1, m2);
  const cluster::Grid& grid = m1.grid();
  const data::Schema& schema = grid.schema();

  // One scan of each dataset: per-cell counts, restricted to the focus
  // region when present.
  auto count_cells = [&](const data::Dataset& dataset) {
    return CountRowsMaybeParallel(
        dataset.num_rows(), grid.num_cells(), options.pool,
        [&](int64_t row, std::vector<int64_t>& acc) {
          const auto values = dataset.Row(row);
          if (options.focus.has_value() &&
              !options.focus->Contains(schema, values)) {
            return;
          }
          ++acc[grid.CellOf(values)];
        });
  };
  const std::vector<int64_t> counts1 = count_cells(d1);
  const std::vector<int64_t> counts2 = count_cells(d2);
  const double n1 = static_cast<double>(d1.num_rows());
  const double n2 = static_cast<double>(d2.num_rows());

  std::vector<double> diffs;
  diffs.reserve(gcr.size());
  for (const ClusterGcrRegion& region : gcr) {
    int64_t c1 = 0;
    int64_t c2 = 0;
    bool region_intersects_focus = !options.focus.has_value();
    for (int64_t cell : region.cells) {
      c1 += counts1[cell];
      c2 += counts2[cell];
      if (!region_intersects_focus &&
          !grid.CellBox(cell).Intersect(*options.focus).IsEmpty(schema)) {
        region_intersects_focus = true;
      }
    }
    if (!region_intersects_focus) continue;  // R ∩ region is empty
    diffs.push_back(options.fn.f(static_cast<double>(c1),
                                 static_cast<double>(c2), n1, n2));
  }
  return AggregateValues(options.fn.g, diffs);
}

}  // namespace focus::core

#include "core/region_algebra.h"

#include <algorithm>

namespace focus::core {

ItemsetSet NormalizeItemsets(ItemsetSet itemsets) {
  std::sort(itemsets.begin(), itemsets.end());
  itemsets.erase(std::unique(itemsets.begin(), itemsets.end()),
                 itemsets.end());
  return itemsets;
}

ItemsetSet StructuralUnion(const ItemsetSet& g1, const ItemsetSet& g2) {
  ItemsetSet merged = g1;
  merged.insert(merged.end(), g2.begin(), g2.end());
  return NormalizeItemsets(std::move(merged));
}

ItemsetSet StructuralIntersection(const ItemsetSet& g1, const ItemsetSet& g2) {
  const ItemsetSet a = NormalizeItemsets(g1);
  const ItemsetSet b = NormalizeItemsets(g2);
  ItemsetSet out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

ItemsetSet StructuralDifference(const ItemsetSet& g1, const ItemsetSet& g2) {
  const ItemsetSet a = NormalizeItemsets(g1);
  const ItemsetSet b = NormalizeItemsets(g2);
  ItemsetSet out;
  std::set_symmetric_difference(a.begin(), a.end(), b.begin(), b.end(),
                                std::back_inserter(out));
  return out;
}

namespace {

bool ContainsBox(const BoxSet& set, const data::Box& box) {
  for (const data::Box& candidate : set) {
    if (candidate == box) return true;
  }
  return false;
}

}  // namespace

BoxSet PlainUnion(const BoxSet& g1, const BoxSet& g2) {
  BoxSet out = g1;
  for (const data::Box& box : g2) {
    if (!ContainsBox(out, box)) out.push_back(box);
  }
  return out;
}

BoxSet StructuralUnion(const data::Schema& schema, const BoxSet& g1,
                       const BoxSet& g2) {
  BoxSet out;
  for (const data::Box& b1 : g1) {
    for (const data::Box& b2 : g2) {
      data::Box intersection = b1.Intersect(b2);
      if (!intersection.IsEmpty(schema) && !ContainsBox(out, intersection)) {
        out.push_back(std::move(intersection));
      }
    }
  }
  return out;
}

BoxSet StructuralIntersection(const data::Schema& schema, const BoxSet& g1,
                              const BoxSet& g2) {
  BoxSet out;
  for (const data::Box& box : g1) {
    if (box.IsEmpty(schema)) continue;
    if (ContainsBox(g2, box) && !ContainsBox(out, box)) out.push_back(box);
  }
  return out;
}

BoxSet StructuralDifference(const data::Schema& schema, const BoxSet& g1,
                            const BoxSet& g2) {
  const BoxSet unioned = StructuralUnion(schema, g1, g2);
  const BoxSet intersected = StructuralIntersection(schema, g1, g2);
  BoxSet out;
  for (const data::Box& box : unioned) {
    if (!ContainsBox(intersected, box)) out.push_back(box);
  }
  return out;
}

}  // namespace focus::core

#include "core/lits_upper_bound.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "core/lits_deviation.h"

namespace focus::core {

double LitsUpperBound(const lits::LitsModel& m1, const lits::LitsModel& m2,
                      AggregateKind g) {
  // Per-region differences keyed by itemset so the fold order can be
  // made canonical: supports() is an unordered_map, and for g_sum the
  // FP fold value would otherwise follow the hash seed (tier-1 pins
  // bit-identical deltas across backends and shards).
  std::vector<std::pair<lits::Itemset, double>> diffs;
  diffs.reserve(m1.size() + m2.size());
  // Regions frequent in M1 (covers the "both" and "only M1" cases of
  // Definition 4.1: a miss in M2 contributes support 0).
  for (const auto& [itemset, support1] : m1.supports()) {
    const double support2 = m2.SupportOr(itemset, 0.0);
    diffs.emplace_back(itemset, std::fabs(support1 - support2));
  }
  // Regions frequent only in M2.
  for (const auto& [itemset, support2] : m2.supports()) {
    if (!m1.Contains(itemset)) {
      diffs.emplace_back(itemset, support2);
    }
  }
  std::sort(diffs.begin(), diffs.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<double> values;
  values.reserve(diffs.size());
  for (const auto& [itemset, diff] : diffs) values.push_back(diff);
  return AggregateValues(g, values);
}

}  // namespace focus::core

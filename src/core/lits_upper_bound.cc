#include "core/lits_upper_bound.h"

#include <cmath>
#include <vector>

#include "core/lits_deviation.h"

namespace focus::core {

double LitsUpperBound(const lits::LitsModel& m1, const lits::LitsModel& m2,
                      AggregateKind g) {
  std::vector<double> diffs;
  diffs.reserve(m1.size() + m2.size());
  // Regions frequent in M1 (covers the "both" and "only M1" cases of
  // Definition 4.1: a miss in M2 contributes support 0).
  for (const auto& [itemset, support1] : m1.supports()) {
    const double support2 = m2.SupportOr(itemset, 0.0);
    diffs.push_back(std::fabs(support1 - support2));
  }
  // Regions frequent only in M2.
  for (const auto& [itemset, support2] : m2.supports()) {
    if (!m1.Contains(itemset)) {
      diffs.push_back(support2);
    }
  }
  return AggregateValues(g, diffs);
}

}  // namespace focus::core

#include "core/functions.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace focus::core {

DiffFn AbsoluteDiff() {
  return [](double count1, double count2, double n1, double n2) {
    return std::fabs(count1 / n1 - count2 / n2);
  };
}

DiffFn ScaledDiff() {
  return [](double count1, double count2, double n1, double n2) {
    if (count1 + count2 <= 0.0) return 0.0;
    const double s1 = count1 / n1;
    const double s2 = count2 / n2;
    const double mean = (s1 + s2) / 2.0;
    if (mean == 0.0) return 0.0;
    return std::fabs(s1 - s2) / mean;
  };
}

DiffFn ChiSquaredDiff(double c) {
  return [c](double count1, double count2, double n1, double n2) {
    const double s1 = count1 / n1;
    if (s1 <= 0.0) return c;
    const double s2 = count2 / n2;
    return n2 * (s1 - s2) * (s1 - s2) / s1;
  };
}

double AggregateValues(AggregateKind kind, std::span<const double> values) {
  switch (kind) {
    case AggregateKind::kSum: {
      double sum = 0.0;
      for (double v : values) sum += v;
      return sum;
    }
    case AggregateKind::kMax: {
      double best = 0.0;  // g: P(R+) -> R+; empty set aggregates to 0
      for (double v : values) best = std::max(best, v);
      return best;
    }
  }
  FOCUS_CHECK(false) << "unknown aggregate";
  return 0.0;
}

std::string ToString(AggregateKind kind) {
  return kind == AggregateKind::kSum ? "g_sum" : "g_max";
}

}  // namespace focus::core

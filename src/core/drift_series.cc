#include "core/drift_series.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/descriptive.h"

namespace focus::core {

DeviationCusum::DeviationCusum(const CusumOptions& options)
    : options_(options) {
  FOCUS_CHECK_GE(options_.warmup, 2);
  FOCUS_CHECK_GE(options_.slack, 0.0);
  FOCUS_CHECK_GT(options_.decision_threshold, 0.0);
}

DriftPoint DeviationCusum::Observe(double deviation) {
  DriftPoint point;
  point.deviation = deviation;

  if (!baseline_ready_) {
    warmup_values_.push_back(deviation);
    if (static_cast<int>(warmup_values_.size()) >= options_.warmup) {
      mean_ = stats::Mean(warmup_values_);
      sd_ = stats::StdDev(warmup_values_);
      // Degenerate warmup (constant values): fall back to a fraction of
      // the mean so the detector still has a scale.
      if (sd_ <= 0.0) sd_ = std::max(1e-12, 0.05 * std::fabs(mean_));
      baseline_ready_ = true;
    }
    history_.push_back(point);
    return point;
  }

  const double standardized = (deviation - mean_) / sd_;
  statistic_ = std::max(0.0, statistic_ + standardized - options_.slack);
  point.cusum = statistic_;
  if (statistic_ > options_.decision_threshold) {
    point.change_point = true;
    statistic_ = 0.0;  // reset after signalling
  }
  history_.push_back(point);
  return point;
}

std::vector<DriftPoint> DetectDrift(const std::vector<double>& deviations,
                                    const CusumOptions& options) {
  DeviationCusum detector(options);
  std::vector<DriftPoint> annotated;
  annotated.reserve(deviations.size());
  for (double deviation : deviations) {
    annotated.push_back(detector.Observe(deviation));
  }
  return annotated;
}

}  // namespace focus::core

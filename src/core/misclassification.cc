#include "core/misclassification.h"

#include "common/check.h"
#include "core/dt_deviation.h"

namespace focus::core {

double MisclassificationError(const dt::DecisionTree& tree,
                              const data::Dataset& d2) {
  FOCUS_CHECK_GT(d2.num_rows(), 0);
  int64_t misclassified = 0;
  for (int64_t row = 0; row < d2.num_rows(); ++row) {
    if (tree.Predict(d2.Row(row)) != d2.Label(row)) ++misclassified;
  }
  return static_cast<double>(misclassified) /
         static_cast<double>(d2.num_rows());
}

data::Dataset PredictedDataset(const dt::DecisionTree& tree,
                               const data::Dataset& d2) {
  data::Dataset predicted(d2.schema());
  predicted.Reserve(d2.num_rows());
  for (int64_t row = 0; row < d2.num_rows(); ++row) {
    predicted.AddRow(d2.Row(row), tree.Predict(d2.Row(row)));
  }
  return predicted;
}

double MisclassificationErrorViaFocus(const dt::DecisionTree& tree,
                                      const data::Dataset& d2) {
  const data::Dataset predicted = PredictedDataset(tree, d2);
  DtDeviationOptions options;
  options.fn = {AbsoluteDiff(), AggregateKind::kSum};
  return 0.5 * DtDeviationOverTree(tree, d2, predicted, options);
}

}  // namespace focus::core

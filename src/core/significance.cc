#include "core/significance.h"

#include <random>
#include <vector>

#include "common/check.h"
#include "core/dt_deviation.h"
#include "core/lits_deviation.h"
#include "data/sampling.h"
#include "stats/bootstrap.h"
#include "stats/rng.h"

namespace focus::core {

SignificanceResult LitsDeviationSignificance(
    const data::TransactionDb& d1, const data::TransactionDb& d2,
    const lits::AprioriOptions& apriori_options, const DeviationFunction& fn,
    const SignificanceOptions& options) {
  return LitsDeviationSignificance(data::TxnSourceRef(d1),
                                   data::TxnSourceRef(d2), apriori_options, fn,
                                   options);
}

SignificanceResult LitsDeviationSignificance(
    data::TxnSourceRef d1, data::TxnSourceRef d2,
    const lits::AprioriOptions& apriori_options, const DeviationFunction& fn,
    const SignificanceOptions& options) {
  FOCUS_CHECK_GT(options.num_replicates, 0);

  const lits::LitsModel m1 = lits::Apriori(d1, apriori_options);
  const lits::LitsModel m2 = lits::Apriori(d2, apriori_options);

  SignificanceResult result;
  result.deviation = LitsDeviation(m1, d1, m2, d2, fn);

  // Replicates resample from the logical pool d1 ++ d2; index draws are
  // over [0, n1 + n2), exactly as if the pool had been materialized.
  const int64_t pool_size = d1.num_transactions() + d2.num_transactions();

  std::mt19937_64 rng = stats::MakeRng(options.seed);
  std::vector<double> null_values;
  null_values.reserve(options.num_replicates);
  for (int r = 0; r < options.num_replicates; ++r) {
    const data::TransactionDb b1 = data::TakeTransactionsPooled(
        d1, d2,
        data::SampleIndicesWithReplacement(pool_size, d1.num_transactions(),
                                           rng));
    const data::TransactionDb b2 = data::TakeTransactionsPooled(
        d1, d2,
        data::SampleIndicesWithReplacement(pool_size, d2.num_transactions(),
                                           rng));
    const lits::LitsModel bm1 = lits::Apriori(b1, apriori_options);
    const lits::LitsModel bm2 = lits::Apriori(b2, apriori_options);
    null_values.push_back(LitsDeviation(bm1, b1, bm2, b2, fn));
  }
  result.significance_percent =
      stats::SignificancePercent(result.deviation, null_values);
  return result;
}

SignificanceResult DtDeviationSignificance(const data::Dataset& d1,
                                           const data::Dataset& d2,
                                           const dt::CartOptions& cart_options,
                                           const DeviationFunction& fn,
                                           const SignificanceOptions& options) {
  FOCUS_CHECK_GT(options.num_replicates, 0);

  const DtModel m1(dt::BuildCart(d1, cart_options), d1);
  const DtModel m2(dt::BuildCart(d2, cart_options), d2);

  DtDeviationOptions deviation_options;
  deviation_options.fn = fn;

  SignificanceResult result;
  result.deviation = DtDeviation(m1, d1, m2, d2, deviation_options);

  data::Dataset pool = d1;
  pool.Append(d2);

  std::mt19937_64 rng = stats::MakeRng(options.seed);
  std::vector<double> null_values;
  null_values.reserve(options.num_replicates);
  for (int r = 0; r < options.num_replicates; ++r) {
    const data::Dataset b1 = data::TakeRows(
        pool,
        data::SampleIndicesWithReplacement(pool.num_rows(), d1.num_rows(), rng));
    const data::Dataset b2 = data::TakeRows(
        pool,
        data::SampleIndicesWithReplacement(pool.num_rows(), d2.num_rows(), rng));
    const DtModel bm1(dt::BuildCart(b1, cart_options), b1);
    const DtModel bm2(dt::BuildCart(b2, cart_options), b2);
    null_values.push_back(DtDeviation(bm1, b1, bm2, b2, deviation_options));
  }
  result.significance_percent =
      stats::SignificancePercent(result.deviation, null_values);
  return result;
}

SignificanceResult LitsBlockSignificance(
    const data::TransactionDb& base, const data::TransactionDb& block,
    const lits::AprioriOptions& apriori_options, const DeviationFunction& fn,
    const SignificanceOptions& options) {
  FOCUS_CHECK_GT(options.num_replicates, 0);
  FOCUS_CHECK_GT(block.num_transactions(), 0);

  const lits::LitsModel base_model = lits::Apriori(base, apriori_options);
  data::TransactionDb extended = base;
  extended.Append(block);
  const lits::LitsModel extended_model =
      lits::Apriori(extended, apriori_options);

  SignificanceResult result;
  result.deviation =
      LitsDeviation(base_model, base, extended_model, extended, fn);

  std::mt19937_64 rng = stats::MakeRng(options.seed);
  std::vector<double> null_values;
  null_values.reserve(options.num_replicates);
  for (int r = 0; r < options.num_replicates; ++r) {
    // Null: the block is more data from base's process.
    data::TransactionDb null_extended = base;
    null_extended.Append(data::TakeTransactions(
        base, data::SampleIndicesWithReplacement(
                  base.num_transactions(), block.num_transactions(), rng)));
    const lits::LitsModel null_model =
        lits::Apriori(null_extended, apriori_options);
    null_values.push_back(
        LitsDeviation(base_model, base, null_model, null_extended, fn));
  }
  result.significance_percent =
      stats::SignificancePercent(result.deviation, null_values);
  return result;
}

SignificanceResult DtBlockSignificance(const data::Dataset& base,
                                       const data::Dataset& block,
                                       const dt::CartOptions& cart_options,
                                       const DeviationFunction& fn,
                                       const SignificanceOptions& options) {
  FOCUS_CHECK_GT(options.num_replicates, 0);
  FOCUS_CHECK_GT(block.num_rows(), 0);

  const DtModel base_model(dt::BuildCart(base, cart_options), base);
  data::Dataset extended = base;
  extended.Append(block);
  const DtModel extended_model(dt::BuildCart(extended, cart_options), extended);

  DtDeviationOptions deviation_options;
  deviation_options.fn = fn;

  SignificanceResult result;
  result.deviation =
      DtDeviation(base_model, base, extended_model, extended, deviation_options);

  std::mt19937_64 rng = stats::MakeRng(options.seed);
  std::vector<double> null_values;
  null_values.reserve(options.num_replicates);
  for (int r = 0; r < options.num_replicates; ++r) {
    data::Dataset null_extended = base;
    null_extended.Append(data::TakeRows(
        base, data::SampleIndicesWithReplacement(base.num_rows(),
                                                 block.num_rows(), rng)));
    const DtModel null_model(dt::BuildCart(null_extended, cart_options),
                             null_extended);
    null_values.push_back(DtDeviation(base_model, base, null_model,
                                      null_extended, deviation_options));
  }
  result.significance_percent =
      stats::SignificancePercent(result.deviation, null_values);
  return result;
}

}  // namespace focus::core

#include "core/query_estimator.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"

namespace focus::core {

DtSelectivityEstimator::DtSelectivityEstimator(const DtModel& model)
    : model_(model) {}

double DtSelectivityEstimator::OverlapFraction(const data::Box& region,
                                               const data::Box& query) const {
  const data::Schema& schema = model_.tree().schema();
  double fraction = 1.0;
  for (int a = 0; a < schema.num_attributes(); ++a) {
    const data::Attribute& attr = schema.attribute(a);
    const data::AttributeBound& r = region.bound(a);
    const data::AttributeBound& q = query.bound(a);
    if (attr.type == data::AttributeType::kNumeric) {
      // Clip infinite region edges to the declared attribute domain so
      // widths are finite.
      const double r_lo = std::max(r.lo, attr.min_value);
      const double r_hi = std::min(r.hi, attr.max_value);
      const double width = r_hi - r_lo;
      if (width <= 0.0) {
        // Degenerate region slice (can happen when a split lands on a
        // domain edge): treat as fully inside iff the query admits it.
        if (q.lo > r_lo || q.hi <= r_lo) return 0.0;
        continue;
      }
      const double overlap =
          std::min(r_hi, q.hi) - std::max(r_lo, q.lo);
      if (overlap <= 0.0) return 0.0;
      fraction *= std::min(overlap / width, 1.0);
    } else {
      const uint64_t domain = attr.cardinality >= 64
                                  ? ~0ULL
                                  : ((1ULL << attr.cardinality) - 1);
      const uint64_t region_mask = r.mask & domain;
      const uint64_t both = region_mask & q.mask;
      const int region_count = std::popcount(region_mask);
      if (region_count == 0) return 0.0;
      const int both_count = std::popcount(both);
      if (both_count == 0) return 0.0;
      fraction *= static_cast<double>(both_count) /
                  static_cast<double>(region_count);
    }
  }
  return fraction;
}

double DtSelectivityEstimator::EstimateSelectivity(
    const data::Box& query) const {
  double estimate = 0.0;
  for (int leaf = 0; leaf < model_.num_leaves(); ++leaf) {
    double leaf_measure = 0.0;
    for (int c = 0; c < model_.num_classes(); ++c) {
      leaf_measure += model_.measure(leaf, c);
    }
    if (leaf_measure == 0.0) continue;
    estimate += leaf_measure * OverlapFraction(model_.leaf_box(leaf), query);
  }
  return estimate;
}

double DtSelectivityEstimator::EstimateClassSelectivity(const data::Box& query,
                                                        int cls) const {
  FOCUS_CHECK_GE(cls, 0);
  FOCUS_CHECK_LT(cls, model_.num_classes());
  double estimate = 0.0;
  for (int leaf = 0; leaf < model_.num_leaves(); ++leaf) {
    const double measure = model_.measure(leaf, cls);
    if (measure == 0.0) continue;
    estimate += measure * OverlapFraction(model_.leaf_box(leaf), query);
  }
  return estimate;
}

double DtSelectivityEstimator::EstimateCount(const data::Box& query,
                                             int64_t num_rows) const {
  return EstimateSelectivity(query) * static_cast<double>(num_rows);
}

double EstimateSupportUpperBound(const lits::LitsModel& model,
                                 const lits::Itemset& itemset) {
  if (itemset.empty()) return 1.0;
  const double stored = model.SupportOr(itemset, -1.0);
  if (stored >= 0.0) return stored;  // exact

  double bound = 1.0;
  bool any_subset_found = false;
  const int k = itemset.size();
  FOCUS_CHECK_LE(k, 20) << "itemset too large for subset enumeration";
  // Enumerate proper non-empty subsets; anti-monotonicity gives
  // sup(X) <= sup(Y) for each Y ⊂ X present in the model.
  for (uint32_t mask = 1; mask < (1u << k) - 1u; ++mask) {
    std::vector<int32_t> items;
    for (int i = 0; i < k; ++i) {
      if (mask & (1u << i)) items.push_back(itemset.item(i));
    }
    const double support = model.SupportOr(lits::Itemset(std::move(items)), -1.0);
    if (support >= 0.0) {
      any_subset_found = true;
      bound = std::min(bound, support);
    } else if (std::popcount(mask) == 1) {
      // A single item that is not frequent caps the support below the
      // mining threshold immediately.
      return model.min_support();
    }
  }
  // X itself is not frequent, so its support is below the threshold; the
  // subset bound can only tighten that.
  bound = std::min(bound, model.min_support());
  (void)any_subset_found;
  return bound;
}

}  // namespace focus::core

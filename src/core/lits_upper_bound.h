#ifndef FOCUS_CORE_LITS_UPPER_BOUND_H_
#define FOCUS_CORE_LITS_UPPER_BOUND_H_

#include "core/functions.h"
#include "itemsets/apriori.h"

namespace focus::core {

// The upper bound delta* of §4.1.1 (Definition 4.1, Theorem 4.2): an
// estimate of delta_(f_a,g) computable from the two MODELS alone, without
// scanning either dataset. When an itemset is frequent in only one model,
// its unknown support in the other dataset is replaced by 0, which (since
// the true support is below the minimum support threshold while the known
// one is above it) can only overestimate the per-region difference.
//
// Properties (verified by tests):
//   (1) delta*(M1, M2) >= delta_(f_a,g)(M1, M2)   for g in {g_sum, g_max}
//   (2) delta* satisfies the triangle inequality
//   (3) no dataset scan is required.
double LitsUpperBound(const lits::LitsModel& m1, const lits::LitsModel& m2,
                      AggregateKind g);

}  // namespace focus::core

#endif  // FOCUS_CORE_LITS_UPPER_BOUND_H_

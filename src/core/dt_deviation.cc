#include "core/dt_deviation.h"

#include "common/check.h"
#include "core/parallel_count.h"
#include "tree/leaf_regions.h"

namespace focus::core {

DtModel::DtModel(dt::DecisionTree tree, const data::Dataset& inducing_dataset)
    : tree_(std::move(tree)) {
  FOCUS_CHECK(tree_.schema() == inducing_dataset.schema());
  leaf_boxes_ = dt::ExtractLeafBoxes(tree_);
  measures_ = DtMeasuresOverTree(tree_, inducing_dataset);
  num_rows_ = inducing_dataset.num_rows();
}

DtGcr::DtGcr(const DtModel& m1, const DtModel& m2)
    : leaves2_(m2.num_leaves()), num_classes_(m1.num_classes()) {
  FOCUS_CHECK(m1.tree().schema() == m2.tree().schema())
      << "dt-models must share an attribute space";
  const data::Schema& schema = m1.tree().schema();
  for (int l1 = 0; l1 < m1.num_leaves(); ++l1) {
    for (int l2 = 0; l2 < m2.num_leaves(); ++l2) {
      data::Box intersection = m1.leaf_box(l1).Intersect(m2.leaf_box(l2));
      if (intersection.IsEmpty(schema)) continue;
      index_[static_cast<int64_t>(l1) * leaves2_ + l2] =
          static_cast<int>(regions_.size());
      regions_.push_back({l1, l2, std::move(intersection)});
    }
  }
}

int DtGcr::IndexOf(int leaf1, int leaf2) const {
  const auto it = index_.find(static_cast<int64_t>(leaf1) * leaves2_ + leaf2);
  return it == index_.end() ? -1 : it->second;
}

std::vector<double> DtGcr::Measures(const dt::DecisionTree& t1,
                                    const dt::DecisionTree& t2,
                                    const data::Dataset& dataset,
                                    const std::optional<data::Box>& focus,
                                    common::ThreadPool* pool) const {
  const data::Schema& schema = t1.schema();
  const std::vector<int64_t> counts = CountRowsMaybeParallel(
      dataset.num_rows(), regions_.size() * num_classes_, pool,
      [&](int64_t row, std::vector<int64_t>& acc) {
        const auto values = dataset.Row(row);
        if (focus.has_value() && !focus->Contains(schema, values)) return;
        const int l1 = t1.LeafIndexOf(values);
        const int l2 = t2.LeafIndexOf(values);
        const int region = IndexOf(l1, l2);
        FOCUS_CHECK_GE(region, 0) << "tuple routed to empty GCR region";
        ++acc[static_cast<size_t>(region) * num_classes_ + dataset.Label(row)];
      });
  std::vector<double> measures(counts.size());
  const double n = static_cast<double>(dataset.num_rows());
  FOCUS_CHECK_GT(n, 0.0);
  for (size_t i = 0; i < counts.size(); ++i) {
    measures[i] = static_cast<double>(counts[i]) / n;
  }
  return measures;
}

namespace {

// Shared aggregation: per-(region, class) differences filtered by class
// and (for the GCR path) by focus-emptiness of the region box.
double AggregateDeviation(const std::vector<double>& measures1, double n1,
                          const std::vector<double>& measures2, double n2,
                          int num_regions, int num_classes,
                          const DtDeviationOptions& options,
                          const std::function<bool(int)>& region_included) {
  std::vector<double> diffs;
  diffs.reserve(measures1.size());
  for (int r = 0; r < num_regions; ++r) {
    if (!region_included(r)) continue;
    for (int c = 0; c < num_classes; ++c) {
      if (options.class_filter >= 0 && c != options.class_filter) continue;
      const size_t i = static_cast<size_t>(r) * num_classes + c;
      diffs.push_back(options.fn.f(measures1[i] * n1, measures2[i] * n2, n1, n2));
    }
  }
  return AggregateValues(options.fn.g, diffs);
}

}  // namespace

double DtDeviation(const DtModel& m1, const data::Dataset& d1,
                   const DtModel& m2, const data::Dataset& d2,
                   const DtDeviationOptions& options) {
  const DtGcr gcr(m1, m2);
  const std::vector<double> measures1 =
      gcr.Measures(m1.tree(), m2.tree(), d1, options.focus, options.pool);
  const std::vector<double> measures2 =
      gcr.Measures(m1.tree(), m2.tree(), d2, options.focus, options.pool);
  const data::Schema& schema = m1.tree().schema();

  // Under focussing, regions whose intersection with R is empty drop out
  // of the focussed structural component (Definition 5.1). This matters
  // for difference functions with nonzero f(0, 0), e.g. chi-squared's c.
  std::function<bool(int)> region_included = [](int) { return true; };
  if (options.focus.has_value()) {
    const data::Box& focus = *options.focus;
    region_included = [&gcr, &schema, &focus](int r) {
      return !gcr.regions()[r].box.Intersect(focus).IsEmpty(schema);
    };
  }
  return AggregateDeviation(measures1, static_cast<double>(d1.num_rows()),
                            measures2, static_cast<double>(d2.num_rows()),
                            gcr.num_regions(), gcr.num_classes(), options,
                            region_included);
}

double DtDeviationOverTree(const dt::DecisionTree& tree,
                           const data::Dataset& d1, const data::Dataset& d2,
                           const DtDeviationOptions& options) {
  FOCUS_CHECK(!options.focus.has_value())
      << "focus over a single tree: intersect leaf boxes via DtDeviation";
  const std::vector<double> measures1 = DtMeasuresOverTree(tree, d1, options.pool);
  const std::vector<double> measures2 = DtMeasuresOverTree(tree, d2, options.pool);
  return AggregateDeviation(measures1, static_cast<double>(d1.num_rows()),
                            measures2, static_cast<double>(d2.num_rows()),
                            tree.num_leaves(), tree.schema().num_classes(),
                            options, [](int) { return true; });
}

std::vector<double> DtMeasuresOverTree(const dt::DecisionTree& tree,
                                       const data::Dataset& dataset,
                                       common::ThreadPool* pool) {
  FOCUS_CHECK(tree.schema() == dataset.schema());
  const int num_classes = tree.schema().num_classes();
  const std::vector<int64_t> counts = CountRowsMaybeParallel(
      dataset.num_rows(), static_cast<size_t>(tree.num_leaves()) * num_classes,
      pool, [&](int64_t row, std::vector<int64_t>& acc) {
        const int leaf = tree.LeafIndexOf(dataset.Row(row));
        ++acc[static_cast<size_t>(leaf) * num_classes + dataset.Label(row)];
      });
  std::vector<double> measures(counts.size());
  const double n = static_cast<double>(dataset.num_rows());
  FOCUS_CHECK_GT(n, 0.0);
  for (size_t i = 0; i < counts.size(); ++i) {
    measures[i] = static_cast<double>(counts[i]) / n;
  }
  return measures;
}

}  // namespace focus::core

#include "core/dt_deviation.h"

#include <algorithm>

#include "common/check.h"
#include "core/flat_router.h"
#include "core/parallel_count.h"
#include "tree/leaf_regions.h"

namespace focus::core {
namespace {

// Leaf pairs route through the dense array as long as it stays under
// 16 MiB of int32; beyond that (trees with tens of thousands of leaves
// each) the hash map bounds memory instead.
constexpr int64_t kDenseRouterMaxCells = int64_t{1} << 22;

}  // namespace

DtModel::DtModel(dt::DecisionTree tree, const data::Dataset& inducing_dataset)
    : tree_(std::move(tree)) {
  FOCUS_CHECK(tree_.schema() == inducing_dataset.schema());
  leaf_boxes_ = dt::ExtractLeafBoxes(tree_);
  measures_ = DtMeasuresOverTree(tree_, inducing_dataset);
  num_rows_ = inducing_dataset.num_rows();
}

DtGcr::DtGcr(const DtModel& m1, const DtModel& m2)
    : leaves2_(m2.num_leaves()), num_classes_(m1.num_classes()) {
  FOCUS_CHECK(m1.tree().schema() == m2.tree().schema())
      << "dt-models must share an attribute space";
  const data::Schema& schema = m1.tree().schema();
  const int64_t total_pairs =
      static_cast<int64_t>(m1.num_leaves()) * m2.num_leaves();
  regions_.reserve(static_cast<size_t>(std::min<int64_t>(total_pairs, 4096)));
  const bool dense = total_pairs <= kDenseRouterMaxCells;
  if (dense) dense_.assign(static_cast<size_t>(total_pairs), -1);
  for (int l1 = 0; l1 < m1.num_leaves(); ++l1) {
    for (int l2 = 0; l2 < m2.num_leaves(); ++l2) {
      data::Box intersection = m1.leaf_box(l1).Intersect(m2.leaf_box(l2));
      if (intersection.IsEmpty(schema)) continue;
      const int64_t cell = static_cast<int64_t>(l1) * leaves2_ + l2;
      if (dense) {
        dense_[static_cast<size_t>(cell)] = static_cast<int>(regions_.size());
      } else {
        index_[cell] = static_cast<int>(regions_.size());
      }
      regions_.push_back({l1, l2, std::move(intersection)});
    }
  }
}

int DtGcr::IndexOf(int leaf1, int leaf2) const {
  const int64_t cell = static_cast<int64_t>(leaf1) * leaves2_ + leaf2;
  if (!dense_.empty()) return dense_[static_cast<size_t>(cell)];
  const auto it = index_.find(cell);
  return it == index_.end() ? -1 : it->second;
}

std::vector<double> DtGcr::Measures(const dt::DecisionTree& t1,
                                    const dt::DecisionTree& t2,
                                    const data::Dataset& dataset,
                                    const std::optional<data::Box>& focus,
                                    common::ThreadPool* pool) const {
  const data::Schema& schema = t1.schema();
  // Flatten both trees once per scan, then route every row through both in
  // one fused loop: two node-array walks plus one dense-array (or hash,
  // for huge leaf products) region lookup per row. Trees big enough to
  // miss cache route in 8-row lockstep batches instead, so the dependent
  // node loads of 8 descents overlap (flat_router.h explains the
  // cutover). Under focussing, each batch gathers only the in-R rows
  // before routing — filtered rows cost one Contains probe, never a
  // descent. Both shapes tally identical integer counts, which
  // laws_dt_batch_test pins under forced FOCUS_DT_BATCH modes.
  const FlatTreeRouter router1(t1);
  const FlatTreeRouter router2(t2);
  const int32_t* dense = dense_.empty() ? nullptr : dense_.data();
  const data::Box* focus_box = focus.has_value() ? &*focus : nullptr;
  const auto tally = [&](int l1, int l2, int64_t row,
                         std::vector<int64_t>& acc) {
    const int64_t cell = static_cast<int64_t>(l1) * leaves2_ + l2;
    const int region = dense != nullptr ? dense[static_cast<size_t>(cell)]
                                        : IndexOf(l1, l2);
    FOCUS_CHECK_GE(region, 0) << "tuple routed to empty GCR region";
    ++acc[static_cast<size_t>(region) * num_classes_ + dataset.Label(row)];
  };
  std::vector<int64_t> counts;
  if (router1.PrefersBatchedRouting() || router2.PrefersBatchedRouting()) {
    counts = CountRowRangesMaybeParallel(
        dataset.num_rows(), regions_.size() * num_classes_,
        FlatTreeRouter::kBatch, pool,
        [&](int64_t begin, int64_t end, std::vector<int64_t>& acc) {
          int64_t rows[FlatTreeRouter::kBatch];
          int n = 0;
          for (int64_t row = begin; row < end; ++row) {
            if (focus_box != nullptr &&
                !focus_box->Contains(schema, dataset.Row(row))) {
              continue;
            }
            rows[n++] = row;
          }
          if (n == 0) return;
          int l1[FlatTreeRouter::kBatch];
          int l2[FlatTreeRouter::kBatch];
          router1.RouteRows(dataset, rows, n, l1);
          router2.RouteRows(dataset, rows, n, l2);
          for (int i = 0; i < n; ++i) tally(l1[i], l2[i], rows[i], acc);
        });
  } else {
    counts = CountRowsMaybeParallel(
        dataset.num_rows(), regions_.size() * num_classes_, pool,
        [&](int64_t row, std::vector<int64_t>& acc) {
          const auto values = dataset.Row(row);
          if (focus_box != nullptr && !focus_box->Contains(schema, values)) {
            return;
          }
          tally(router1.Route(values), router2.Route(values), row, acc);
        });
  }
  std::vector<double> measures(counts.size());
  const double n = static_cast<double>(dataset.num_rows());
  FOCUS_CHECK_GT(n, 0.0);
  for (size_t i = 0; i < counts.size(); ++i) {
    measures[i] = static_cast<double>(counts[i]) / n;
  }
  return measures;
}

namespace {

// Shared aggregation: per-(region, class) differences filtered by class
// and (for the GCR path) by focus-emptiness of the region box. The filter
// is a template parameter (bool(int region)) so the all-regions case
// compiles down to an unconditional loop.
template <typename RegionIncluded>
double AggregateDeviation(const std::vector<double>& measures1, double n1,
                          const std::vector<double>& measures2, double n2,
                          int num_regions, int num_classes,
                          const DtDeviationOptions& options,
                          const RegionIncluded& region_included) {
  std::vector<double> diffs;
  diffs.reserve(measures1.size());
  for (int r = 0; r < num_regions; ++r) {
    if (!region_included(r)) continue;
    for (int c = 0; c < num_classes; ++c) {
      if (options.class_filter >= 0 && c != options.class_filter) continue;
      const size_t i = static_cast<size_t>(r) * num_classes + c;
      diffs.push_back(options.fn.f(measures1[i] * n1, measures2[i] * n2, n1, n2));
    }
  }
  return AggregateValues(options.fn.g, diffs);
}

}  // namespace

double DtDeviation(const DtModel& m1, const data::Dataset& d1,
                   const DtModel& m2, const data::Dataset& d2,
                   const DtDeviationOptions& options) {
  const DtGcr gcr(m1, m2);
  const std::vector<double> measures1 =
      gcr.Measures(m1.tree(), m2.tree(), d1, options.focus, options.pool);
  const std::vector<double> measures2 =
      gcr.Measures(m1.tree(), m2.tree(), d2, options.focus, options.pool);
  const data::Schema& schema = m1.tree().schema();
  const double n1 = static_cast<double>(d1.num_rows());
  const double n2 = static_cast<double>(d2.num_rows());

  // Under focussing, regions whose intersection with R is empty drop out
  // of the focussed structural component (Definition 5.1). This matters
  // for difference functions with nonzero f(0, 0), e.g. chi-squared's c.
  if (options.focus.has_value()) {
    const data::Box& focus = *options.focus;
    return AggregateDeviation(
        measures1, n1, measures2, n2, gcr.num_regions(), gcr.num_classes(),
        options, [&gcr, &schema, &focus](int r) {
          return !gcr.regions()[r].box.Intersect(focus).IsEmpty(schema);
        });
  }
  return AggregateDeviation(measures1, n1, measures2, n2, gcr.num_regions(),
                            gcr.num_classes(), options,
                            [](int) { return true; });
}

double DtDeviationOverTree(const dt::DecisionTree& tree,
                           const data::Dataset& d1, const data::Dataset& d2,
                           const DtDeviationOptions& options) {
  FOCUS_CHECK(!options.focus.has_value())
      << "focus over a single tree: intersect leaf boxes via DtDeviation";
  const std::vector<double> measures1 = DtMeasuresOverTree(tree, d1, options.pool);
  const std::vector<double> measures2 = DtMeasuresOverTree(tree, d2, options.pool);
  return AggregateDeviation(measures1, static_cast<double>(d1.num_rows()),
                            measures2, static_cast<double>(d2.num_rows()),
                            tree.num_leaves(), tree.schema().num_classes(),
                            options, [](int) { return true; });
}

std::vector<double> DtMeasuresOverTree(const dt::DecisionTree& tree,
                                       const data::Dataset& dataset,
                                       common::ThreadPool* pool) {
  FOCUS_CHECK(tree.schema() == dataset.schema());
  const int num_classes = tree.schema().num_classes();
  const FlatTreeRouter router(tree);
  std::vector<int64_t> counts;
  if (router.PrefersBatchedRouting()) {
    counts = CountRowRangesMaybeParallel(
        dataset.num_rows(),
        static_cast<size_t>(tree.num_leaves()) * num_classes,
        FlatTreeRouter::kBatch, pool,
        [&](int64_t begin, int64_t end, std::vector<int64_t>& acc) {
          int64_t rows[FlatTreeRouter::kBatch];
          const int n = static_cast<int>(end - begin);
          for (int i = 0; i < n; ++i) rows[i] = begin + i;
          int leaves[FlatTreeRouter::kBatch];
          router.RouteRows(dataset, rows, n, leaves);
          for (int i = 0; i < n; ++i) {
            ++acc[static_cast<size_t>(leaves[i]) * num_classes +
                  dataset.Label(rows[i])];
          }
        });
  } else {
    counts = CountRowsMaybeParallel(
        dataset.num_rows(),
        static_cast<size_t>(tree.num_leaves()) * num_classes, pool,
        [&](int64_t row, std::vector<int64_t>& acc) {
          const int leaf = router.Route(dataset.Row(row));
          ++acc[static_cast<size_t>(leaf) * num_classes +
                dataset.Label(row)];
        });
  }
  std::vector<double> measures(counts.size());
  const double n = static_cast<double>(dataset.num_rows());
  FOCUS_CHECK_GT(n, 0.0);
  for (size_t i = 0; i < counts.size(); ++i) {
    measures[i] = static_cast<double>(counts[i]) / n;
  }
  return measures;
}

}  // namespace focus::core

#include "core/sampling_study.h"

#include <random>

#include "common/check.h"
#include "cluster/grid_clustering.h"
#include "core/cluster_deviation.h"
#include "core/dt_deviation.h"
#include "core/lits_deviation.h"
#include "data/sampling.h"
#include "stats/descriptive.h"
#include "stats/rng.h"
#include "stats/wilcoxon.h"

namespace focus::core {

std::vector<SampleStudyPoint> LitsSampleStudy(const data::TransactionDb& db,
                                              const LitsStudyConfig& config) {
  FOCUS_CHECK_GT(config.samples_per_fraction, 0);
  const lits::LitsModel full_model = lits::Apriori(db, config.apriori);

  std::vector<SampleStudyPoint> points;
  points.reserve(config.fractions.size());
  for (size_t fi = 0; fi < config.fractions.size(); ++fi) {
    SampleStudyPoint point;
    point.fraction = config.fractions[fi];
    for (int s = 0; s < config.samples_per_fraction; ++s) {
      std::mt19937_64 rng =
          stats::MakeRng(stats::DeriveSeed(config.seed, fi * 1000 + s));
      const data::TransactionDb sample =
          data::SampleTransactions(db, point.fraction, rng);
      if (sample.num_transactions() == 0) continue;
      const lits::LitsModel sample_model = lits::Apriori(sample, config.apriori);
      point.sample_deviations.push_back(
          LitsDeviation(full_model, db, sample_model, sample, config.fn));
    }
    FOCUS_CHECK(!point.sample_deviations.empty())
        << "fraction " << point.fraction << " produced no samples";
    point.mean_sd = stats::Mean(point.sample_deviations);
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<SampleStudyPoint> DtSampleStudy(const data::Dataset& dataset,
                                            const DtStudyConfig& config) {
  FOCUS_CHECK_GT(config.samples_per_fraction, 0);
  const DtModel full_model(dt::BuildCart(dataset, config.cart), dataset);

  DtDeviationOptions deviation_options;
  deviation_options.fn = config.fn;

  std::vector<SampleStudyPoint> points;
  points.reserve(config.fractions.size());
  for (size_t fi = 0; fi < config.fractions.size(); ++fi) {
    SampleStudyPoint point;
    point.fraction = config.fractions[fi];
    for (int s = 0; s < config.samples_per_fraction; ++s) {
      std::mt19937_64 rng =
          stats::MakeRng(stats::DeriveSeed(config.seed, fi * 1000 + s));
      const data::Dataset sample =
          data::SampleDataset(dataset, point.fraction, rng);
      if (sample.num_rows() == 0) continue;
      const DtModel sample_model(dt::BuildCart(sample, config.cart), sample);
      point.sample_deviations.push_back(DtDeviation(
          full_model, dataset, sample_model, sample, deviation_options));
    }
    FOCUS_CHECK(!point.sample_deviations.empty())
        << "fraction " << point.fraction << " produced no samples";
    point.mean_sd = stats::Mean(point.sample_deviations);
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<SampleStudyPoint> ClusterSampleStudy(
    const data::Dataset& dataset, const ClusterStudyConfig& config) {
  FOCUS_CHECK_GT(config.samples_per_fraction, 0);
  const cluster::Grid grid(dataset.schema(), config.grid_attributes,
                           config.grid_bins);
  cluster::GridClusteringOptions clustering;
  clustering.density_threshold = config.density_threshold;
  const cluster::ClusterModel full_model =
      cluster::GridClustering(dataset, grid, clustering);

  ClusterDeviationOptions deviation_options;
  deviation_options.fn = config.fn;

  std::vector<SampleStudyPoint> points;
  points.reserve(config.fractions.size());
  for (size_t fi = 0; fi < config.fractions.size(); ++fi) {
    SampleStudyPoint point;
    point.fraction = config.fractions[fi];
    for (int s = 0; s < config.samples_per_fraction; ++s) {
      std::mt19937_64 rng =
          stats::MakeRng(stats::DeriveSeed(config.seed, fi * 1000 + s));
      const data::Dataset sample =
          data::SampleDataset(dataset, point.fraction, rng);
      if (sample.num_rows() == 0) continue;
      const cluster::ClusterModel sample_model =
          cluster::GridClustering(sample, grid, clustering);
      point.sample_deviations.push_back(ClusterDeviation(
          full_model, dataset, sample_model, sample, deviation_options));
    }
    FOCUS_CHECK(!point.sample_deviations.empty())
        << "fraction " << point.fraction << " produced no samples";
    point.mean_sd = stats::Mean(point.sample_deviations);
    points.push_back(std::move(point));
  }
  return points;
}

std::vector<double> StepSignificances(
    const std::vector<SampleStudyPoint>& points) {
  std::vector<double> significances;
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    significances.push_back(stats::SignificanceOfDecreasePercent(
        points[i].sample_deviations, points[i + 1].sample_deviations));
  }
  return significances;
}

}  // namespace focus::core

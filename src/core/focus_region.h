#ifndef FOCUS_CORE_FOCUS_REGION_H_
#define FOCUS_CORE_FOCUS_REGION_H_

#include <cstdint>
#include <vector>

#include "data/box.h"
#include "data/schema.h"

namespace focus::core {

// Builders for focussing regions (the declarative `Predicate p` operator
// of §5): convenience constructors of Box predicates over the attribute
// space. Boxes compose with Box::Intersect, so conjunctions of predicates
// are intersections of the returned boxes.

// p: lo <= attribute < hi (numeric attribute).
data::Box NumericPredicate(const data::Schema& schema, int attribute,
                           double lo, double hi);

// p: attribute < hi.
data::Box LessThanPredicate(const data::Schema& schema, int attribute,
                            double hi);

// p: attribute >= lo.
data::Box AtLeastPredicate(const data::Schema& schema, int attribute,
                           double lo);

// p: attribute ∈ codes (categorical attribute).
data::Box CategoryPredicate(const data::Schema& schema, int attribute,
                            const std::vector<int>& codes);

}  // namespace focus::core

#endif  // FOCUS_CORE_FOCUS_REGION_H_

#include "core/embedding.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "common/check.h"
#include "core/lits_upper_bound.h"
#include "stats/rng.h"

namespace focus::core {
namespace {

// Farthest-point heuristic: from a random start, jump to the farthest
// object twice; the last two stops are the pivot pair.
std::pair<int, int> ChoosePivots(const std::vector<std::vector<double>>& d,
                                 std::mt19937_64& rng) {
  const int n = static_cast<int>(d.size());
  int a = static_cast<int>(stats::UniformInt(rng, 0, n - 1));
  int b = a;
  for (int hop = 0; hop < 2; ++hop) {
    int farthest = a;
    double best = -1.0;
    for (int i = 0; i < n; ++i) {
      if (d[a][i] > best) {
        best = d[a][i];
        farthest = i;
      }
    }
    b = a;
    a = farthest;
  }
  return {std::min(a, b), std::max(a, b)};
}

}  // namespace

FastMapResult FastMapEmbedding(const std::vector<std::vector<double>>& distances,
                               int dims, uint64_t seed) {
  const int n = static_cast<int>(distances.size());
  FOCUS_CHECK_GT(n, 0);
  FOCUS_CHECK_GE(dims, 1);
  for (const auto& row : distances) {
    FOCUS_CHECK_EQ(static_cast<int>(row.size()), n) << "matrix must be square";
  }

  // Work on squared distances; deflation subtracts squared coordinate
  // deltas (the FastMap recurrence).
  std::vector<std::vector<double>> d2(n, std::vector<double>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) d2[i][j] = distances[i][j] * distances[i][j];
  }

  std::mt19937_64 rng = stats::MakeRng(seed);
  FastMapResult result;
  result.coordinates.assign(n, std::vector<double>(dims, 0.0));

  std::vector<std::vector<double>> d(n, std::vector<double>(n));
  for (int dim = 0; dim < dims; ++dim) {
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) d[i][j] = std::sqrt(std::max(0.0, d2[i][j]));
    }
    const auto [a, b] = ChoosePivots(d, rng);
    result.pivots.push_back({a, b});
    const double dab = d[a][b];
    if (dab <= 0.0) {
      // All residual distances are zero: remaining coordinates stay 0.
      continue;
    }
    // Cosine-law projection onto the (a, b) line.
    std::vector<double> x(n);
    for (int i = 0; i < n; ++i) {
      x[i] = (d2[a][i] + d2[a][b] - d2[b][i]) / (2.0 * dab);
      result.coordinates[i][dim] = x[i];
    }
    // Deflate.
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        d2[i][j] = std::max(0.0, d2[i][j] - (x[i] - x[j]) * (x[i] - x[j]));
      }
    }
  }
  return result;
}

double EmbeddedDistance(const std::vector<double>& a,
                        const std::vector<double>& b) {
  FOCUS_CHECK_EQ(a.size(), b.size());
  double total = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    total += (a[i] - b[i]) * (a[i] - b[i]);
  }
  return std::sqrt(total);
}

std::vector<std::vector<double>> LitsUpperBoundMatrix(
    const std::vector<lits::LitsModel>& models, AggregateKind g) {
  const int n = static_cast<int>(models.size());
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 0.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      matrix[i][j] = matrix[j][i] = LitsUpperBound(models[i], models[j], g);
    }
  }
  return matrix;
}

}  // namespace focus::core

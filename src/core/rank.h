#ifndef FOCUS_CORE_RANK_H_
#define FOCUS_CORE_RANK_H_

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/cluster_deviation.h"
#include "core/dt_deviation.h"
#include "core/functions.h"
#include "core/lits_deviation.h"
#include "core/region_algebra.h"
#include "data/dataset.h"
#include "data/transaction_db.h"

namespace focus::core {

// The Rank (ρ) and Select (σ) operators of §5: order a set of regions by
// the "interestingness" of change between two datasets (their focussed
// deviation) and select from the ordered list.

// ---- dt-model regions (boxes) ----

struct RankedBox {
  data::Box region;
  double deviation = 0.0;
};

// ρ(Γ, delta_(f,g), D1, D2) for box regions: computes, for every region R
// in `regions`, the focussed deviation delta^R(M1, M2), and returns the
// list sorted by decreasing deviation (ties broken stably). Implementation
// routes every tuple through both trees once and tests region membership,
// so the cost is O((|D1|+|D2|) * (depth + |regions| * #attrs)).
std::vector<RankedBox> RankDtRegions(const BoxSet& regions, const DtModel& m1,
                                     const data::Dataset& d1,
                                     const DtModel& m2,
                                     const data::Dataset& d2,
                                     const DeviationFunction& fn,
                                     int class_filter = -1);

// ---- lits-model regions (itemsets) ----

struct RankedItemset {
  lits::Itemset itemset;
  double support1 = 0.0;
  double support2 = 0.0;
  double deviation = 0.0;
};

// ρ for itemset regions: the deviation of a single-itemset region is just
// f applied to its two supports (counted in one scan per dataset for
// itemsets absent from a model).
std::vector<RankedItemset> RankLitsRegions(const ItemsetSet& regions,
                                           const lits::LitsModel& m1,
                                           const data::TransactionDb& d1,
                                           const lits::LitsModel& m2,
                                           const data::TransactionDb& d2,
                                           const DiffFn& f);

// ---- cluster-model regions (cell sets) ----

struct RankedClusterRegion {
  // Provenance within the GCR of the two cluster models (see
  // core/cluster_deviation.h): -1 marks a one-sided remainder.
  int region1 = -1;
  int region2 = -1;
  std::vector<int64_t> cells;
  double selectivity1 = 0.0;
  double selectivity2 = 0.0;
  double deviation = 0.0;
};

// ρ for cluster GCR regions: each region's deviation is f applied to its
// measures under the two datasets (one cell-histogram scan per dataset).
std::vector<RankedClusterRegion> RankClusterRegions(
    const cluster::ClusterModel& m1, const data::Dataset& d1,
    const cluster::ClusterModel& m2, const data::Dataset& d2, const DiffFn& f);

// ---- Select operators ----
// σ_top, σ_n, σ_min, σ_-n over an already-ranked list.

template <typename Ranked>
const Ranked& SelectTop(const std::vector<Ranked>& ranked) {
  return ranked.front();
}

template <typename Ranked>
std::vector<Ranked> SelectTopN(const std::vector<Ranked>& ranked, size_t n) {
  return {ranked.begin(),
          ranked.begin() + static_cast<ptrdiff_t>(std::min(n, ranked.size()))};
}

template <typename Ranked>
const Ranked& SelectMin(const std::vector<Ranked>& ranked) {
  return ranked.back();
}

template <typename Ranked>
std::vector<Ranked> SelectBottomN(const std::vector<Ranked>& ranked, size_t n) {
  const size_t take = std::min(n, ranked.size());
  return {ranked.end() - static_cast<ptrdiff_t>(take), ranked.end()};
}

}  // namespace focus::core

#endif  // FOCUS_CORE_RANK_H_

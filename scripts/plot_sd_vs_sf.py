#!/usr/bin/env python3
"""Render the SD-vs-SF tables in a bench output file as ASCII charts.

Usage:
    python3 scripts/plot_sd_vs_sf.py bench_output.txt

Finds every table of the form

    SF   | mean SD | min SD | max SD
    ---------------------------------
    0.01 | 1.234   | ...

printed by the fig07-fig12 / ext_cluster binaries (and their captions),
and draws a log-scale ASCII plot per series so the monotone-decrease and
elbow shapes of Figures 7-12 can be eyeballed without leaving the
terminal.
"""

import math
import re
import sys

WIDTH = 60


def parse_tables(lines):
    """Yields (caption, [(sf, mean_sd), ...]) tuples."""
    caption = ""
    i = 0
    while i < len(lines):
        line = lines[i]
        if line.startswith("SF ") and "mean SD" in line:
            rows = []
            j = i + 2  # skip the dashed separator
            while j < len(lines):
                match = re.match(r"\s*([0-9.]+)\s*\|\s*([0-9.]+)", lines[j])
                if not match:
                    break
                rows.append((float(match.group(1)), float(match.group(2))))
                j += 1
            if rows:
                yield caption.strip(), rows
            i = j
        else:
            if line.strip() and "|" not in line and "---" not in line:
                caption = line
            i += 1


def draw(caption, rows):
    print(f"\n{caption}")
    values = [sd for _, sd in rows]
    lo = min(v for v in values if v > 0) if any(v > 0 for v in values) else 1e-9
    hi = max(values) if max(values) > 0 else 1.0
    log_lo, log_hi = math.log10(lo), math.log10(hi)
    span = max(log_hi - log_lo, 1e-9)
    for sf, sd in rows:
        bar = 0
        if sd > 0:
            bar = int(round((math.log10(sd) - log_lo) / span * WIDTH))
        print(f"  SF {sf:4.2f} |{'#' * bar:<{WIDTH}}| {sd:.5f}")
    print(f"  (log scale, {lo:.4g} .. {hi:.4g})")


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 1
    with open(sys.argv[1], encoding="utf-8", errors="replace") as handle:
        lines = handle.read().splitlines()
    count = 0
    for caption, rows in parse_tables(lines):
        draw(caption, rows)
        count += 1
    if count == 0:
        print("no SD-vs-SF tables found — run the fig07..fig12 benches first")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
